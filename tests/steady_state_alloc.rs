//! Pins the zero-allocation steady state of a warmed serving session.
//!
//! The session owns every buffer a query needs (context scratch, global-search
//! pools, the cache-key husk), the context cache returns its entries'
//! owned keys on a hit, and `QuerySession::recycle` feeds a finished result's
//! vectors back into the pools. Together a repeated query on an unchanged
//! epoch is allocation-free — this harness counts every heap allocation on
//! the serving thread and asserts the steady-state count is exactly zero, so
//! any future allocation on the hot path fails loudly instead of showing up
//! as a latency regression.
//!
//! The fixture uses three attributes (a 2-D preference region): that is the
//! regime of every preset and of the paper's running example, and the one the
//! cell layer serves with the pooled vertex/polygon fast path. Other region
//! dimensionalities fall back to the dense-LP classifier, which allocates its
//! constraint system per call and is deliberately out of scope for the pin.
//!
//! Warm-up needs more rounds than one might expect: the cell pools are LIFO
//! stacks, so a query permutes husks across pool positions, and a husk's
//! polygon buffer only reaches its steady capacity once it has visited the
//! most demanding position of the cycle. Capacities grow monotonically, so
//! the state converges — the warm-up just has to outlast the rotation.

use road_social_mac::prelude::*;
use rsn_graph::graph::Graph;
use rsn_road::network::{Location, RoadNetwork};

// ---------------------------------------------------------------------------
// Allocation accounting (same harness as tests/engine_updates.rs).
// ---------------------------------------------------------------------------

/// Counts heap allocations made by the current thread. Only `alloc` is
/// tracked — the test compares deltas, so frees are irrelevant — and the
/// thread-local counter keeps other test threads out of the measurement.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown never panic.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Fixture: the two-K4 network of the core tests.
// ---------------------------------------------------------------------------

fn network() -> RoadSocialNetwork {
    let social = Graph::from_edges(
        6,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 5),
            (4, 5),
        ],
    );
    let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
    let locations = vec![Location::vertex(0); 6];
    let attrs = vec![
        vec![6.0, 6.0, 5.0],
        vec![6.0, 6.0, 4.0],
        vec![9.0, 1.0, 3.0],
        vec![8.0, 2.0, 7.0],
        vec![1.0, 9.0, 6.0],
        vec![2.0, 8.0, 2.0],
    ];
    RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
}

fn query() -> MacQuery {
    let region = PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap();
    MacQuery::new(vec![0, 1], 3, 10.0, region).with_algorithm(AlgorithmChoice::Global)
}

/// A repeated global-search query on a cache-hitting session, with results
/// recycled back into the pools, performs zero heap allocations.
#[test]
fn steady_state_query_allocates_nothing() {
    let engine = MacEngine::build_uncalibrated(network());
    let mut session = engine.session().with_context_cache(2);
    let q = query();

    // Warm up: the first queries populate the context cache, grow every
    // scratch pool to its steady capacity, and seed the result husks. The
    // round count outlasts the pool-rotation period (see module docs).
    let reference = session.execute(&q).unwrap();
    let warm = 39u64;
    for _ in 0..warm {
        let result = session.execute(&q).unwrap();
        session.recycle(result);
    }

    let before = thread_allocations();
    let rounds = 16u64;
    for _ in 0..rounds {
        let result = session.execute(&q).unwrap();
        assert_eq!(result.cells.len(), reference.cells.len());
        session.recycle(result);
    }
    let delta = thread_allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state serving must be allocation-free, saw {delta} allocations \
         over {rounds} queries"
    );

    // The loop really did serve from the cache, not rebuild contexts.
    let stats = session.stats();
    assert!(stats.context_cache_hits >= rounds);
    assert_eq!(stats.served, 1 + warm + rounds);
}

/// Without `recycle` the session still works (results own their buffers), and
/// the per-query allocation count stays small and flat — the pools cover
/// everything except the reported result itself.
#[test]
fn unrecycled_queries_only_allocate_the_result() {
    let engine = MacEngine::build_uncalibrated(network());
    let mut session = engine.session().with_context_cache(2);
    let q = query();
    for _ in 0..40 {
        session.execute(&q).unwrap();
    }
    let before = thread_allocations();
    let result = session.execute(&q).unwrap();
    let per_query = thread_allocations() - before;
    // One cell result: out_cells vector + cell + weights + community storage.
    // The exact count may drift with layout, but it must stay O(result), not
    // O(network) — a context rebuild on this fixture costs hundreds.
    assert!(
        per_query < 50,
        "cache-hit query without recycling allocated {per_query} times"
    );
    drop(result);
}

//! End-to-end integration tests on the paper's running example (Fig. 1/2/4/5),
//! spanning every crate: datagen → road filter → (k,t)-core → r-dominance
//! graph → global and local search.

use road_social_mac::core::peel::peel_at_weight;
use road_social_mac::core::{GlobalSearch, LocalSearch, MacQuery, SearchContext};
use road_social_mac::datagen::paper_example::{paper_example_network, paper_region};

/// Q = {v2, v3, v6} (ids 1, 2, 5), k = 3, t = 9 — the setting of Example 2.
fn example2_query() -> MacQuery {
    MacQuery::new(vec![1, 2, 5], 3, 9.0, paper_region())
}

#[test]
fn kt_core_and_dominance_graph_match_the_paper() {
    let rsn = paper_example_network();
    let query = example2_query();
    let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
    // H^9_3 = {v1..v7} (Fig. 4(a))
    assert_eq!(ctx.core_vertices, vec![0, 1, 2, 3, 4, 5, 6]);
    // the bottom layer of G_d is {v7, v5, v1} and the top layer {v2, v6, v4}
    // (Fig. 4(b) / Fig. 5(a))
    let all = vec![true; 7];
    let to_user = |locals: Vec<usize>| -> Vec<u32> {
        let mut ids: Vec<u32> = locals
            .into_iter()
            .map(|l| ctx.core_vertices[ctx.gd.id_of(l) as usize] + 1)
            .collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(to_user(ctx.gd.leaves_within(&all)), vec![1, 5, 7]);
    assert_eq!(to_user(ctx.gd.top_within(&all)), vec![2, 4, 6]);
}

#[test]
fn global_search_agrees_with_fixed_weight_peeling_everywhere() {
    let rsn = paper_example_network();
    let query = example2_query();
    let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    assert!(!result.is_empty());
    let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
    for cell in &result.cells {
        let oracle = peel_at_weight(&ctx, &cell.sample_weight);
        let expected = ctx.community_from_locals(&oracle.final_vertices);
        assert_eq!(cell.communities[0].vertices, expected.vertices);
        // every reported community contains the query users and is inside H^9_3
        assert!(cell.communities[0].contains(1));
        assert!(cell.communities[0].contains(2));
        assert!(cell.communities[0].contains(5));
        assert!(cell.communities[0].len() <= 7);
    }
}

#[test]
fn global_top_j_returns_nested_macs() {
    let rsn = paper_example_network();
    let query = example2_query().with_top_j(2);
    let result = GlobalSearch::new(&rsn, &query).run_top_j().unwrap();
    for cell in &result.cells {
        assert!(!cell.communities.is_empty() && cell.communities.len() <= 2);
        for pair in cell.communities.windows(2) {
            assert!(pair[1].contains_all(&pair[0]), "top-j MACs must be nested");
        }
    }
}

#[test]
fn local_search_is_sound_wrt_global_search() {
    let rsn = paper_example_network();
    let query = example2_query();
    let global = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    let local = LocalSearch::new(&rsn, &query)
        .with_max_candidates(20)
        .run_non_contained()
        .unwrap();
    let global_set: Vec<Vec<u32>> = global
        .distinct_communities()
        .iter()
        .map(|c| c.vertices.clone())
        .collect();
    for c in local.distinct_communities() {
        assert!(
            global_set.contains(&c.vertices),
            "LS-NC reported {:?} which GS-NC never produces",
            c.vertices
        );
    }
    // and LS finds at least one non-contained MAC here
    assert!(!local.is_empty());
}

#[test]
fn example1_setting_has_a_five_member_mac() {
    // Example 1: Q = {v2}, k = 2, t = 9. The subgraph {v2, v3, v5, v6, v7}
    // is an MAC for part of R; verify that the fixed-weight peel produces a
    // community containing the query for any sampled weight and that GS
    // reports only valid (k,t)-cores.
    let rsn = paper_example_network();
    let query = MacQuery::new(vec![1], 2, 9.0, paper_region());
    let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    assert!(!result.is_empty());
    for cell in &result.cells {
        let c = &cell.communities[0];
        assert!(c.contains(1));
        // every member is one of v1..v7 (the only users within distance 9)
        assert!(c.vertices.iter().all(|&v| v <= 6));
        assert!(c.len() >= 3);
    }
}

#[test]
fn tighter_distance_threshold_shrinks_the_core() {
    let rsn = paper_example_network();
    // with t = 7 the query distance of v3 (= 9 to r6) is too large, so the
    // (3,t)-core for Q = {v2, v3, v6} disappears entirely
    let query = MacQuery::new(vec![1, 2, 5], 3, 7.0, paper_region());
    let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    assert!(result.is_empty());
}

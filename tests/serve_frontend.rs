//! End-to-end tests of the `rsn-serve` front-end: responses through the
//! threaded server (queue + coalescing + per-worker caches) must be
//! identical to direct single-session execution; deadlines measured from
//! submission must degrade to valid partial prefixes; shutdown must answer
//! every accepted request; and a concurrent updater must never produce an
//! error or a torn answer.

use road_social_mac::core::{
    AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, NetworkDelta, QueryBudget, QueryOutcome,
    RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::serve::{MacServer, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn random_network(seed: u64, n_users: usize) -> (RoadSocialNetwork, Vec<u32>) {
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        3,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    (rsn.with_gtree_index_capacity(16), group)
}

fn region() -> PrefRegion {
    PrefRegion::from_ranges(&[(0.28, 0.38), (0.28, 0.38)]).unwrap()
}

fn workload(group: &[u32]) -> Vec<MacQuery> {
    let mut queries = Vec::new();
    for i in 0..4usize {
        let q: Vec<u32> = group.iter().copied().take(1 + i % 3).collect();
        let k = 4 + (i % 2) as u32;
        let t = [40.0, 65.0, 90.0][i % 3];
        let mut query = MacQuery::new(q, k, t, region()).with_algorithm(AlgorithmChoice::Global);
        if i % 2 == 1 {
            query = query.with_top_j(2);
        }
        queries.push(query);
    }
    queries
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

/// `partial` must be an exact prefix of `full`'s cells.
fn assert_valid_prefix(label: &str, partial: &MacSearchResult, full: &MacSearchResult) {
    assert!(
        partial.cells.len() <= full.cells.len(),
        "{label}: partial has more cells than the full answer"
    );
    for (i, (pc, fc)) in partial.cells.iter().zip(&full.cells).enumerate() {
        assert_eq!(
            pc.sample_weight, fc.sample_weight,
            "{label}: prefix diverged at cell {i}"
        );
        assert_eq!(
            pc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            fc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: prefix communities diverged at cell {i}"
        );
    }
}

/// Served responses — through the queue, workers, coalescing, and caches —
/// equal direct session execution, for every worker-count/coalescing/cache
/// combination.
#[test]
fn served_responses_match_direct_execution() {
    let (rsn, group) = random_network(21, 120);
    let engine = MacEngine::build_uncalibrated(rsn);
    let queries = workload(&group);
    let mut direct = engine.session();
    let expected: Vec<MacSearchResult> =
        queries.iter().map(|q| direct.execute(q).unwrap()).collect();

    for (workers, coalescing, cache) in [(1, false, 0), (1, true, 8), (4, false, 0), (4, true, 8)] {
        let server = MacServer::start(
            engine.clone(),
            ServeConfig {
                workers,
                queue_capacity: 64,
                coalescing,
                context_cache_capacity: cache,
                ..ServeConfig::default()
            },
        );
        // Several rounds of the same workload: exercises coalescing (same
        // query in flight) and the context cache (repeats across rounds).
        let handles: Vec<(usize, _)> = (0..3)
            .flat_map(|_| queries.iter().enumerate())
            .map(|(i, q)| (i, server.submit(q.clone()).unwrap()))
            .collect();
        for (i, handle) in &handles {
            let response = handle.wait();
            let outcome = response
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
            let label =
                format!("workers {workers}, coalescing {coalescing}, cache {cache}, query {i}");
            assert_results_identical(&label, outcome.result(), &expected[*i]);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, (queries.len() * 3) as u64);
        assert_eq!(stats.sessions.errors, 0);
        // Every accepted request was answered exactly once, by execution or
        // by fan-out.
        assert_eq!(
            stats.sessions.served + stats.coalesced_joins,
            stats.submitted
        );
        if !coalescing {
            assert_eq!(stats.coalesced_joins, 0);
        }
    }
}

/// With one worker and a deep queue, identical requests pile up behind a
/// slow first one and must coalesce into a single execution.
#[test]
fn identical_inflight_requests_coalesce() {
    let (rsn, group) = random_network(33, 120);
    let engine = MacEngine::build_uncalibrated(rsn);
    let query = workload(&group).remove(0);
    let server = MacServer::start(
        engine.clone(),
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            coalescing: true,
            context_cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = (0..16)
        .map(|_| server.submit(query.clone()).unwrap())
        .collect();
    let first = handles[0].wait();
    let first_outcome = first.outcome.as_ref().unwrap();
    for handle in &handles[1..] {
        let response = handle.wait();
        let outcome = response.outcome.as_ref().unwrap();
        assert_results_identical("coalesced waiter", outcome.result(), first_outcome.result());
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 16);
    // At least the requests queued behind the in-flight first execution
    // coalesced; with one worker that is nearly all of them.
    assert!(
        stats.coalesced_joins > 0,
        "no coalescing despite identical in-flight requests: {stats}"
    );
    assert_eq!(
        stats.sessions.served + stats.coalesced_joins,
        stats.submitted
    );
}

/// A deadline of zero burns out in the queue and must come back as an
/// immediate, *valid* partial: an exact prefix (possibly empty) of the full
/// answer, never an error.
#[test]
fn expired_deadlines_degrade_to_valid_partial_prefixes() {
    let (rsn, group) = random_network(45, 120);
    let engine = MacEngine::build_uncalibrated(rsn);
    let queries = workload(&group);
    let mut direct = engine.session();
    let server = MacServer::start(
        engine.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    for (i, query) in queries.iter().enumerate() {
        let full = direct.execute(query).unwrap();
        for budget in [
            QueryBudget::new().with_deadline(Duration::ZERO),
            QueryBudget::new().with_work_limit(1),
            QueryBudget::new().with_work_limit(200),
        ] {
            let handle = server.submit_with_budget(query.clone(), budget).unwrap();
            let response = handle.wait();
            match response.outcome.as_ref().unwrap() {
                QueryOutcome::Complete(result) => {
                    assert_results_identical(&format!("query {i} complete"), result, &full);
                }
                QueryOutcome::Partial(partial) => {
                    assert_valid_prefix(&format!("query {i} partial"), &partial.result, &full);
                }
            }
        }
    }
    server.shutdown();
}

/// Shutdown answers everything already accepted: no handle waits forever,
/// no accepted request is dropped.
#[test]
fn shutdown_drains_accepted_requests() {
    let (rsn, group) = random_network(57, 120);
    let engine = MacEngine::build_uncalibrated(rsn);
    let queries = workload(&group);
    let server = MacServer::start(
        engine,
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = (0..32)
        .map(|i| server.submit(queries[i % queries.len()].clone()).unwrap())
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 32);
    for handle in &handles {
        let response = handle.try_get().expect("shutdown resolves every handle");
        assert!(response.outcome.is_ok());
    }
}

/// Serving while an updater thread applies deltas: every response is `Ok`,
/// and every *complete* response equals a fresh execution pinned to the
/// epoch the worker served it on (verified post-hoc for the final epoch's
/// responses, since older epochs are gone).
#[test]
fn serving_stays_correct_under_concurrent_updates() {
    let (rsn, group) = random_network(69, 120);
    let mut edges: Vec<(u32, u32, f64)> = rsn.road().edges().collect();
    let engine = MacEngine::build_uncalibrated(rsn);
    let queries = workload(&group);
    let server = MacServer::start(
        engine.clone(),
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    );

    // Updater: reweight a rotating edge 10 times, ~1ms apart.
    let updater = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for round in 0..10u64 {
                let idx = (round as usize * 7) % edges.len();
                let (u, v, w) = edges[idx];
                let delta = NetworkDelta::new().reweight_edge(u, v, w + 0.5 + round as f64 * 0.1);
                edges[idx].2 = w + 0.5 + round as f64 * 0.1;
                engine.apply_updates(&delta).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let handles: Vec<(usize, _)> = (0..60)
        .map(|i| {
            let q = queries[i % queries.len()].clone();
            (i % queries.len(), server.submit(q).unwrap())
        })
        .collect();
    let mut responses = Vec::new();
    for (qi, handle) in &handles {
        let response = handle.wait();
        assert!(
            response.outcome.is_ok(),
            "response errored under concurrent updates: {:?}",
            response.outcome
        );
        responses.push((*qi, Arc::clone(&response)));
    }
    updater.join().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.sessions.errors, 0);

    // Post-hoc identity for responses served on the final epoch.
    let final_epoch = engine.epoch().id();
    let mut direct = engine.session();
    for (qi, response) in &responses {
        if response.epoch == final_epoch {
            if let Ok(outcome) = &response.outcome {
                if outcome.is_complete() {
                    let fresh = direct.execute(&queries[*qi]).unwrap();
                    assert_results_identical(
                        &format!("final-epoch query {qi}"),
                        outcome.result(),
                        &fresh,
                    );
                }
            }
        }
    }
}

//! Deadline-aware serving: cooperative cancellation and graceful
//! degradation. A budgeted query must never panic and never return a bare
//! error on exhaustion — it degrades to [`QueryOutcome::Partial`] whose
//! cells are an exact prefix of the full run's answer — and an interrupted
//! session must stay clean: the next unbudgeted query through the same
//! session returns results cell-identical to a fresh session.

use proptest::prelude::*;
use road_social_mac::core::{
    AlgorithmChoice, ExhaustionCause, MacEngine, MacError, MacQuery, MacSearchResult, QueryBudget,
    QueryOutcome, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        3,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(16)
    } else {
        rsn
    };
    (rsn, group)
}

fn region() -> PrefRegion {
    PrefRegion::from_ranges(&[(0.28, 0.38), (0.28, 0.38)]).unwrap()
}

/// A small mixed workload: global, local, and top-j queries from the planted
/// group.
fn workload(group: &[u32]) -> Vec<MacQuery> {
    let q2: Vec<u32> = group.iter().copied().take(2).collect();
    vec![
        MacQuery::new(vec![group[0]], 4, 50.0, region()),
        MacQuery::new(q2.clone(), 5, 50.0, region()).with_top_j(2),
        MacQuery::new(q2, 4, 80.0, region()).with_algorithm(AlgorithmChoice::Local),
    ]
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

/// A partial answer's cells must be an exact prefix of the full run's: the
/// budgeted stages process the same units in the same order and only ever
/// drop whole trailing units.
fn assert_prefix_of(label: &str, partial: &MacSearchResult, full: &MacSearchResult) {
    assert!(
        partial.cells.len() <= full.cells.len(),
        "{label}: partial reported more cells than the full run"
    );
    for (i, (pc, fc)) in partial.cells.iter().zip(&full.cells).enumerate() {
        assert_eq!(
            pc.sample_weight, fc.sample_weight,
            "{label}: cell {i} sample weight"
        );
        assert_eq!(
            pc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            fc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: cell {i} communities"
        );
    }
}

/// A zero deadline must trip on the very first budget check of every query —
/// on indexed and unindexed networks, across all three algorithms — and
/// still return gracefully, never panic.
#[test]
fn zero_deadline_degrades_to_partial_without_panicking() {
    for indexed in [true, false] {
        let (rsn, group) = random_network(3, 120, indexed);
        let engine = MacEngine::build_uncalibrated(rsn);
        let mut session = engine.session();
        let budget = QueryBudget::new().with_deadline(Duration::ZERO);
        for (i, query) in workload(&group).iter().enumerate() {
            let outcome = session.execute_with_budget(query, &budget).unwrap();
            let QueryOutcome::Partial(partial) = outcome else {
                panic!("indexed={indexed}, query {i}: zero deadline must be partial");
            };
            assert_eq!(partial.cause, ExhaustionCause::Deadline);
            assert!(
                partial.result.cells.is_empty(),
                "nothing can complete under a zero deadline"
            );
        }
    }
}

/// An unlimited budget routes through the exact path: always `Complete`,
/// results identical to plain `execute`.
#[test]
fn unlimited_budget_is_complete_and_identical() {
    let (rsn, group) = random_network(5, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    let mut reference = engine.session();
    let mut budgeted = engine.session();
    assert!(QueryBudget::unlimited().is_unlimited());
    for (i, query) in workload(&group).iter().enumerate() {
        let expect = reference.execute(query).unwrap();
        let outcome = budgeted
            .execute_with_budget(query, &QueryBudget::unlimited())
            .unwrap();
        let QueryOutcome::Complete(got) = outcome else {
            panic!("query {i}: unlimited budget must complete");
        };
        assert_results_identical(&format!("unlimited, query {i}"), &expect, &got);
    }
}

/// An *armed* but generous budget (finite work limit and deadline, so the
/// polling machinery actually runs) must also complete with identical
/// results — budget polling must never change an answer.
#[test]
fn armed_generous_budget_matches_unbudgeted_results() {
    let (rsn, group) = random_network(7, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    let mut reference = engine.session();
    let mut budgeted = engine.session();
    let budget = QueryBudget::new()
        .with_work_limit(u64::MAX)
        .with_deadline(Duration::from_secs(3600));
    assert!(!budget.is_unlimited());
    for (i, query) in workload(&group).iter().enumerate() {
        let expect = reference.execute(query).unwrap();
        let outcome = budgeted.execute_with_budget(query, &budget).unwrap();
        let QueryOutcome::Complete(got) = outcome else {
            panic!("query {i}: generous budget must complete");
        };
        assert_results_identical(&format!("armed, query {i}"), &expect, &got);
    }
}

/// A pre-set cancel flag stops the query at its first budget check with
/// `ExhaustionCause::Cancelled` — and clearing the flag restores service on
/// the same session.
#[test]
fn preset_cancel_flag_stops_the_query_cooperatively() {
    let (rsn, group) = random_network(11, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    let mut session = engine.session();
    let query = &workload(&group)[0];
    let flag = Arc::new(AtomicBool::new(true));
    let budget = QueryBudget::new().with_cancel_flag(Arc::clone(&flag));
    let outcome = session.execute_with_budget(query, &budget).unwrap();
    let QueryOutcome::Partial(partial) = outcome else {
        panic!("pre-set cancel flag must degrade to partial");
    };
    assert_eq!(partial.cause, ExhaustionCause::Cancelled);
    // Clear the flag: the same session and the same budget now complete.
    flag.store(false, Ordering::Relaxed);
    let outcome = session.execute_with_budget(query, &budget).unwrap();
    let expect = engine.session().execute(query).unwrap();
    assert_results_identical("after un-cancel", &expect, outcome.result());
    assert!(outcome.is_complete());
}

/// Strict mode turns exhaustion into `MacError::BudgetExhausted` instead of
/// a partial answer.
#[test]
fn strict_mode_surfaces_exhaustion_as_an_error() {
    let (rsn, group) = random_network(13, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    let mut session = engine.session();
    let query = &workload(&group)[0];
    let err = session
        .execute_with_budget_strict(query, &QueryBudget::new().with_work_limit(1))
        .unwrap_err();
    assert!(matches!(
        err,
        MacError::BudgetExhausted(ExhaustionCause::WorkLimit)
    ));
    // A generous strict budget still answers exactly.
    let got = session
        .execute_with_budget_strict(query, &QueryBudget::new().with_work_limit(u64::MAX))
        .unwrap();
    let expect = engine.session().execute(query).unwrap();
    assert_results_identical("strict complete", &expect, &got);
}

/// The budgeted batch keeps serving past a per-query failure: the invalid
/// query records its error in place, every other slot is served.
#[test]
fn budgeted_batch_keeps_going_past_an_invalid_query() {
    let (rsn, group) = random_network(17, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    let mut session = engine.session();
    let good = workload(&group);
    let mut invalid = good[0].clone();
    invalid.q.clear();
    let queries = vec![good[0].clone(), invalid, good[1].clone()];
    let batch =
        session.execute_batch_with_budget(&queries, &QueryBudget::new().with_work_limit(u64::MAX));
    assert_eq!(batch.outcomes.len(), 3);
    assert_eq!(batch.stats.queries, 3);
    assert!(matches!(batch.outcomes[1], Err(MacError::EmptyQuery)));
    let expect0 = engine.session().execute(&good[0]).unwrap();
    let expect2 = engine.session().execute(&good[1]).unwrap();
    assert_results_identical(
        "batch slot 0",
        &expect0,
        batch.outcomes[0].as_ref().unwrap().result(),
    );
    assert_results_identical(
        "batch slot 2",
        &expect2,
        batch.outcomes[2].as_ref().unwrap().result(),
    );
}

/// Reduced deterministic grid under the debug profile; the full grid runs in
/// the release CI job (same convention as the other proptest harnesses).
const FUZZ_CASES: u32 = if cfg!(debug_assertions) { 8 } else { 40 };

proptest! {
    #![proptest_config(ProptestConfig { cases: FUZZ_CASES, .. ProptestConfig::default() })]

    /// Cancellation safety at an arbitrary tick: for any work limit, on
    /// indexed and unindexed networks,
    /// 1. the budgeted run never panics and never errors;
    /// 2. a partial answer is an exact prefix of the full run's answer
    ///    (degradation monotonicity), and a complete answer IS the full
    ///    answer;
    /// 3. the interrupted session is left clean — the next *unbudgeted*
    ///    query through the same session is cell-identical to a fresh
    ///    session.
    #[test]
    fn interrupted_sessions_stay_clean_and_partials_are_prefixes(limit in 1u64..60_000) {
        let indexed = limit % 2 == 0;
        let (rsn, group) = random_network(29, 120, indexed);
        let engine = MacEngine::build_uncalibrated(rsn);
        let queries = workload(&group);
        let mut session = engine.session();
        for (i, query) in queries.iter().enumerate() {
            let full = engine.session().execute(query).unwrap();
            let outcome = session
                .execute_with_budget(query, &QueryBudget::new().with_work_limit(limit))
                .unwrap();
            match outcome {
                QueryOutcome::Complete(got) => {
                    assert_results_identical(
                        &format!("limit {limit}, query {i}, complete"),
                        &full,
                        &got,
                    );
                }
                QueryOutcome::Partial(partial) => {
                    prop_assert_eq!(partial.cause, ExhaustionCause::WorkLimit);
                    assert_prefix_of(
                        &format!("limit {limit}, query {i}, partial"),
                        &partial.result,
                        &full,
                    );
                }
            }
            // Session-clean invariant: the interrupted scratch must not leak
            // into the next query.
            let after = session.execute(query).unwrap();
            assert_results_identical(
                &format!("limit {limit}, query {i}, session-clean"),
                &full,
                &after,
            );
        }
    }
}

//! Dynamic-update equivalence: an engine mutated through
//! [`MacEngine::apply_updates`] (incremental G-tree matrix refresh,
//! incremental per-leaf user-target maintenance, epoch swap) must be
//! **query-identical** to an engine rebuilt from scratch on the post-update
//! network — across randomized sequences of edge reweights and user churn,
//! on indexed and unindexed networks, for plain execution, top-j, and batch
//! serving.
//!
//! The rebuilt reference is constructed from independently tracked shadow
//! state (an edge list and a location vector the test mutates itself), so a
//! bug in the engine's own mutation path cannot leak into the reference.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use road_social_mac::core::{
    AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, NetworkDelta, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::{Location, RangeFilterChoice, RoadNetwork};

const GTREE_LEAF_CAPACITY: usize = 16;

/// Builds a small random road-social network from a seed; the returned group
/// holds co-located high-coreness users to query from.
fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let d = 3;
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        d,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(GTREE_LEAF_CAPACITY)
    } else {
        rsn
    };
    (rsn, group)
}

fn region_for(sigma: f64) -> PrefRegion {
    let ranges: Vec<(f64, f64)> = (0..2)
        .map(|_| {
            (
                (1.0 / 3.0 - sigma / 2.0).max(0.0),
                (1.0 / 3.0 + sigma / 2.0).min(1.0),
            )
        })
        .collect();
    PrefRegion::from_ranges(&ranges).unwrap()
}

/// The serving workload every epoch is checked with: group and background
/// queries with varying |Q|, k, t, filter strategy, and problem (via j).
fn workload(rsn: &RoadSocialNetwork, group: &[u32], indexed: bool) -> Vec<MacQuery> {
    let n = rsn.num_users() as u32;
    let background: Vec<u32> = (0..n).filter(|v| !group.contains(v)).collect();
    let filters = if indexed {
        vec![
            RangeFilterChoice::Auto,
            RangeFilterChoice::DijkstraSweep,
            RangeFilterChoice::GTreeMultiSeedBatched,
        ]
    } else {
        vec![RangeFilterChoice::Auto, RangeFilterChoice::DijkstraSweep]
    };
    let mut queries = Vec::new();
    for i in 0..6usize {
        let q: Vec<u32> = if i % 3 == 2 {
            (0..2)
                .map(|j| background[(i * 11 + j * 17) % background.len()])
                .collect()
        } else {
            group.iter().copied().take(1 + i % 3).collect()
        };
        let k = 4 + (i % 2) as u32;
        let t = [30.0, 55.0, 85.0][i % 3];
        let mut query = MacQuery::new(q, k, t, region_for(0.1))
            .with_algorithm(AlgorithmChoice::Global)
            .with_range_filter(filters[i % filters.len()]);
        if i % 3 == 1 {
            query = query.with_top_j(2);
        }
        queries.push(query);
    }
    queries
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
    assert_eq!(
        a.stats.kt_core_vertices, b.stats.kt_core_vertices,
        "{label}: core size"
    );
}

/// One randomized update batch against independently tracked shadow state:
/// edge reweights first (never shrinking an edge below a resident on-edge
/// user's offset — the engine would rightly reject that), then user moves to
/// random vertex or on-edge locations.
fn random_delta(
    rng: &mut StdRng,
    edges: &mut [(u32, u32, f64)],
    locations: &mut [Location],
) -> NetworkDelta {
    let mut delta = NetworkDelta::new();
    for _ in 0..rng.random_range(1..5usize) {
        let idx = rng.random_range(0..edges.len());
        let (u, v, _) = edges[idx];
        // The smallest weight that keeps every resident on-edge user valid.
        let min_allowed = locations
            .iter()
            .filter_map(|loc| match *loc {
                Location::OnEdge {
                    u: lu,
                    v: lv,
                    offset,
                } if (lu, lv) == (u, v) => Some(offset),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let w = rng.random_range(0.25..9.0f64).max(min_allowed);
        edges[idx].2 = w;
        delta = delta.reweight_edge(u, v, w);
    }
    for _ in 0..rng.random_range(1..5usize) {
        let user = rng.random_range(0..locations.len()) as u32;
        let loc = if rng.random_range(0.0..1.0) < 0.5 {
            let (u, v, w) = edges[rng.random_range(0..edges.len())];
            Location::on_edge(u, v, rng.random_range(0.0..1.0) * w, w)
        } else {
            Location::Vertex(rng.random_range(0..locations.len() as u32 / 2))
        };
        locations[user as usize] = loc;
        delta = delta.move_user(user, loc);
    }
    delta
}

/// Reduced deterministic grid under the debug profile; the full grid runs in
/// the release CI job (same convention as the other fuzz harnesses).
const FUZZ_CASES: u32 = if cfg!(debug_assertions) { 3 } else { 8 };

proptest! {
    #![proptest_config(ProptestConfig { cases: FUZZ_CASES, .. ProptestConfig::default() })]

    /// Randomized edge-reweight + user-churn sequences: after every applied
    /// delta, the long-lived engine (one session, scratch carried across
    /// epochs) answers every workload query — plain, top-j, and batched —
    /// identically to an engine built from scratch on shadow-tracked
    /// post-update state.
    #[test]
    fn updated_engine_is_query_identical_to_scratch_rebuild(seed in 0u64..400) {
        let indexed = seed % 2 == 0;
        let (rsn0, group) = random_network(seed, 120, indexed);
        let n_road = rsn0.road().num_vertices();
        let social = rsn0.social().clone();
        let attrs = rsn0.all_attributes().to_vec();
        // Shadow state the reference is rebuilt from, mutated independently.
        let mut edges: Vec<(u32, u32, f64)> = rsn0.road().edges().collect();
        let mut locations: Vec<Location> = rsn0.locations().to_vec();

        let engine = MacEngine::build_uncalibrated(rsn0.clone());
        let mut session = engine.session();
        let queries = workload(&rsn0, &group, indexed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE17A);

        for batch in 0..3u64 {
            let delta = random_delta(&mut rng, &mut edges, &mut locations);
            let stats = engine.apply_updates(&delta).unwrap();
            prop_assert_eq!(stats.epoch, batch + 1);
            prop_assert_eq!(stats.edges_reweighted, delta.edge_updates.len());
            prop_assert_eq!(stats.users_moved, delta.user_moves.len());
            if indexed {
                let gstats = stats.gtree.expect("indexed engine reports G-tree stats");
                prop_assert!(gstats.dirty_leaves + gstats.dirty_internal <= gstats.total_nodes);
                prop_assert_eq!(
                    stats.user_targets_refreshed >= delta.user_moves.len(),
                    true
                );
            } else {
                prop_assert!(stats.gtree.is_none());
            }

            let rebuilt = RoadSocialNetwork::new(
                social.clone(),
                RoadNetwork::from_edges(n_road, &edges),
                locations.clone(),
                attrs.clone(),
            )
            .unwrap();
            let rebuilt = if indexed {
                rebuilt.with_gtree_index_capacity(GTREE_LEAF_CAPACITY)
            } else {
                rebuilt
            };
            let reference = MacEngine::build_uncalibrated(rebuilt);
            let mut reference_session = reference.session();

            for (i, query) in queries.iter().enumerate() {
                let label = format!("seed {seed}, batch {batch}, query {i}");
                let updated = session.execute(query).unwrap();
                let fresh = reference_session.execute(query).unwrap();
                assert_results_identical(&label, &updated, &fresh);
                if query.j > 1 {
                    let updated_j = session.execute_top_j(query).unwrap();
                    let fresh_j = reference_session.execute_top_j(query).unwrap();
                    assert_results_identical(&format!("{label} (top-j)"), &updated_j, &fresh_j);
                }
            }
            // Batch serving through the mutated engine equals the rebuilt
            // engine's batch, query by query.
            let updated_batch = session.execute_batch(&queries).unwrap();
            let fresh_batch = reference_session.execute_batch(&queries).unwrap();
            prop_assert_eq!(updated_batch.results.len(), fresh_batch.results.len());
            for (i, (a, b)) in updated_batch
                .results
                .iter()
                .zip(&fresh_batch.results)
                .enumerate()
            {
                assert_results_identical(
                    &format!("seed {seed}, batch {batch}, batched query {i}"),
                    a,
                    b,
                );
            }
        }
    }
}

/// A session opened before any update keeps serving across epochs with its
/// scratch intact, and pinned epochs stay immutable: results taken through
/// the old epoch's engine clone before the swap match a scratch rebuild of
/// the *old* network even while the updated engine serves the new one.
#[test]
fn sessions_span_epochs_and_pinned_epochs_stay_consistent() {
    let (rsn0, group) = random_network(9, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn0.clone());
    let mut session = engine.session();
    let queries = workload(&rsn0, &group, true);

    // Results on epoch 0, through the session that will outlive the update.
    let before: Vec<MacSearchResult> = queries
        .iter()
        .map(|q| session.execute(q).unwrap())
        .collect();
    let epoch0 = engine.epoch();

    let delta = NetworkDelta::new()
        .reweight_edge(
            rsn0.road().edges().next().unwrap().0,
            rsn0.road().edges().next().unwrap().1,
            7.5,
        )
        .move_user(group[0], Location::vertex(0));
    let stats = engine.apply_updates(&delta).unwrap();
    assert_eq!(stats.epoch, 1);
    assert_eq!(engine.epoch().id(), 1);

    // The pinned epoch-0 snapshot still answers like the original network:
    // a fresh engine on the unmodified network agrees with `before`.
    assert_eq!(epoch0.id(), 0);
    let unmodified = MacEngine::build_uncalibrated(rsn0.clone());
    let mut unmodified_session = unmodified.session();
    for (i, query) in queries.iter().enumerate() {
        let a = unmodified_session.execute(query).unwrap();
        assert_results_identical(&format!("epoch-0 query {i}"), &a, &before[i]);
    }

    // The surviving session serves epoch 1 and matches a scratch rebuild.
    let new_epoch = engine.epoch();
    let rebuilt = RoadSocialNetwork::new(
        new_epoch.network().social().clone(),
        new_epoch.network().road().clone(),
        new_epoch.network().locations().to_vec(),
        new_epoch.network().all_attributes().to_vec(),
    )
    .unwrap()
    .with_gtree_index_capacity(GTREE_LEAF_CAPACITY);
    let reference = MacEngine::build_uncalibrated(rebuilt);
    let mut reference_session = reference.session();
    for (i, query) in queries.iter().enumerate() {
        let a = session.execute(query).unwrap();
        let b = reference_session.execute(query).unwrap();
        assert_results_identical(&format!("epoch-1 query {i}"), &a, &b);
    }
    assert!(session.queries_executed() >= 2 * queries.len() as u64);
}

/// Threads serving through one shared engine while the main thread applies
/// deltas: every executed query must be internally consistent (it pins one
/// epoch), and after the updates settle all threads see the final network.
#[test]
fn concurrent_serving_during_updates_settles_on_the_final_epoch() {
    let (rsn0, group) = random_network(31, 120, true);
    let engine = MacEngine::build_uncalibrated(rsn0.clone());
    let queries = workload(&rsn0, &group, true);
    let deltas: Vec<NetworkDelta> = (0..4)
        .map(|i| {
            let (u, v, w) = rsn0.road().edges().nth(i * 3).unwrap();
            NetworkDelta::new()
                .reweight_edge(u, v, w * (1.0 + (i as f64 + 1.0) * 0.5))
                .move_user(group[i], Location::vertex((i * 2) as u32))
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let engine = engine.clone();
            let queries = &queries;
            scope.spawn(move || {
                let mut session = engine.session();
                for _ in 0..4 {
                    for query in queries {
                        // No result assertion across epochs — only that every
                        // pinned-epoch execution succeeds while deltas land.
                        session.execute(query).unwrap();
                    }
                }
            });
        }
        for delta in &deltas {
            engine.apply_updates(delta).unwrap();
        }
    });

    assert_eq!(engine.epoch().id(), deltas.len() as u64);
    // After the churn settles, serving matches a scratch rebuild.
    let epoch = engine.epoch();
    let rebuilt = RoadSocialNetwork::new(
        epoch.network().social().clone(),
        epoch.network().road().clone(),
        epoch.network().locations().to_vec(),
        epoch.network().all_attributes().to_vec(),
    )
    .unwrap()
    .with_gtree_index_capacity(GTREE_LEAF_CAPACITY);
    let reference = MacEngine::build_uncalibrated(rebuilt);
    let mut reference_session = reference.session();
    let mut session = engine.session();
    for (i, query) in queries.iter().enumerate() {
        let a = session.execute(query).unwrap();
        let b = reference_session.execute(query).unwrap();
        assert_results_identical(&format!("settled query {i}"), &a, &b);
    }
}

// ---------------------------------------------------------------------------
// Allocation accounting: the epoch copy must be copy-on-write.
// ---------------------------------------------------------------------------

/// Counts heap allocations made by the current thread. Only `alloc` is
/// tracked — the test compares deltas, so frees are irrelevant — and the
/// thread-local counter keeps other test threads out of the measurement.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown never panic.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// A small user-churn delta must copy only the touched leaves of the grouped
/// per-leaf seed rows, not the epoch's network or index: the social graph,
/// road network, attribute table, and G-tree matrices are Arc-shared between
/// epochs, and the per-leaf rows are Arc'd vectors edited copy-on-write. A
/// deep epoch clone on this network costs thousands of allocations (600
/// attribute vectors alone); the copy-on-write path stays under a couple
/// hundred.
#[test]
fn user_churn_delta_allocation_budget() {
    let (rsn, group) = random_network(13, 600, true);
    let engine = MacEngine::build_uncalibrated(rsn);
    // Warm up: the first delta faults in lazy one-time state.
    engine
        .apply_updates(&NetworkDelta::new().move_user(group[0], Location::vertex(3)))
        .unwrap();

    let before = thread_allocations();
    engine
        .apply_updates(&NetworkDelta::new().move_user(group[0], Location::vertex(9)))
        .unwrap();
    let spent = thread_allocations() - before;
    assert!(
        spent < 200,
        "one-user-move delta allocated {spent} times — the epoch copy is \
         deep-cloning shared state instead of Arc-sharing it"
    );
}

//! Property-based cross-crate consistency tests: on randomly generated
//! road-social networks, the global search must agree with the fixed-weight
//! peeling oracle on every reported cell, the local search must be sound with
//! respect to the global search, and every reported community must satisfy
//! the structural (k,t)-core constraints of Definition 5.

use proptest::prelude::*;
use road_social_mac::core::peel::peel_at_weight;
use road_social_mac::core::{
    GlobalSearch, LocalSearch, MacQuery, RoadSocialNetwork, SearchContext,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::QueryDistanceIndex;

/// Builds a small random road-social network from a seed.
fn random_network(seed: u64, n_users: usize, d: usize) -> (RoadSocialNetwork, Vec<u32>) {
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        d,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    (
        RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap(),
        group,
    )
}

fn region_for(d: usize, sigma: f64) -> PrefRegion {
    let center = 1.0 / d as f64;
    let ranges: Vec<(f64, f64)> = (0..d - 1)
        .map(|_| {
            (
                (center - sigma / 2.0).max(0.0),
                (center + sigma / 2.0).min(1.0),
            )
        })
        .collect();
    PrefRegion::from_ranges(&ranges).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn global_search_matches_peeling_oracle(seed in 0u64..500, sigma in 0.02f64..0.3) {
        let d = 3;
        let (rsn, group) = random_network(seed, 150, d);
        let q: Vec<u32> = group.iter().copied().take(2).collect();
        let query = MacQuery::new(q, 4, 60.0, region_for(d, sigma));
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        if let Some(ctx) = SearchContext::build(&rsn, &query).unwrap() {
            for cell in &result.cells {
                let oracle = peel_at_weight(&ctx, &cell.sample_weight);
                let expected = ctx.community_from_locals(&oracle.final_vertices);
                prop_assert_eq!(&cell.communities[0].vertices, &expected.vertices);
            }
        }
    }

    #[test]
    fn reported_communities_satisfy_definition_5_structure(seed in 500u64..900) {
        let d = 3;
        let (rsn, group) = random_network(seed, 120, d);
        let q: Vec<u32> = group.iter().copied().take(3).collect();
        let k = 4u32;
        let t = 60.0;
        let query = MacQuery::new(q.clone(), k, t, region_for(d, 0.1));
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        for cell in &result.cells {
            let community = &cell.communities[0];
            // contains the query users
            for &qv in &q {
                prop_assert!(community.contains(qv));
            }
            // minimum internal degree >= k (k-core condition)
            let (sub, _) = rsn.social().induced_subgraph(&community.vertices);
            let min_deg = (0..sub.num_vertices() as u32).map(|v| sub.degree(v)).min().unwrap();
            prop_assert!(min_deg as u32 >= k, "min degree {} < k {}", min_deg, k);
            // query distance <= t (communication-cost condition)
            let q_locs: Vec<_> = q.iter().map(|&v| *rsn.location(v)).collect();
            let idx = QueryDistanceIndex::build(rsn.road(), &q_locs, None);
            let member_locs: Vec<_> = community.vertices.iter().map(|&v| *rsn.location(v)).collect();
            prop_assert!(idx.query_distance_of_members(&member_locs) <= t + 1e-9);
        }
    }

    #[test]
    fn local_search_is_sound_on_random_networks(seed in 900u64..1200) {
        let d = 3;
        let (rsn, group) = random_network(seed, 120, d);
        let q: Vec<u32> = group.iter().copied().take(2).collect();
        let query = MacQuery::new(q, 4, 60.0, region_for(d, 0.1));
        let global = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        let local = LocalSearch::new(&rsn, &query).run_non_contained().unwrap();
        let global_set: Vec<Vec<u32>> = global
            .distinct_communities()
            .iter()
            .map(|c| c.vertices.clone())
            .collect();
        for c in local.distinct_communities() {
            prop_assert!(global_set.contains(&c.vertices));
        }
    }
}

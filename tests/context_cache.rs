//! Context-cache coherence under dynamic updates: a long-lived session with
//! a [`ContextCache`](road_social_mac::core::ContextCache) must answer every
//! query **identically** to a fresh cache-less session on the same engine
//! epoch — across repeated serving passes (which hit the cache) interleaved
//! with [`apply_updates`](road_social_mac::core::MacEngine::apply_updates)
//! batches (which must invalidate it). The fresh session is opened per pass,
//! so any stale context the cache wrongly reused would diverge immediately.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use road_social_mac::core::{
    AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, NetworkDelta, QueryBudget,
    RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::Location;

const GTREE_LEAF_CAPACITY: usize = 16;

/// Builds a small random road-social network from a seed; the returned group
/// holds co-located high-coreness users to query from.
fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let d = 3;
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        d,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(GTREE_LEAF_CAPACITY)
    } else {
        rsn
    };
    (rsn, group)
}

fn region_for(sigma: f64) -> PrefRegion {
    let ranges: Vec<(f64, f64)> = (0..2)
        .map(|_| {
            (
                (1.0 / 3.0 - sigma / 2.0).max(0.0),
                (1.0 / 3.0 + sigma / 2.0).min(1.0),
            )
        })
        .collect();
    PrefRegion::from_ranges(&ranges).unwrap()
}

/// A few hot queries, shaped so several share a context signature (same
/// users/k/t/region, different j) — exactly what the cache is for.
fn workload(group: &[u32]) -> Vec<MacQuery> {
    let mut queries = Vec::new();
    for i in 0..3usize {
        let q: Vec<u32> = group.iter().copied().take(1 + i).collect();
        let k = 4 + (i % 2) as u32;
        let t = [35.0, 60.0, 85.0][i];
        let base = MacQuery::new(q, k, t, region_for(0.1)).with_algorithm(AlgorithmChoice::Global);
        queries.push(base.clone().with_top_j(2));
        queries.push(base);
    }
    queries
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

/// One randomized update batch against independently tracked shadow state
/// (same shape as tests/engine_updates.rs).
fn random_delta(
    rng: &mut StdRng,
    edges: &mut [(u32, u32, f64)],
    locations: &mut [Location],
) -> NetworkDelta {
    let mut delta = NetworkDelta::new();
    for _ in 0..rng.random_range(1..5usize) {
        let idx = rng.random_range(0..edges.len());
        let (u, v, _) = edges[idx];
        let min_allowed = locations
            .iter()
            .filter_map(|loc| match *loc {
                Location::OnEdge {
                    u: lu,
                    v: lv,
                    offset,
                } if (lu, lv) == (u, v) => Some(offset),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let w = rng.random_range(0.25..9.0f64).max(min_allowed);
        edges[idx].2 = w;
        delta = delta.reweight_edge(u, v, w);
    }
    for _ in 0..rng.random_range(1..5usize) {
        let user = rng.random_range(0..locations.len()) as u32;
        let loc = if rng.random_range(0.0..1.0) < 0.5 {
            let (u, v, w) = edges[rng.random_range(0..edges.len())];
            Location::on_edge(u, v, rng.random_range(0.0..1.0) * w, w)
        } else {
            Location::Vertex(rng.random_range(0..locations.len() as u32 / 2))
        };
        locations[user as usize] = loc;
        delta = delta.move_user(user, loc);
    }
    delta
}

/// Reduced deterministic grid under the debug profile; the full grid runs in
/// the release CI job (same convention as the other fuzz harnesses).
const FUZZ_CASES: u32 = if cfg!(debug_assertions) { 3 } else { 8 };

proptest! {
    #![proptest_config(ProptestConfig { cases: FUZZ_CASES, .. ProptestConfig::default() })]

    /// Interleaves cached serving with update batches: on every epoch, two
    /// passes over the workload (the second pass served from the cache) must
    /// both equal a fresh cache-less session opened on the same epoch; after
    /// each delta the cache must invalidate rather than serve stale contexts.
    #[test]
    fn cached_queries_equal_fresh_rebuilds_across_update_interleavings(seed in 0u64..200) {
        let indexed = seed % 2 == 0;
        let (rsn0, group) = random_network(seed, 100, indexed);
        let mut edges: Vec<(u32, u32, f64)> = rsn0.road().edges().collect();
        let mut locations: Vec<Location> = rsn0.locations().to_vec();

        let engine = MacEngine::build_uncalibrated(rsn0);
        let mut cached = engine.session().with_context_cache(8);
        let queries = workload(&group);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAC4E);
        let unlimited = QueryBudget::unlimited();

        for batch in 0..3u64 {
            for pass in 0..2u32 {
                // Fresh session per pass: no cache, same engine epoch.
                let mut fresh = engine.session();
                for (i, query) in queries.iter().enumerate() {
                    let label = format!("seed {seed}, batch {batch}, pass {pass}, query {i}");
                    let hot = cached.execute(query).unwrap();
                    let cold = fresh.execute(query).unwrap();
                    assert_results_identical(&label, &hot, &cold);
                }
            }
            // The budgeted path shares the same cache entries.
            let outcome = cached.execute_with_budget(&queries[0], &unlimited).unwrap();
            prop_assert!(outcome.is_complete());
            let mut fresh = engine.session();
            assert_results_identical(
                &format!("seed {seed}, batch {batch}, budgeted"),
                outcome.result(),
                &fresh.execute(&queries[0]).unwrap(),
            );

            let delta = random_delta(&mut rng, &mut edges, &mut locations);
            let stats = engine.apply_updates(&delta).unwrap();
            prop_assert_eq!(stats.epoch, batch + 1);
        }

        // One more serving pass on the final epoch.
        let mut fresh = engine.session();
        let mut any_nonempty = false;
        for (i, query) in queries.iter().enumerate() {
            let label = format!("seed {seed}, final epoch, query {i}");
            let hot = cached.execute(query).unwrap();
            any_nonempty |= !hot.is_empty();
            assert_results_identical(&label, &hot, &fresh.execute(query).unwrap());
        }

        let stats = cached.stats();
        // Empty-core queries build no context and so cannot hit; only demand
        // hits when the workload actually answered something.
        prop_assert!(
            stats.context_cache_hits > 0 || !any_nonempty,
            "cache never hit: {}",
            stats
        );
        prop_assert_eq!(stats.errors, 0);
        let cache_stats = cached.context_cache_stats().expect("cache enabled");
        prop_assert!(
            cache_stats.epoch_invalidations >= 1,
            "updates must invalidate the cache (saw {:?})",
            cache_stats
        );
    }
}

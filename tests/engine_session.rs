//! Session-reuse equivalence: queries executed through one reused
//! [`QuerySession`] (scratch carried across queries, engine-resolved
//! strategies) must return results identical to fresh per-query construction
//! through the one-shot `GlobalSearch` / `LocalSearch` wrappers — across
//! interleaved query shapes, algorithms, filter strategies, and thread-shared
//! engines.

use proptest::prelude::*;
use road_social_mac::core::{
    AlgorithmChoice, ExecutionPolicy, GlobalSearch, LocalSearch, MacEngine, MacQuery,
    MacSearchResult, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::RangeFilterChoice;

/// Builds a small random road-social network from a seed; the returned group
/// holds co-located high-coreness users to query from.
fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let d = 3;
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        d,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(16)
    } else {
        rsn
    };
    (rsn, group)
}

fn region_for(sigma: f64) -> PrefRegion {
    let ranges: Vec<(f64, f64)> = (0..2)
        .map(|_| {
            (
                (1.0 / 3.0 - sigma / 2.0).max(0.0),
                (1.0 / 3.0 + sigma / 2.0).min(1.0),
            )
        })
        .collect();
    PrefRegion::from_ranges(&ranges).unwrap()
}

/// An interleaved query workload: varying |Q| (group and background users),
/// k, t, region width, algorithm, filter strategy, and problem (via j).
fn workload(rsn: &RoadSocialNetwork, group: &[u32], indexed: bool) -> Vec<MacQuery> {
    let n = rsn.num_users() as u32;
    let background: Vec<u32> = (0..n).filter(|v| !group.contains(v)).collect();
    let filters = if indexed {
        vec![
            RangeFilterChoice::Auto,
            RangeFilterChoice::DijkstraSweep,
            RangeFilterChoice::GTreePoint,
            RangeFilterChoice::GTreeLeafBatched,
            RangeFilterChoice::GTreeMultiSeedBatched,
        ]
    } else {
        vec![RangeFilterChoice::Auto, RangeFilterChoice::DijkstraSweep]
    };
    let mut queries = Vec::new();
    for i in 0..10usize {
        let q: Vec<u32> = if i % 3 == 2 {
            // scattered background users: mostly selective / empty answers
            (0..2)
                .map(|j| background[(i * 11 + j * 17) % background.len()])
                .collect()
        } else {
            group.iter().copied().take(1 + i % 3).collect()
        };
        let k = 4 + (i % 3) as u32;
        let t = [25.0, 50.0, 80.0][i % 3];
        let sigma = [0.05, 0.1, 0.15][(i / 3) % 3];
        let algorithm = match i % 4 {
            0 | 1 => AlgorithmChoice::Global,
            2 => AlgorithmChoice::Local,
            _ => AlgorithmChoice::Auto,
        };
        let mut query = MacQuery::new(q, k, t, region_for(sigma))
            .with_algorithm(algorithm)
            .with_range_filter(filters[i % filters.len()]);
        if i % 4 == 1 {
            query = query.with_top_j(2);
        }
        queries.push(query);
    }
    queries
}

/// The fresh per-query construction this PR's session path must match: the
/// legacy one-shot wrappers, with `Auto` resolved the way the session
/// resolves it (the engine's `local_core_threshold` is far above these core
/// sizes, so `Auto` is `Global` here).
fn fresh_reference(rsn: &RoadSocialNetwork, query: &MacQuery) -> MacSearchResult {
    let top_j = query.j > 1;
    match query.algorithm {
        AlgorithmChoice::Local => {
            let ls = LocalSearch::new(rsn, query);
            if top_j {
                ls.run_top_j().unwrap()
            } else {
                ls.run_non_contained().unwrap()
            }
        }
        _ => {
            let gs = GlobalSearch::new(rsn, query);
            if top_j {
                gs.run_top_j().unwrap()
            } else {
                gs.run_non_contained().unwrap()
            }
        }
    }
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
    assert_eq!(
        a.stats.kt_core_vertices, b.stats.kt_core_vertices,
        "{label}: core size"
    );
}

/// Reduced deterministic grid under the debug profile; the full grid runs in
/// the release CI job (same convention as the range-filter fuzz harness).
const FUZZ_CASES: u32 = if cfg!(debug_assertions) { 3 } else { 10 };

proptest! {
    #![proptest_config(ProptestConfig { cases: FUZZ_CASES, .. ProptestConfig::default() })]

    /// Interleaved queries through ONE reused session return results
    /// identical to fresh per-query construction — on indexed and unindexed
    /// networks, with the measured calibration probe enabled.
    #[test]
    fn session_reuse_matches_fresh_construction(seed in 0u64..400) {
        let indexed = seed % 2 == 0;
        let (rsn, group) = random_network(seed, 130, indexed);
        let engine = MacEngine::build(rsn.clone());
        let mut session = engine.session();
        for (i, query) in workload(&rsn, &group, indexed).iter().enumerate() {
            let fresh = fresh_reference(&rsn, query);
            let served = session.execute(query).unwrap();
            assert_results_identical(&format!("seed {seed}, query {i}"), &fresh, &served);
        }
    }
}

/// N threads sharing one cloned engine, each with its own session, must all
/// produce the serial reference results.
#[test]
fn threads_sharing_one_engine_match_serial_execution() {
    let (rsn, group) = random_network(42, 130, true);
    let engine = MacEngine::build(rsn.clone());
    let queries = workload(&rsn, &group, true);

    let mut serial_session = engine.session();
    let reference: Vec<MacSearchResult> = queries
        .iter()
        .map(|q| serial_session.execute(q).unwrap())
        .collect();

    const THREADS: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = engine.clone();
                let queries = &queries;
                scope.spawn(move || {
                    let mut session = engine.session();
                    queries
                        .iter()
                        .map(|q| session.execute(q).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let results = handle.join().expect("worker panicked");
            assert_eq!(results.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&results).enumerate() {
                assert_results_identical(&format!("thread query {i}"), a, b);
            }
        }
    });
}

/// A batch through one session equals the same queries executed
/// individually through a fresh session.
#[test]
fn batch_execution_matches_individual_execution() {
    let (rsn, group) = random_network(7, 120, true);
    let engine = MacEngine::build(rsn.clone());
    let queries = workload(&rsn, &group, true);
    let mut individual = engine.session();
    let expect: Vec<MacSearchResult> = queries
        .iter()
        .map(|q| individual.execute(q).unwrap())
        .collect();
    let mut batched = engine.session();
    let outcome = batched.execute_batch(&queries).unwrap();
    assert_eq!(outcome.stats.queries, queries.len());
    assert!(outcome.stats.queries_per_second > 0.0);
    for (i, (a, b)) in expect.iter().zip(&outcome.results).enumerate() {
        assert_results_identical(&format!("batch query {i}"), a, b);
    }
}

/// The filter strategy only affects speed, never answers: the explicit
/// G-tree point path, the explicit Dijkstra sweep, and the calibrated `Auto`
/// resolution all agree end-to-end. (This replaces the retired
/// `OracleChoice` compat pin: the per-user point path the legacy knob used to
/// select is now requested directly via `RangeFilterChoice::GTreePoint`.)
#[test]
fn filter_strategies_agree_end_to_end() {
    let (rsn, group) = random_network(11, 120, true);
    let engine = MacEngine::build(rsn.clone());
    let base = MacQuery::new(
        group.iter().copied().take(2).collect(),
        4,
        60.0,
        region_for(0.15),
    );
    let point = base
        .clone()
        .with_range_filter(RangeFilterChoice::GTreePoint);
    let mut session = engine.session();
    let via_point = session.execute(&point).unwrap();
    let via_sweep = session
        .execute(
            &base
                .clone()
                .with_range_filter(RangeFilterChoice::DijkstraSweep),
        )
        .unwrap();
    let via_auto = session.execute(&base).unwrap();
    let via_oneshot = GlobalSearch::new(&rsn, &point).run_non_contained().unwrap();
    assert_results_identical("point vs sweep", &via_point, &via_sweep);
    assert_results_identical("point vs auto", &via_point, &via_auto);
    assert_results_identical("point vs one-shot", &via_point, &via_oneshot);
    // An explicit query-level choice always wins over the calibrated Auto.
    let explicit = base.with_range_filter(RangeFilterChoice::DijkstraSweep);
    assert_eq!(
        engine.resolve_filter(&explicit),
        RangeFilterChoice::DijkstraSweep
    );
}

/// The measured calibration probe only affects *strategy selection*, never
/// results: engines with measured and analytic constants agree on every
/// workload query.
#[test]
fn measured_and_analytic_engines_agree_on_results() {
    let (rsn, group) = random_network(23, 120, true);
    let measured = MacEngine::build(rsn.clone());
    let analytic = MacEngine::build_uncalibrated(rsn.clone());
    assert!(!analytic.calibration().is_measured());
    let mut m_session = measured.session();
    let mut a_session = analytic.session();
    for (i, query) in workload(&rsn, &group, true).iter().enumerate() {
        let m = m_session.execute(query).unwrap();
        let a = a_session.execute(query).unwrap();
        assert_results_identical(&format!("calibration query {i}"), &m, &a);
    }
}

/// The engine → session → query policy layering: an engine-level
/// [`ExecutionPolicy`] seeds every session, a session-level `with_policy`
/// replaces it, and an explicit query-level choice still wins over both.
#[test]
fn execution_policy_layers_engine_session_query() {
    let (rsn, group) = random_network(31, 120, true);
    // Engine-level: default every Auto query to the local framework.
    let policy = ExecutionPolicy::new()
        .with_algorithm(AlgorithmChoice::Local)
        .with_max_candidates(20);
    let engine = MacEngine::build_uncalibrated_with_policy(rsn.clone(), policy);
    assert_eq!(engine.policy().algorithm, AlgorithmChoice::Local);
    let mut session = engine.session();
    assert_eq!(session.policy().max_candidates, 20);

    // A query left at Auto resolves through the policy default (Local here),
    // matching an explicitly Local query with the same candidate budget.
    let region = region_for(0.1);
    let auto_q = MacQuery::new(group[..2].to_vec(), 4, 50.0, region.clone());
    let local_q = auto_q.clone().with_algorithm(AlgorithmChoice::Local);
    let via_policy = session.execute(&auto_q).unwrap();
    let reference = LocalSearch::new(&rsn, &local_q)
        .with_max_candidates(20)
        .run_non_contained()
        .unwrap();
    assert_results_identical("policy-default Local", &via_policy, &reference);

    // Query-level choice wins over the policy default.
    let global_q = auto_q.clone().with_algorithm(AlgorithmChoice::Global);
    let via_query = session.execute(&global_q).unwrap();
    let gs_reference = GlobalSearch::new(&rsn, &global_q)
        .run_non_contained()
        .unwrap();
    assert_results_identical("query overrides policy", &via_query, &gs_reference);

    // Session-level with_policy replaces the engine's policy wholesale.
    let mut overridden = engine
        .session()
        .with_policy(ExecutionPolicy::new().with_parallelism(2));
    assert_eq!(overridden.policy().algorithm, AlgorithmChoice::Auto);
    assert_eq!(overridden.policy().parallelism, 2);
    let parallel = overridden.execute(&global_q).unwrap();
    assert_results_identical("parallel session ≡ serial", &parallel, &gs_reference);
}

/// The deprecated per-session setters survive as shims over the policy and
/// still steer execution exactly as before the redesign.
#[test]
#[allow(deprecated)]
fn deprecated_session_setters_still_steer_execution() {
    let (rsn, group) = random_network(37, 120, false);
    let engine = MacEngine::build_uncalibrated(rsn.clone());
    let mut session = engine
        .session()
        .with_parallelism(2)
        .with_expand_strategy(road_social_mac::core::ExpandStrategy::MinDegreeDriven {
            zeta: 100.0,
        })
        .with_max_candidates(20);
    assert_eq!(session.policy().parallelism, 2);
    assert_eq!(session.policy().max_candidates, 20);

    let region = region_for(0.1);
    let query =
        MacQuery::new(group[..2].to_vec(), 4, 50.0, region).with_algorithm(AlgorithmChoice::Local);
    let via_shim = session.execute(&query).unwrap();
    let reference = LocalSearch::new(&rsn, &query)
        .with_strategy(road_social_mac::core::ExpandStrategy::MinDegreeDriven { zeta: 100.0 })
        .with_max_candidates(20)
        .run_non_contained()
        .unwrap();
    assert_results_identical("deprecated shims", &via_shim, &reference);

    // The deprecated one-shot parallelism setter still works too.
    let gs_serial = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    let gs_parallel = GlobalSearch::new(&rsn, &query)
        .with_parallelism(2)
        .run_non_contained()
        .unwrap();
    assert_results_identical("deprecated GS parallelism", &gs_parallel, &gs_serial);
}

//! Session-reuse equivalence: queries executed through one reused
//! [`QuerySession`] (scratch carried across queries, engine-resolved
//! strategies) must return results identical to fresh per-query construction
//! through the one-shot `GlobalSearch` / `LocalSearch` wrappers — across
//! interleaved query shapes, algorithms, filter strategies, and thread-shared
//! engines.

use proptest::prelude::*;
use road_social_mac::core::{
    AlgorithmChoice, GlobalSearch, LocalSearch, MacEngine, MacQuery, MacSearchResult,
    RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::RangeFilterChoice;

/// Builds a small random road-social network from a seed; the returned group
/// holds co-located high-coreness users to query from.
fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let d = 3;
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        d,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(16)
    } else {
        rsn
    };
    (rsn, group)
}

fn region_for(sigma: f64) -> PrefRegion {
    let ranges: Vec<(f64, f64)> = (0..2)
        .map(|_| {
            (
                (1.0 / 3.0 - sigma / 2.0).max(0.0),
                (1.0 / 3.0 + sigma / 2.0).min(1.0),
            )
        })
        .collect();
    PrefRegion::from_ranges(&ranges).unwrap()
}

/// An interleaved query workload: varying |Q| (group and background users),
/// k, t, region width, algorithm, filter strategy, and problem (via j).
fn workload(rsn: &RoadSocialNetwork, group: &[u32], indexed: bool) -> Vec<MacQuery> {
    let n = rsn.num_users() as u32;
    let background: Vec<u32> = (0..n).filter(|v| !group.contains(v)).collect();
    let filters = if indexed {
        vec![
            RangeFilterChoice::Auto,
            RangeFilterChoice::DijkstraSweep,
            RangeFilterChoice::GTreePoint,
            RangeFilterChoice::GTreeLeafBatched,
            RangeFilterChoice::GTreeMultiSeedBatched,
        ]
    } else {
        vec![RangeFilterChoice::Auto, RangeFilterChoice::DijkstraSweep]
    };
    let mut queries = Vec::new();
    for i in 0..10usize {
        let q: Vec<u32> = if i % 3 == 2 {
            // scattered background users: mostly selective / empty answers
            (0..2)
                .map(|j| background[(i * 11 + j * 17) % background.len()])
                .collect()
        } else {
            group.iter().copied().take(1 + i % 3).collect()
        };
        let k = 4 + (i % 3) as u32;
        let t = [25.0, 50.0, 80.0][i % 3];
        let sigma = [0.05, 0.1, 0.15][(i / 3) % 3];
        let algorithm = match i % 4 {
            0 | 1 => AlgorithmChoice::Global,
            2 => AlgorithmChoice::Local,
            _ => AlgorithmChoice::Auto,
        };
        let mut query = MacQuery::new(q, k, t, region_for(sigma))
            .with_algorithm(algorithm)
            .with_range_filter(filters[i % filters.len()]);
        if i % 4 == 1 {
            query = query.with_top_j(2);
        }
        queries.push(query);
    }
    queries
}

/// The fresh per-query construction this PR's session path must match: the
/// legacy one-shot wrappers, with `Auto` resolved the way the session
/// resolves it (the engine's `local_core_threshold` is far above these core
/// sizes, so `Auto` is `Global` here).
fn fresh_reference(rsn: &RoadSocialNetwork, query: &MacQuery) -> MacSearchResult {
    let top_j = query.j > 1;
    match query.algorithm {
        AlgorithmChoice::Local => {
            let ls = LocalSearch::new(rsn, query);
            if top_j {
                ls.run_top_j().unwrap()
            } else {
                ls.run_non_contained().unwrap()
            }
        }
        _ => {
            let gs = GlobalSearch::new(rsn, query);
            if top_j {
                gs.run_top_j().unwrap()
            } else {
                gs.run_non_contained().unwrap()
            }
        }
    }
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
    assert_eq!(
        a.stats.kt_core_vertices, b.stats.kt_core_vertices,
        "{label}: core size"
    );
}

/// Reduced deterministic grid under the debug profile; the full grid runs in
/// the release CI job (same convention as the range-filter fuzz harness).
const FUZZ_CASES: u32 = if cfg!(debug_assertions) { 3 } else { 10 };

proptest! {
    #![proptest_config(ProptestConfig { cases: FUZZ_CASES, .. ProptestConfig::default() })]

    /// Interleaved queries through ONE reused session return results
    /// identical to fresh per-query construction — on indexed and unindexed
    /// networks, with the measured calibration probe enabled.
    #[test]
    fn session_reuse_matches_fresh_construction(seed in 0u64..400) {
        let indexed = seed % 2 == 0;
        let (rsn, group) = random_network(seed, 130, indexed);
        let engine = MacEngine::build(rsn.clone());
        let mut session = engine.session();
        for (i, query) in workload(&rsn, &group, indexed).iter().enumerate() {
            let fresh = fresh_reference(&rsn, query);
            let served = session.execute(query).unwrap();
            assert_results_identical(&format!("seed {seed}, query {i}"), &fresh, &served);
        }
    }
}

/// N threads sharing one cloned engine, each with its own session, must all
/// produce the serial reference results.
#[test]
fn threads_sharing_one_engine_match_serial_execution() {
    let (rsn, group) = random_network(42, 130, true);
    let engine = MacEngine::build(rsn.clone());
    let queries = workload(&rsn, &group, true);

    let mut serial_session = engine.session();
    let reference: Vec<MacSearchResult> = queries
        .iter()
        .map(|q| serial_session.execute(q).unwrap())
        .collect();

    const THREADS: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = engine.clone();
                let queries = &queries;
                scope.spawn(move || {
                    let mut session = engine.session();
                    queries
                        .iter()
                        .map(|q| session.execute(q).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let results = handle.join().expect("worker panicked");
            assert_eq!(results.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&results).enumerate() {
                assert_results_identical(&format!("thread query {i}"), a, b);
            }
        }
    });
}

/// A batch through one session equals the same queries executed
/// individually through a fresh session.
#[test]
fn batch_execution_matches_individual_execution() {
    let (rsn, group) = random_network(7, 120, true);
    let engine = MacEngine::build(rsn.clone());
    let queries = workload(&rsn, &group, true);
    let mut individual = engine.session();
    let expect: Vec<MacSearchResult> = queries
        .iter()
        .map(|q| individual.execute(q).unwrap())
        .collect();
    let mut batched = engine.session();
    let outcome = batched.execute_batch(&queries).unwrap();
    assert_eq!(outcome.stats.queries, queries.len());
    assert!(outcome.stats.queries_per_second > 0.0);
    for (i, (a, b)) in expect.iter().zip(&outcome.results).enumerate() {
        assert_results_identical(&format!("batch query {i}"), a, b);
    }
}

/// Regression pin for the deprecated oracle knob: `OracleChoice::GTree` with
/// the filter left at `Auto` must keep selecting the per-user G-tree point
/// path — through the engine's resolution and end-to-end — exactly as it did
/// before the engine existed.
#[test]
#[allow(deprecated)]
fn legacy_oracle_knob_keeps_selecting_the_gtree_point_path() {
    use road_social_mac::road::OracleChoice;
    let (rsn, group) = random_network(11, 120, true);
    let engine = MacEngine::build(rsn.clone());
    let base = MacQuery::new(
        group.iter().copied().take(2).collect(),
        4,
        60.0,
        region_for(0.15),
    );
    let legacy = base.clone().with_oracle(OracleChoice::GTree);
    assert_eq!(
        engine.resolve_filter(&legacy),
        RangeFilterChoice::GTreePoint,
        "oracle knob must keep selecting the point path"
    );
    // End-to-end: the legacy knob, the explicit point filter, and the legacy
    // one-shot path all agree.
    let mut session = engine.session();
    let via_knob = session.execute(&legacy).unwrap();
    let via_filter = session
        .execute(
            &base
                .clone()
                .with_range_filter(RangeFilterChoice::GTreePoint),
        )
        .unwrap();
    let via_oneshot = GlobalSearch::new(&rsn, &legacy)
        .run_non_contained()
        .unwrap();
    assert_results_identical("knob vs explicit filter", &via_knob, &via_filter);
    assert_results_identical("knob vs one-shot", &via_knob, &via_oneshot);
    // An explicit filter choice always wins over the knob.
    let overridden = base
        .with_oracle(OracleChoice::GTree)
        .with_range_filter(RangeFilterChoice::DijkstraSweep);
    assert_eq!(
        engine.resolve_filter(&overridden),
        RangeFilterChoice::DijkstraSweep
    );
}

/// The measured calibration probe only affects *strategy selection*, never
/// results: engines with measured and analytic constants agree on every
/// workload query.
#[test]
fn measured_and_analytic_engines_agree_on_results() {
    let (rsn, group) = random_network(23, 120, true);
    let measured = MacEngine::build(rsn.clone());
    let analytic = MacEngine::build_uncalibrated(rsn.clone());
    assert!(!analytic.calibration().is_measured());
    let mut m_session = measured.session();
    let mut a_session = analytic.session();
    for (i, query) in workload(&rsn, &group, true).iter().enumerate() {
        let m = m_session.execute(query).unwrap();
        let a = a_session.execute(query).unwrap();
        assert_results_identical(&format!("calibration query {i}"), &m, &a);
    }
}

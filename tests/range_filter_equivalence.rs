//! Property tests for the range-filter layer: the bounded Dijkstra sweep, the
//! per-user G-tree point oracle, the per-seed leaf-batched G-tree walk, and
//! the multi-seed batched G-tree walk are four implementations of the same
//! exact set operation — "which users have `D_Q(v) <= t`" — and must return
//! identical user sets on every input, including users located on the same
//! edge as a query location, users at distance exactly `t`, larger query sets
//! (|Q| up to 6, every location contributing its own entry columns to the
//! multi-seed walk), and thresholds yielding empty results.
//!
//! The full fuzz sweep is heavy for debug builds, so the case counts scale
//! with the profile: the debug CI job runs a reduced deterministic grid, the
//! release CI job (`cargo test --release`) runs the full one.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::road::dijkstra::sssp;
use road_social_mac::road::rangefilter::RangeFilter;
use road_social_mac::road::{GTree, Location, RoadNetwork};

fn fuzz_cases(full: u32) -> u32 {
    if cfg!(debug_assertions) {
        (full / 4).max(4)
    } else {
        full
    }
}

/// Random locations over a road network: a mix of vertex locations and
/// on-edge locations with offsets drawn inside the edge length (edge
/// endpoints inclusive, so "exactly at a vertex" shows up too).
fn random_locations(net: &RoadNetwork, count: usize, rng: &mut StdRng) -> Vec<Location> {
    let n = net.num_vertices() as u32;
    (0..count)
        .map(|_| {
            let v = rng.random_range(0..n);
            let neighbors = net.neighbors(v);
            if neighbors.is_empty() || rng.random_range(0.0..1.0) < 0.4 {
                Location::vertex(v)
            } else {
                let (u, w) = neighbors[rng.random_range(0..neighbors.len())];
                Location::OnEdge {
                    u: v,
                    v: u,
                    offset: rng.random_range(0.0..=w),
                }
            }
        })
        .collect()
}

fn gtree_filters(tree: &GTree) -> [RangeFilter<'_>; 3] {
    [
        RangeFilter::GTreePoint(tree),
        RangeFilter::GTreeLeafBatched(tree),
        RangeFilter::GTreeMultiSeedBatched(tree),
    ]
}

fn assert_filters_agree(
    net: &RoadNetwork,
    tree: &GTree,
    q: &[Location],
    t: f64,
    users: &[Location],
) {
    let reference = RangeFilter::DijkstraSweep.users_within(net, q, t, users);
    for filter in gtree_filters(tree) {
        let got = filter.users_within(net, q, t, users);
        prop_assert_eq!(
            &got,
            &reference,
            "{} disagrees with the Dijkstra sweep at t = {}",
            filter.name(),
            t
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases(24), .. ProptestConfig::default() })]

    /// On generated road networks with arbitrary query/user placements, all
    /// four strategies return the same user set for every threshold.
    #[test]
    fn filters_agree_on_random_networks(
        seed in 0u64..10_000,
        road_n in 60usize..220,
        leaf_capacity in 4usize..24,
        t in 0.0f64..80.0,
    ) {
        let net = generate_road(&RoadConfig::with_size(road_n, seed));
        let tree = GTree::build_with_capacity(&net, leaf_capacity);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF117E5);
        let q = random_locations(&net, rng.random_range(1..4), &mut rng);
        let users = random_locations(&net, 120, &mut rng);
        assert_filters_agree(&net, &tree, &q, t, &users);
    }

    /// Larger query sets: |Q| swept through 1..6, so the multi-seed walk
    /// carries up to a dozen entry columns whose intersection must match the
    /// per-location merges of the other strategies exactly.
    #[test]
    fn filters_agree_for_larger_query_sets(
        seed in 0u64..10_000,
        q_count in 1usize..6,
        leaf_capacity in 4usize..20,
        t in 0.0f64..60.0,
    ) {
        let net = generate_road(&RoadConfig::with_size(150, seed));
        let tree = GTree::build_with_capacity(&net, leaf_capacity);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF ^ q_count as u64);
        let q = random_locations(&net, q_count, &mut rng);
        let users = random_locations(&net, 100, &mut rng);
        assert_filters_agree(&net, &tree, &q, t, &users);
    }

    /// Same-edge placements: every user shares an edge with the (on-edge)
    /// query location, so the along-edge shortcut decides most memberships.
    #[test]
    fn filters_agree_for_users_on_the_query_edge(
        seed in 0u64..10_000,
        edge_weight in 2.0f64..40.0,
        q_offset in 0.0f64..1.0,
        t in 0.0f64..20.0,
    ) {
        // A heavy edge 0-1 inside a small ring, so the along-edge path and the
        // detour through the ring compete.
        let net = RoadNetwork::from_edges(
            5,
            &[
                (0, 1, edge_weight),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
            ],
        );
        let tree = GTree::build_with_capacity(&net, 4);
        let q = [Location::OnEdge { u: 0, v: 1, offset: q_offset * edge_weight }];
        let mut users: Vec<Location> = (0..=10)
            .map(|i| Location::OnEdge { u: 0, v: 1, offset: edge_weight * (i as f64) / 10.0 })
            .collect();
        users.extend((0..5).map(Location::vertex));
        assert_filters_agree(&net, &tree, &q, t, &users);
        let _ = seed;
    }

    /// All query locations on the same edge: the multi-seed walk then holds
    /// several columns whose seeds sit on the same two vertices with
    /// different offsets — a worst case for column bookkeeping.
    #[test]
    fn filters_agree_for_query_seeds_on_one_edge(
        seed in 0u64..10_000,
        q_count in 2usize..6,
        t in 0.0f64..40.0,
    ) {
        let net = generate_road(&RoadConfig::with_size(120, seed));
        let tree = GTree::build_with_capacity(&net, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        // Pick one edge and spread all query locations along it.
        let (eu, ev, ew) = {
            let n = net.num_vertices() as u32;
            let mut edge = None;
            for _ in 0..64 {
                let v = rng.random_range(0..n);
                let nbrs = net.neighbors(v);
                if !nbrs.is_empty() {
                    let (u, w) = nbrs[rng.random_range(0..nbrs.len())];
                    edge = Some((v, u, w));
                    break;
                }
            }
            match edge {
                Some(e) => e,
                None => return, // fully disconnected sample; nothing to test
            }
        };
        let q: Vec<Location> = (0..q_count)
            .map(|i| Location::OnEdge {
                u: eu.min(ev),
                v: eu.max(ev),
                offset: ew * (i as f64 + 0.5) / q_count as f64,
            })
            .collect();
        let mut users = random_locations(&net, 80, &mut rng);
        // ...including users on the very same edge.
        users.extend((0..=6).map(|i| Location::OnEdge {
            u: eu.min(ev),
            v: eu.max(ev),
            offset: ew * (i as f64) / 6.0,
        }));
        assert_filters_agree(&net, &tree, &q, t, &users);
    }

    /// `t` exactly equal to a shortest-path distance: the threshold predicate
    /// is `<= t`, and on **integer-weighted** networks every strategy
    /// assembles path sums exactly (f64 adds integers below 2^53 without
    /// rounding, in any association order), so boundary users must be kept by
    /// every strategy with no tolerance to hide behind. Continuous weights
    /// are excluded deliberately: there, differently-associated sums of the
    /// same path legitimately differ in the last ulp.
    #[test]
    fn filters_agree_at_exact_shortest_path_thresholds(
        seed in 0u64..10_000,
        leaf_capacity in 4usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD157);
        // Random integer-weighted network: a ring plus chords.
        let n = rng.random_range(60..140usize) as u32;
        let mut edges: Vec<(u32, u32, f64)> = (0..n)
            .map(|v| (v, (v + 1) % n, rng.random_range(1..9u32) as f64))
            .collect();
        for _ in 0..n {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            edges.push((u, v, rng.random_range(1..15u32) as f64));
        }
        let net = RoadNetwork::from_edges(n as usize, &edges);
        let tree = GTree::build_with_capacity(&net, leaf_capacity);
        let qv = rng.random_range(0..n);
        let dists = sssp(&net, qv);
        // Use a reachable vertex's exact distance as t (preferring a far one
        // so the boundary is non-trivial).
        let mut t = 0.0f64;
        for _ in 0..32 {
            let v = rng.random_range(0..n) as usize;
            if dists[v].is_finite() && dists[v] > t {
                t = dists[v];
            }
        }
        let q = [Location::vertex(qv)];
        let users: Vec<Location> = (0..n).map(Location::vertex).collect();
        assert_filters_agree(&net, &tree, &q, t, &users);
    }

    /// Thresholds below every distance: all four strategies must agree on the
    /// empty result (and on the singleton result at the query vertex itself).
    #[test]
    fn filters_agree_on_empty_results(
        seed in 0u64..10_000,
        leaf_capacity in 4usize..20,
    ) {
        let net = generate_road(&RoadConfig::with_size(100, seed));
        let tree = GTree::build_with_capacity(&net, leaf_capacity);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE397);
        let n = net.num_vertices() as u32;
        let qv = rng.random_range(0..n);
        let q = [Location::vertex(qv)];
        // Users strictly away from the query vertex, t = 0: nobody qualifies.
        let users: Vec<Location> = (0..n).filter(|&v| v != qv).map(Location::vertex).collect();
        let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, 0.0, &users);
        prop_assert!(
            reference.iter().all(|&w| !w),
            "t = 0 with users off the query vertex must filter everyone"
        );
        for filter in gtree_filters(&tree) {
            prop_assert_eq!(
                filter.users_within(&net, &q, 0.0, &users),
                reference.clone(),
                "{} disagrees on the empty result",
                filter.name()
            );
        }
    }
}

fn all_filters(tree: &GTree) -> [RangeFilter<'_>; 4] {
    [
        RangeFilter::DijkstraSweep,
        RangeFilter::GTreePoint(tree),
        RangeFilter::GTreeLeafBatched(tree),
        RangeFilter::GTreeMultiSeedBatched(tree),
    ]
}

/// Users at distance **exactly** `t` must be kept by every strategy: the
/// threshold predicate is `<= t`, and with integer edge weights all assembled
/// distances are exact, so there is no tolerance to hide behind.
#[test]
fn users_exactly_at_distance_t_are_kept_by_all_filters() {
    // A line 0-1-2-...-7 with unit weights plus a long chord 0-7.
    let mut edges: Vec<(u32, u32, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
    edges.push((0, 7, 16.0));
    let net = RoadNetwork::from_edges(8, &edges);
    let tree = GTree::build_with_capacity(&net, 4);
    let q = [Location::vertex(0)];
    let t = 3.0;
    let users = vec![
        Location::vertex(0), // 0
        Location::vertex(3), // exactly t
        Location::OnEdge {
            u: 2,
            v: 3,
            offset: 1.0,
        }, // exactly t (edge endpoint)
        Location::OnEdge {
            u: 3,
            v: 4,
            offset: 0.0,
        }, // exactly t (edge start)
        Location::OnEdge {
            u: 2,
            v: 3,
            offset: 0.5,
        }, // 2.5 < t
        Location::OnEdge {
            u: 3,
            v: 4,
            offset: 0.5,
        }, // 3.5 > t
        Location::vertex(4), // 4 > t
        Location::vertex(7), // 7 > t (chord longer)
    ];
    let expected = vec![true, true, true, true, true, false, false, false];
    for filter in all_filters(&tree) {
        assert_eq!(
            filter.users_within(&net, &q, t, &users),
            expected,
            "{} broke the boundary-exact membership",
            filter.name()
        );
    }
}

/// Multi-location queries intersect the per-location predicates; a user
/// exactly at distance t from one query location and within t of the other
/// stays, a user beyond t from either goes.
#[test]
fn multi_query_intersection_is_identical_across_filters() {
    let edges: Vec<(u32, u32, f64)> = (0..9).map(|i| (i, i + 1, 1.0)).collect();
    let net = RoadNetwork::from_edges(10, &edges);
    let tree = GTree::build_with_capacity(&net, 4);
    let q = [Location::vertex(2), Location::vertex(6)];
    let t = 4.0;
    // D_Q(v) = max(dist to 2, dist to 6) <= 4 keeps vertices 2..=6; vertex 0
    // is 6 away from vertex 6; vertices at the exact boundary stay.
    let users: Vec<Location> = (0..10).map(Location::vertex).collect();
    let expected: Vec<bool> = (0..10u32)
        .map(|v| (v as i64 - 2).abs().max((v as i64 - 6).abs()) <= 4)
        .collect();
    for filter in all_filters(&tree) {
        assert_eq!(
            filter.users_within(&net, &q, t, &users),
            expected,
            "{} broke the multi-query intersection",
            filter.name()
        );
    }
}

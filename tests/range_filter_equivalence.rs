//! Property tests for the range-filter layer: the bounded Dijkstra sweep, the
//! per-user G-tree point oracle, and the leaf-batched G-tree evaluation are
//! three implementations of the same exact set operation — "which users have
//! `D_Q(v) <= t`" — and must return identical user sets on every input,
//! including users located on the same edge as a query location and users at
//! distance exactly `t`.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::road::rangefilter::RangeFilter;
use road_social_mac::road::{GTree, Location, RoadNetwork};

/// Random locations over a road network: a mix of vertex locations and
/// on-edge locations with offsets drawn inside the edge length (edge
/// endpoints inclusive, so "exactly at a vertex" shows up too).
fn random_locations(net: &RoadNetwork, count: usize, rng: &mut StdRng) -> Vec<Location> {
    let n = net.num_vertices() as u32;
    (0..count)
        .map(|_| {
            let v = rng.random_range(0..n);
            let neighbors = net.neighbors(v);
            if neighbors.is_empty() || rng.random_range(0.0..1.0) < 0.4 {
                Location::vertex(v)
            } else {
                let (u, w) = neighbors[rng.random_range(0..neighbors.len())];
                Location::OnEdge {
                    u: v,
                    v: u,
                    offset: rng.random_range(0.0..=w),
                }
            }
        })
        .collect()
}

fn assert_filters_agree(
    net: &RoadNetwork,
    tree: &GTree,
    q: &[Location],
    t: f64,
    users: &[Location],
) {
    let reference = RangeFilter::DijkstraSweep.users_within(net, q, t, users);
    for filter in [
        RangeFilter::GTreePoint(tree),
        RangeFilter::GTreeLeafBatched(tree),
    ] {
        let got = filter.users_within(net, q, t, users);
        prop_assert_eq!(
            &got,
            &reference,
            "{} disagrees with the Dijkstra sweep at t = {}",
            filter.name(),
            t
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// On generated road networks with arbitrary query/user placements, all
    /// three strategies return the same user set for every threshold.
    #[test]
    fn filters_agree_on_random_networks(
        seed in 0u64..10_000,
        road_n in 60usize..220,
        leaf_capacity in 4usize..24,
        t in 0.0f64..80.0,
    ) {
        let net = generate_road(&RoadConfig::with_size(road_n, seed));
        let tree = GTree::build_with_capacity(&net, leaf_capacity);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF117E5);
        let q = random_locations(&net, rng.random_range(1..4), &mut rng);
        let users = random_locations(&net, 120, &mut rng);
        assert_filters_agree(&net, &tree, &q, t, &users);
    }

    /// Same-edge placements: every user shares an edge with the (on-edge)
    /// query location, so the along-edge shortcut decides most memberships.
    #[test]
    fn filters_agree_for_users_on_the_query_edge(
        seed in 0u64..10_000,
        edge_weight in 2.0f64..40.0,
        q_offset in 0.0f64..1.0,
        t in 0.0f64..20.0,
    ) {
        // A heavy edge 0-1 inside a small ring, so the along-edge path and the
        // detour through the ring compete.
        let net = RoadNetwork::from_edges(
            5,
            &[
                (0, 1, edge_weight),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
            ],
        );
        let tree = GTree::build_with_capacity(&net, 4);
        let q = [Location::OnEdge { u: 0, v: 1, offset: q_offset * edge_weight }];
        let mut users: Vec<Location> = (0..=10)
            .map(|i| Location::OnEdge { u: 0, v: 1, offset: edge_weight * (i as f64) / 10.0 })
            .collect();
        users.extend((0..5).map(Location::vertex));
        assert_filters_agree(&net, &tree, &q, t, &users);
    }
}

/// Users at distance **exactly** `t` must be kept by every strategy: the
/// threshold predicate is `<= t`, and with integer edge weights all assembled
/// distances are exact, so there is no tolerance to hide behind.
#[test]
fn users_exactly_at_distance_t_are_kept_by_all_filters() {
    // A line 0-1-2-...-7 with unit weights plus a long chord 0-7.
    let mut edges: Vec<(u32, u32, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
    edges.push((0, 7, 16.0));
    let net = RoadNetwork::from_edges(8, &edges);
    let tree = GTree::build_with_capacity(&net, 4);
    let q = [Location::vertex(0)];
    let t = 3.0;
    let users = vec![
        Location::vertex(0), // 0
        Location::vertex(3), // exactly t
        Location::OnEdge {
            u: 2,
            v: 3,
            offset: 1.0,
        }, // exactly t (edge endpoint)
        Location::OnEdge {
            u: 3,
            v: 4,
            offset: 0.0,
        }, // exactly t (edge start)
        Location::OnEdge {
            u: 2,
            v: 3,
            offset: 0.5,
        }, // 2.5 < t
        Location::OnEdge {
            u: 3,
            v: 4,
            offset: 0.5,
        }, // 3.5 > t
        Location::vertex(4), // 4 > t
        Location::vertex(7), // 7 > t (chord longer)
    ];
    let expected = vec![true, true, true, true, true, false, false, false];
    for filter in [
        RangeFilter::DijkstraSweep,
        RangeFilter::GTreePoint(&tree),
        RangeFilter::GTreeLeafBatched(&tree),
    ] {
        assert_eq!(
            filter.users_within(&net, &q, t, &users),
            expected,
            "{} broke the boundary-exact membership",
            filter.name()
        );
    }
}

/// Multi-location queries intersect the per-location predicates; a user
/// exactly at distance t from one query location and within t of the other
/// stays, a user beyond t from either goes.
#[test]
fn multi_query_intersection_is_identical_across_filters() {
    let edges: Vec<(u32, u32, f64)> = (0..9).map(|i| (i, i + 1, 1.0)).collect();
    let net = RoadNetwork::from_edges(10, &edges);
    let tree = GTree::build_with_capacity(&net, 4);
    let q = [Location::vertex(2), Location::vertex(6)];
    let t = 4.0;
    // D_Q(v) = max(dist to 2, dist to 6) <= 4 keeps vertices 2..=6; vertex 0
    // is 6 away from vertex 6; vertices at the exact boundary stay.
    let users: Vec<Location> = (0..10).map(Location::vertex).collect();
    let expected: Vec<bool> = (0..10u32)
        .map(|v| (v as i64 - 2).abs().max((v as i64 - 6).abs()) <= 4)
        .collect();
    for filter in [
        RangeFilter::DijkstraSweep,
        RangeFilter::GTreePoint(&tree),
        RangeFilter::GTreeLeafBatched(&tree),
    ] {
        assert_eq!(
            filter.users_within(&net, &q, t, &users),
            expected,
            "{} broke the multi-query intersection",
            filter.name()
        );
    }
}

//! Parallel execution is an implementation detail, never an answer change:
//! every parallel configuration — the work-stealing global search, the
//! fan-out local verification, the multi-worker batch — must be
//! cell-identical to its serial counterpart, on indexed and unindexed
//! networks, across engine epochs separated by live updates, and for both
//! problems (non-contained and top-j). These tests pin that contract with
//! seeded random networks; timing may differ between runs, answers may not.

use road_social_mac::core::{
    AlgorithmChoice, ExecutionPolicy, ExhaustionCause, GlobalSearch, LocalSearch, MacEngine,
    MacQuery, MacSearchResult, NetworkDelta, QueryBudget, QueryOutcome, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use std::time::Duration;

fn random_network(seed: u64, n_users: usize, indexed: bool) -> (RoadSocialNetwork, Vec<u32>) {
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
    let attrs = generate_attrs(
        n_users,
        3,
        AttrDistribution::Independent,
        10.0,
        seed ^ 0xA77,
    );
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed: seed ^ 0x10C,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
    let rsn = if indexed {
        rsn.with_gtree_index_capacity(16)
    } else {
        rsn
    };
    (rsn, group)
}

fn region() -> PrefRegion {
    PrefRegion::from_ranges(&[(0.25, 0.40), (0.25, 0.40)]).unwrap()
}

/// A mixed workload exercising both problems and both algorithms, with exact
/// signature repeats so batch deduplication has something to do.
fn workload(group: &[u32]) -> Vec<MacQuery> {
    let q2: Vec<u32> = group.iter().copied().take(2).collect();
    vec![
        MacQuery::new(vec![group[0]], 4, 50.0, region()),
        MacQuery::new(q2.clone(), 5, 50.0, region()).with_top_j(2),
        MacQuery::new(vec![group[0]], 4, 50.0, region()),
        MacQuery::new(q2.clone(), 4, 80.0, region()).with_algorithm(AlgorithmChoice::Local),
        MacQuery::new(q2, 5, 50.0, region()).with_top_j(2),
    ]
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        assert_eq!(ca.cell, cb.cell, "{label}: cell {i} geometry");
        assert_eq!(
            ca.sample_weight, cb.sample_weight,
            "{label}: cell {i} sample weight"
        );
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: cell {i} communities"
        );
    }
}

/// The parallel global search — work stealing on or off, several worker
/// counts — reports exactly the serial DFS's cells, in the serial DFS's
/// order, for both problems, on indexed and unindexed networks.
#[test]
fn parallel_global_search_matches_serial() {
    for seed in [11u64, 42, 77] {
        for indexed in [false, true] {
            let (rsn, group) = random_network(seed, 130, indexed);
            let q2: Vec<u32> = group.iter().copied().take(2).collect();
            for (query, top_j) in [
                (MacQuery::new(q2.clone(), 4, 60.0, region()), false),
                (
                    MacQuery::new(q2.clone(), 4, 60.0, region()).with_top_j(3),
                    true,
                ),
            ] {
                let gs = GlobalSearch::new(&rsn, &query);
                let serial = if top_j {
                    gs.run_top_j().unwrap()
                } else {
                    gs.run_non_contained().unwrap()
                };
                for workers in [2usize, 3] {
                    for stealing in [false, true] {
                        let policy = ExecutionPolicy::new()
                            .with_parallelism(workers)
                            .with_work_stealing(stealing);
                        let par = GlobalSearch::new(&rsn, &query).with_policy(&policy);
                        let got = if top_j {
                            par.run_top_j().unwrap()
                        } else {
                            par.run_non_contained().unwrap()
                        };
                        assert_results_identical(
                            &format!(
                                "seed {seed}, indexed {indexed}, top_j {top_j}, \
                                 workers {workers}, stealing {stealing}"
                            ),
                            &serial,
                            &got,
                        );
                    }
                }
            }
        }
    }
}

/// The local framework's parallel candidate verification reports exactly the
/// serial verification's cells, for both problems.
#[test]
fn parallel_local_search_matches_serial() {
    for seed in [5u64, 23, 61] {
        let (rsn, group) = random_network(seed, 130, seed % 2 == 0);
        let q2: Vec<u32> = group.iter().copied().take(2).collect();
        for (query, top_j) in [
            (MacQuery::new(q2.clone(), 4, 70.0, region()), false),
            (
                MacQuery::new(q2.clone(), 4, 70.0, region()).with_top_j(2),
                true,
            ),
        ] {
            let ls = LocalSearch::new(&rsn, &query).with_max_candidates(16);
            let serial = if top_j {
                ls.run_top_j().unwrap()
            } else {
                ls.run_non_contained().unwrap()
            };
            for workers in [2usize, 4] {
                let policy = ExecutionPolicy::new()
                    .with_parallelism(workers)
                    .with_max_candidates(16);
                let par = LocalSearch::new(&rsn, &query).with_policy(&policy);
                let got = if top_j {
                    par.run_top_j().unwrap()
                } else {
                    par.run_non_contained().unwrap()
                };
                assert_results_identical(
                    &format!("seed {seed}, top_j {top_j}, workers {workers}"),
                    &serial,
                    &got,
                );
            }
        }
    }
}

/// The multi-worker batch returns, slot for slot, the results a serial
/// session produces — including the deduplicated repeats — and stays
/// identical across an `apply_updates` epoch change.
#[test]
fn parallel_batch_matches_serial_across_epochs() {
    for indexed in [false, true] {
        let (rsn, group) = random_network(7, 130, indexed);
        let engine = MacEngine::build_uncalibrated(rsn);
        let queries = workload(&group);

        let parallel_policy = engine.policy().clone().with_parallelism(3);
        for epoch in 0..2 {
            let serial = engine
                .session()
                .execute_batch(&queries)
                .expect("serial batch");
            let parallel = engine
                .session()
                .with_policy(parallel_policy.clone())
                .execute_batch(&queries)
                .expect("parallel batch");
            assert_eq!(
                serial.stats.deduplicated, parallel.stats.deduplicated,
                "indexed {indexed}, epoch {epoch}: dedup count"
            );
            assert_eq!(serial.results.len(), parallel.results.len());
            for (i, (a, b)) in serial.results.iter().zip(&parallel.results).enumerate() {
                assert_results_identical(
                    &format!("indexed {indexed}, epoch {epoch}, slot {i}"),
                    a,
                    b,
                );
            }

            // Nudge one road edge and repeat on the new epoch.
            if epoch == 0 {
                let (u, v, w) = {
                    let net = engine.epoch();
                    let road = net.network().road();
                    let (v, w) = road.neighbors(0)[0];
                    (0u32, v, w)
                };
                engine
                    .apply_updates(&NetworkDelta::new().reweight_edge(u, v, w * 1.5))
                    .expect("update applies");
            }
        }
    }
}

/// A zero deadline degrades **every** query to `Partial` even when the
/// session's policy asks for parallel execution: the shared-budget latch
/// stops all workers, the merge yields a coherent (empty) prefix, and no
/// worker panics or leaks a stale result into the next query.
#[test]
fn zero_deadline_under_parallelism_is_partial_per_query() {
    let (rsn, group) = random_network(3, 120, true);
    let policy = ExecutionPolicy::new()
        .with_parallelism(3)
        .with_work_stealing(true);
    let engine = MacEngine::build_uncalibrated_with_policy(rsn, policy);
    let mut session = engine.session();
    let budget = QueryBudget::new().with_deadline(Duration::ZERO);

    let queries = workload(&group);
    for (i, query) in queries.iter().enumerate() {
        let outcome = session.execute_with_budget(query, &budget).unwrap();
        let QueryOutcome::Partial(partial) = outcome else {
            panic!("query {i}: zero deadline under parallelism must be partial");
        };
        assert_eq!(partial.cause, ExhaustionCause::Deadline, "query {i}");
        assert!(
            partial.result.cells.is_empty(),
            "query {i}: nothing can complete under a zero deadline"
        );
    }
    // The budgeted batch path reports the same, per slot.
    let batch = session.execute_batch_with_budget(&queries, &budget);
    assert_eq!(batch.outcomes.len(), queries.len());
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        match outcome {
            Ok(QueryOutcome::Partial(partial)) => {
                assert_eq!(partial.cause, ExhaustionCause::Deadline, "slot {i}")
            }
            other => panic!("slot {i}: expected a partial outcome, got {other:?}"),
        }
    }
    // The session is still clean: an unbudgeted query now completes and
    // matches a fresh serial session.
    let fresh = engine
        .session()
        .with_policy(ExecutionPolicy::new())
        .execute(&queries[0])
        .unwrap();
    let after = session.execute(&queries[0]).unwrap();
    assert_results_identical("post-exhaustion query", &fresh, &after);
}

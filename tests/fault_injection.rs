//! Fault-injected update hardening (requires `--features failpoints`): a
//! forced error — or a forced panic — at **every** stage of
//! [`MacEngine::apply_updates`] must leave the engine serving a consistent
//! state: the epoch is either the old one or the new one, never torn, and
//! queries against it are identical to a clean engine built directly on that
//! state. After the fault clears, the same delta must land normally even
//! when the injected panic poisoned the engine's locks.

#![cfg(feature = "failpoints")]

use road_social_mac::core::{
    MacEngine, MacError, MacQuery, MacSearchResult, NetworkDelta, RoadSocialNetwork, UpdateStage,
};
use road_social_mac::geom::PrefRegion;
use road_social_mac::graph::graph::Graph;
use road_social_mac::road::network::{Location, RoadNetwork};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The test network in either its pre-delta (`updated = false`) or
/// post-delta (`updated = true`) state, built from scratch — the clean
/// reference a fault-surviving engine must be query-identical to.
fn network(updated: bool, indexed: bool) -> RoadSocialNetwork {
    let social = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
    let w01 = if updated { 5.0 } else { 1.0 };
    let road = RoadNetwork::from_edges(4, &[(0, 1, w01), (1, 2, 1.0), (2, 3, 10.0)]);
    let loc5 = if updated {
        Location::vertex(1)
    } else {
        Location::vertex(3)
    };
    let locations = vec![
        Location::vertex(0),
        Location::vertex(0),
        Location::vertex(1),
        Location::vertex(3),
        Location::vertex(3),
        loc5,
    ];
    let attrs = vec![vec![1.0, 1.0]; 6];
    let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
    if indexed {
        rsn.with_gtree_index_capacity(4)
    } else {
        rsn
    }
}

/// The delta taking the old state to the new one. The reweight flips the
/// query answer (vertex 1 moves out of user 0's t-ball), so old-epoch and
/// new-epoch results are distinguishable; the user move exercises the
/// leaf-edit stage.
fn delta() -> NetworkDelta {
    NetworkDelta::new()
        .reweight_edge(0, 1, 5.0)
        .move_user(5, Location::vertex(1))
}

fn queries() -> Vec<MacQuery> {
    let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
    vec![
        MacQuery::new(vec![0], 2, 2.0, region.clone()),
        MacQuery::new(vec![3, 4], 2, 12.0, region).with_top_j(2),
    ]
}

fn serve(engine: &MacEngine) -> Vec<MacSearchResult> {
    let mut session = engine.session();
    queries()
        .iter()
        .map(|q| session.execute(q).unwrap())
        .collect()
}

fn assert_results_identical(label: &str, a: &[MacSearchResult], b: &[MacSearchResult]) {
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            ra.cells.len(),
            rb.cells.len(),
            "{label}: query {i} cell count"
        );
        for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
            assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: query {i}");
            assert_eq!(
                ca.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                cb.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                "{label}: query {i} communities"
            );
        }
    }
}

/// Asserts the engine serves exactly the clean old state or the clean new
/// state — never anything in between — and returns which.
fn assert_consistent(label: &str, engine: &MacEngine, indexed: bool) -> bool {
    let epoch = engine.epoch().id();
    let updated = match epoch {
        0 => false,
        1 => true,
        other => panic!("{label}: unexpected epoch {other}"),
    };
    let clean = MacEngine::build_uncalibrated(network(updated, indexed));
    assert_results_identical(label, &serve(&clean), &serve(engine));
    updated
}

/// The two epochs really answer differently — otherwise the consistency
/// checks above could not distinguish a torn state.
#[test]
fn the_delta_changes_query_answers() {
    let old = serve(&MacEngine::build_uncalibrated(network(false, true)));
    let new = serve(&MacEngine::build_uncalibrated(network(true, true)));
    assert_ne!(
        old[0]
            .cells
            .iter()
            .map(|c| c
                .communities
                .iter()
                .map(|m| &m.vertices)
                .collect::<Vec<_>>())
            .collect::<Vec<_>>(),
        new[0]
            .cells
            .iter()
            .map(|c| c
                .communities
                .iter()
                .map(|m| &m.vertices)
                .collect::<Vec<_>>())
            .collect::<Vec<_>>(),
    );
}

/// An injected *error* at every stage rejects the delta cleanly: the old
/// epoch keeps serving, and after clearing the hook the delta lands and the
/// engine equals a clean rebuild on the new state.
#[test]
fn injected_errors_at_every_stage_leave_the_engine_consistent() {
    for indexed in [true, false] {
        for stage in UpdateStage::ALL {
            let label = format!("error @ {} (indexed={indexed})", stage.name());
            let engine = MacEngine::build_uncalibrated(network(false, indexed));
            engine.set_failpoint(move |s| {
                if s == stage {
                    Err(MacError::InconsistentNetwork(format!(
                        "injected fault at {}",
                        s.name()
                    )))
                } else {
                    Ok(())
                }
            });
            let err = engine.apply_updates(&delta()).unwrap_err();
            assert!(
                err.to_string().contains(stage.name()),
                "{label}: fault not surfaced: {err}"
            );
            let updated = assert_consistent(&label, &engine, indexed);
            assert!(!updated, "{label}: a rejected delta must not land");
            // Fault cleared: the same delta lands and serves the new state.
            engine.clear_failpoint();
            let stats = engine.apply_updates(&delta()).unwrap();
            assert_eq!(stats.epoch, 1, "{label}: retry must advance the epoch");
            let updated = assert_consistent(&format!("{label}, after retry"), &engine, indexed);
            assert!(updated, "{label}: retried delta must serve the new state");
        }
    }
}

/// An injected *panic* at every stage — including one that fires while the
/// epoch write lock is held (the swap stage), poisoning it — must leave the
/// engine serving a consistent state, and the poison-recovering accessors
/// must let a retried delta land.
#[test]
fn injected_panics_at_every_stage_leave_the_engine_consistent() {
    for indexed in [true, false] {
        for stage in UpdateStage::ALL {
            let label = format!("panic @ {} (indexed={indexed})", stage.name());
            let engine = MacEngine::build_uncalibrated(network(false, indexed));
            engine.set_failpoint(move |s| {
                if s == stage {
                    panic!("injected panic at {}", s.name());
                }
                Ok(())
            });
            let unwound = catch_unwind(AssertUnwindSafe(|| engine.apply_updates(&delta())));
            assert!(unwound.is_err(), "{label}: the injected panic must unwind");
            // Every stage fires before the epoch store, so the old epoch
            // must still be served — by existing handles and new sessions
            // alike, even through poisoned locks.
            let updated = assert_consistent(&label, &engine, indexed);
            assert!(!updated, "{label}: a panicked update must not land");
            // Fault cleared: the delta lands despite the poisoned locks.
            engine.clear_failpoint();
            let stats = engine.apply_updates(&delta()).unwrap();
            assert_eq!(stats.epoch, 1, "{label}: retry must advance the epoch");
            let updated = assert_consistent(&format!("{label}, after retry"), &engine, indexed);
            assert!(updated, "{label}: retried delta must serve the new state");
        }
    }
}

/// A transient fault (fails once, then heals) needs no explicit clear: the
/// caller's retry goes through with the hook still installed.
#[test]
fn transient_faults_recover_on_retry_without_clearing() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let engine = MacEngine::build_uncalibrated(network(false, true));
    let tripped = Arc::new(AtomicBool::new(false));
    let hook_tripped = Arc::clone(&tripped);
    engine.set_failpoint(move |s| {
        if s == UpdateStage::GTreeRefresh && !hook_tripped.swap(true, Ordering::Relaxed) {
            return Err(MacError::InconsistentNetwork("transient fault".into()));
        }
        Ok(())
    });
    assert!(engine.apply_updates(&delta()).is_err());
    assert_eq!(engine.epoch().id(), 0);
    let stats = engine.apply_updates(&delta()).unwrap();
    assert_eq!(stats.epoch, 1);
    assert!(assert_consistent("transient retry", &engine, true));
}

/// A panic escaping query execution is contained by the session guard: it
/// surfaces as `MacError::ExecutionPanicked`, the scratch is rebuilt, and
/// the very next query through the same session serves normally — identical
/// to a fresh session. The engine and its other sessions are untouched.
#[test]
fn query_panics_are_contained_and_the_session_recovers() {
    let engine = MacEngine::build_uncalibrated(network(false, true));
    let reference = serve(&engine);
    let mut session = engine.session();
    for (i, query) in queries().iter().enumerate() {
        // Warm the scratch, then panic mid-query, then serve again.
        session.execute(query).unwrap();
        session.inject_panic_on_next_query();
        let err = session.execute(query).unwrap_err();
        match err {
            MacError::ExecutionPanicked(msg) => {
                assert!(msg.contains("injected query panic"), "payload: {msg}")
            }
            other => panic!("expected ExecutionPanicked, got {other:?}"),
        }
        let again = session.execute(query).unwrap();
        assert_results_identical(
            &format!("post-panic query {i}"),
            std::slice::from_ref(&reference[i]),
            std::slice::from_ref(&again),
        );
    }
    // Budgeted paths are guarded too.
    use road_social_mac::core::QueryBudget;
    session.inject_panic_on_next_query();
    let err = session
        .execute_with_budget(&queries()[0], &QueryBudget::new().with_work_limit(u64::MAX))
        .unwrap_err();
    assert!(matches!(err, MacError::ExecutionPanicked(_)));
    // The engine itself never noticed.
    assert_eq!(engine.epoch().id(), 0);
    assert_results_identical("engine unaffected", &reference, &serve(&engine));
}

#[test]
fn update_stages_are_ordered_and_named() {
    let names: Vec<&str> = UpdateStage::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(
        names,
        [
            "validate",
            "gtree-refresh",
            "leaf-edits",
            "recalibrate",
            "swap"
        ]
    );
}

//! Structural property tests for the G-tree build.
//!
//! The multi-seed batched walk leans entirely on build-time structure: the
//! partition hierarchy, the border sets, the per-node distance matrices, and
//! the precomputed border-index arrays that replaced the hot-loop hash
//! lookups. These tests pin the invariants that make the walk exact:
//!
//! * every node's region is the disjoint union of its children's regions,
//!   and the leaves partition the vertex set;
//! * border sets are supersets of the child cut vertices — any vertex with a
//!   road edge leaving its (child) region is a border of that child, and a
//!   parent's borders all appear among its children's borders (the union
//!   border space), so entry vectors can always be extended downwards;
//! * distance matrices are symmetric with a zero diagonal (the road network
//!   is undirected), and matrix values never beat the global shortest path;
//! * the precomputed index arrays (`border_rows`, `child_border_rows`,
//!   `leaf_pos`) round-trip through the build-time `ub_index` hash maps they
//!   replaced.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use road_social_mac::core::{
    AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;
use road_social_mac::road::{sssp, EdgeUpdate, GTree, RangeFilterChoice, RoadNetwork};

fn check_invariants(net: &RoadNetwork, tree: &GTree) {
    let n = net.num_vertices();

    // Leaves partition the vertex set, and leaf_pos round-trips.
    let mut seen = vec![false; n];
    for id in 0..tree.num_nodes() {
        if !tree.children_of(id).is_empty() {
            continue;
        }
        for &v in tree.vertices_of(id) {
            prop_assert!(!seen[v as usize], "vertex {v} in two leaves");
            seen[v as usize] = true;
            prop_assert_eq!(tree.leaf_id_of(v), id);
            prop_assert_eq!(tree.union_borders_of(id)[tree.leaf_position_of(v)], v);
        }
    }
    prop_assert!(seen.iter().all(|&b| b), "some vertex is in no leaf");

    let mut in_region = vec![false; n];
    for id in 0..tree.num_nodes() {
        let children = tree.children_of(id);

        // A node's region is the disjoint union of its children's regions.
        if !children.is_empty() {
            let child_total: usize = children.iter().map(|&c| tree.vertices_of(c).len()).sum();
            prop_assert_eq!(child_total, tree.vertices_of(id).len());
            for &c in children {
                prop_assert_eq!(tree.parent_of(c), Some(id));
                for &v in tree.vertices_of(c) {
                    prop_assert!(!in_region[v as usize]);
                    in_region[v as usize] = true;
                }
            }
            for &v in tree.vertices_of(id) {
                prop_assert!(in_region[v as usize], "child regions miss vertex {v}");
                in_region[v as usize] = false;
            }
        }

        // Border supersets: every vertex with an edge leaving the region is a
        // border (in particular every cut vertex towards a sibling child).
        for &v in tree.vertices_of(id) {
            in_region[v as usize] = true;
        }
        for &v in tree.vertices_of(id) {
            let leaves_region = net
                .neighbors(v)
                .iter()
                .any(|&(u, _)| !in_region[u as usize]);
            if leaves_region {
                prop_assert!(
                    tree.borders_of(id).contains(&v),
                    "cut vertex {v} missing from borders of node {id}"
                );
            }
        }
        for &v in tree.vertices_of(id) {
            in_region[v as usize] = false;
        }

        // A parent's borders all appear in its union-border space (they are
        // borders of some child), so entry vectors extend downwards.
        for &b in tree.borders_of(id) {
            prop_assert!(
                tree.ub_position_of(id, b).is_some(),
                "border {b} of node {id} missing from its union borders"
            );
        }

        // Matrices: symmetric, zero diagonal, never better than the global
        // shortest path (within-region distances are restrictions).
        let ub = tree.union_borders_of(id);
        for i in 0..ub.len() {
            prop_assert_eq!(tree.matrix_entry(id, i, i), 0.0);
            for j in (i + 1)..ub.len() {
                let a = tree.matrix_entry(id, i, j);
                let b = tree.matrix_entry(id, j, i);
                prop_assert!(
                    (a == b) || (a - b).abs() < 1e-9,
                    "matrix of node {id} not symmetric at ({i},{j}): {a} vs {b}"
                );
                let global = tree.dist(ub[i], ub[j]);
                prop_assert!(
                    a >= global - 1e-9,
                    "within-region distance {a} beats global {global} for node {id}"
                );
            }
        }

        // Precomputed border-index arrays round-trip through the build-time
        // ub_index maps they replaced.
        for (i, &b) in tree.borders_of(id).iter().enumerate() {
            prop_assert_eq!(
                tree.border_rows_of(id)[i],
                tree.ub_position_of(id, b).unwrap()
            );
        }
        for (k, &c) in children.iter().enumerate() {
            for (i, &b) in tree.borders_of(c).iter().enumerate() {
                prop_assert_eq!(
                    tree.child_border_rows_of(id, k)[i],
                    tree.ub_position_of(id, b).unwrap()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        .. ProptestConfig::default()
    })]

    /// The invariants hold on generated road networks across sizes, leaf
    /// capacities, and partition fanouts (2 is the binary-bisection
    /// reference; higher fanouts exercise the multiway splitter).
    #[test]
    fn gtree_build_invariants_on_generated_networks(
        seed in 0u64..10_000,
        road_n in 40usize..260,
        leaf_capacity in 4usize..40,
        fanout in 2usize..9,
    ) {
        let net = generate_road(&RoadConfig::with_size(road_n, seed));
        let tree = GTree::build_with_params(&net, leaf_capacity, fanout);
        check_invariants(&net, &tree);
    }

    /// Incremental maintenance preserves every build invariant: after random
    /// reweight batches, the updated tree still satisfies the full structural
    /// suite (in particular, the precomputed `border_rows`/`leaf_pos` arrays
    /// stay consistent with the `ub_index` reference maps — updates must
    /// never touch the index structure), its matrices match a from-scratch
    /// build on the updated network node for node, and distances match
    /// Dijkstra.
    #[test]
    fn gtree_incremental_updates_preserve_invariants(
        seed in 0u64..10_000,
        road_n in 40usize..180,
        leaf_capacity in 4usize..32,
        fanout in 2usize..9,
    ) {
        let net0 = generate_road(&RoadConfig::with_size(road_n, seed));
        let mut edges: Vec<(u32, u32, f64)> = net0.edges().collect();
        prop_assert!(!edges.is_empty(), "generated road networks are non-trivial");
        let mut tree = GTree::build_with_params(&net0, leaf_capacity, fanout);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD9);
        for _round in 0..3 {
            let mut batch = Vec::new();
            for _ in 0..rng.random_range(1..5usize) {
                let idx = rng.random_range(0..edges.len());
                let w = rng.random_range(0.25..8.0);
                edges[idx].2 = w;
                batch.push(EdgeUpdate::new(edges[idx].0, edges[idx].1, w));
            }
            let net = RoadNetwork::from_edges(net0.num_vertices(), &edges);
            let stats = tree.apply_edge_updates(&net, &batch);
            prop_assert!(stats.dirty_leaves + stats.dirty_internal <= stats.total_nodes);
            check_invariants(&net, &tree);
            let fresh = GTree::build_with_params(&net, leaf_capacity, fanout);
            prop_assert_eq!(tree.num_nodes(), fresh.num_nodes());
            for id in 0..tree.num_nodes() {
                let ub = tree.union_borders_of(id).len();
                prop_assert_eq!(fresh.union_borders_of(id).len(), ub);
                for i in 0..ub {
                    for j in 0..ub {
                        let a = tree.matrix_entry(id, i, j);
                        let b = fresh.matrix_entry(id, i, j);
                        prop_assert!(
                            a == b || (a - b).abs() < 1e-9,
                            "node {} matrix diverged from fresh build at ({}, {}): {} vs {}",
                            id, i, j, a, b
                        );
                    }
                }
            }
            let s = rng.random_range(0..net.num_vertices() as u32);
            let d = sssp(&net, s);
            for v in 0..net.num_vertices() as u32 {
                let got = d[v as usize];
                let want = tree.dist(s, v);
                prop_assert!(
                    got == want || (got - want).abs() < 1e-9,
                    "updated tree distance {} -> {} is {} but Dijkstra says {}",
                    s, v, want, got
                );
            }
        }
    }

    /// A multiway tree answers exactly the same distance queries as the
    /// binary-bisection reference — the trees differ in shape and matrix
    /// sizes but never in answers — before and after reweight batches, and
    /// both agree with Dijkstra.
    #[test]
    fn multiway_tree_is_query_identical_to_binary_reference(
        seed in 0u64..10_000,
        road_n in 40usize..220,
        leaf_capacity in 4usize..32,
        fanout in 3usize..9,
    ) {
        let net0 = generate_road(&RoadConfig::with_size(road_n, seed));
        let mut edges: Vec<(u32, u32, f64)> = net0.edges().collect();
        let mut multi = GTree::build_with_params(&net0, leaf_capacity, fanout);
        let mut binary = GTree::build_binary_reference(&net0, leaf_capacity);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA0);
        check_distances_identical(&net0, &multi, &binary, &mut rng);
        for _round in 0..2 {
            let mut batch = Vec::new();
            for _ in 0..rng.random_range(1..5usize) {
                let idx = rng.random_range(0..edges.len());
                let w = rng.random_range(0.25..8.0);
                edges[idx].2 = w;
                batch.push(EdgeUpdate::new(edges[idx].0, edges[idx].1, w));
            }
            let net = RoadNetwork::from_edges(net0.num_vertices(), &edges);
            multi.apply_edge_updates(&net, &batch);
            binary.apply_edge_updates(&net, &batch);
            check_distances_identical(&net, &multi, &binary, &mut rng);
        }
    }
}

/// Samples sources and checks every `dist` answer of the multiway tree
/// against the binary reference and Dijkstra.
fn check_distances_identical(net: &RoadNetwork, multi: &GTree, binary: &GTree, rng: &mut StdRng) {
    for _ in 0..6 {
        let s = rng.random_range(0..net.num_vertices() as u32);
        let d = sssp(net, s);
        for v in 0..net.num_vertices() as u32 {
            let a = multi.dist(s, v);
            let b = binary.dist(s, v);
            prop_assert!(
                a == b || (a - b).abs() < 1e-9,
                "fanout tree disagrees with binary reference on {s} -> {v}: {a} vs {b}"
            );
            let want = d[v as usize];
            prop_assert!(
                a == want || (a - want).abs() < 1e-9,
                "tree distance {s} -> {v} is {a} but Dijkstra says {want}"
            );
        }
    }
}

/// Invariants also hold on a disconnected network (infinite matrix entries
/// stay symmetric; unreachable borders stay consistent).
#[test]
fn gtree_build_invariants_on_disconnected_network() {
    let net = RoadNetwork::from_edges(
        10,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.5),
            (5, 6, 1.0),
            (6, 7, 3.0),
            (8, 9, 0.5),
        ],
    );
    let tree = GTree::build_with_capacity(&net, 4);
    check_invariants(&net, &tree);
}

/// A single-leaf tree (capacity covering the whole network) satisfies the
/// same invariants degenerately.
#[test]
fn gtree_build_invariants_single_leaf() {
    let net = generate_road(&RoadConfig::with_size(30, 3));
    let tree = GTree::build_with_capacity(&net, 64);
    assert_eq!(tree.num_nodes(), 1);
    assert_eq!(tree.num_leaves(), 1);
    check_invariants(&net, &tree);
}

/// End-to-end serving identity: an engine whose network is indexed with a
/// multiway G-tree returns the same communities, sample weights, and core
/// sizes as one indexed with the binary-bisection reference tree, across the
/// filter strategies that actually walk the tree. Together with the
/// distance-level proptest above this pins the contract that fanout is a
/// build-cost knob only.
#[test]
fn multiway_index_serves_identical_queries_to_binary() {
    for (seed, fanout) in [(11u64, 4usize), (29, 8)] {
        let n_users = 220;
        let social = generate_social(&SocialConfig {
            n: n_users,
            attach_m: 3,
            planted: vec![PlantedGroup {
                size: 18,
                degree: 6,
            }],
            seed,
        });
        let road = generate_road(&RoadConfig::with_size(n_users / 2, seed ^ 0x5EED));
        let attrs = generate_attrs(
            n_users,
            3,
            AttrDistribution::Independent,
            10.0,
            seed ^ 0xA77,
        );
        let locations = assign_locations(
            &road,
            n_users,
            &social.groups,
            &LocationConfig {
                clusters: 8,
                radius: 5,
                seed: seed ^ 0x10C,
            },
        );
        let group = social.groups[0].clone();
        let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();
        let multi = MacEngine::build_uncalibrated(rsn.clone().with_gtree_index_params(16, fanout));
        let binary = MacEngine::build_uncalibrated(rsn.with_gtree_index_params(16, 2));
        let (mut sm, mut sb) = (multi.session(), binary.session());

        let region = PrefRegion::from_ranges(&[(0.2, 0.5), (0.2, 0.5)]).unwrap();
        let filters = [
            RangeFilterChoice::GTreePoint,
            RangeFilterChoice::GTreeMultiSeedBatched,
            RangeFilterChoice::Auto,
        ];
        for i in 0..6usize {
            let q: Vec<u32> = group.iter().copied().take(1 + i % 3).collect();
            let query = MacQuery::new(
                q,
                4 + (i % 2) as u32,
                [30.0, 55.0, 85.0][i % 3],
                region.clone(),
            )
            .with_algorithm(AlgorithmChoice::Global)
            .with_range_filter(filters[i % filters.len()]);
            let a = sm.execute(&query).unwrap();
            let b = sb.execute(&query).unwrap();
            assert_query_identical(&format!("fanout {fanout} seed {seed} query {i}"), &a, &b);
        }
    }
}

fn assert_query_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
    assert_eq!(
        a.stats.kt_core_vertices, b.stats.kt_core_vertices,
        "{label}: core size"
    );
}

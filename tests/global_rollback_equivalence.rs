//! The undo-log refactor of `GlobalSearch` must not change its output: this
//! suite pins the rollback-based DFS against the clone-per-branch reference
//! replica (`rsn_bench::legacy`) on datagen presets, comparing the reported
//! cells — sample weights bit-for-bit, communities member-for-member — and
//! additionally checks that repeated runs are deterministic.

use road_social_mac::core::{GlobalSearch, MacQuery, SearchContext};
use road_social_mac::datagen::presets::{build_preset_scaled, PresetName, PresetScale};
use road_social_mac::geom::PrefRegion;
use road_social_mac::geom::WeightVector;
use rsn_bench::legacy::legacy_gs_nc;

fn preset_query(
    name: PresetName,
    k: u32,
    sigma: f64,
) -> (road_social_mac::core::RoadSocialNetwork, MacQuery) {
    // Minimum preset scale: large enough to exercise real cascades and
    // multi-cell arrangements, small enough that the unoptimized (debug)
    // tier-1 run stays fast even though the clone-based reference is slow.
    let dataset = build_preset_scaled(
        name,
        PresetScale {
            social: 0.05,
            road: 0.05,
        },
        3,
    );
    let center = WeightVector::uniform(3).unwrap();
    let region = PrefRegion::around(&center, sigma).unwrap();
    let query = MacQuery::new(dataset.query_vertices(4), k, dataset.default_t, region);
    (dataset.rsn, query)
}

/// Canonical form of one reported cell for comparison: the exact sample
/// weight bits plus the sorted community.
fn canonical(cells: &[(Vec<f64>, Vec<u32>)]) -> Vec<(Vec<u64>, Vec<u32>)> {
    let mut out: Vec<(Vec<u64>, Vec<u32>)> = cells
        .iter()
        .map(|(w, c)| (w.iter().map(|x| x.to_bits()).collect(), c.clone()))
        .collect();
    out.sort();
    out
}

#[test]
fn rollback_dfs_matches_clone_based_reference_on_presets() {
    for (name, k, sigma) in [
        (PresetName::SfSlashdot, 8u32, 0.01),
        (PresetName::FlLastfm, 6, 0.01),
    ] {
        let (rsn, query) = preset_query(name, k, sigma);
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        let ctx = SearchContext::build(&rsn, &query)
            .unwrap()
            .expect("preset queries have a (k,t)-core");
        let reference = legacy_gs_nc(&ctx, false);

        assert!(!result.cells.is_empty(), "{name:?}: no cells reported");
        assert_eq!(
            result.cells.len(),
            reference.len(),
            "{name:?}: cell count diverged"
        );
        let new_cells: Vec<(Vec<f64>, Vec<u32>)> = result
            .cells
            .iter()
            .map(|c| {
                let mut locals: Vec<u32> = c.communities[0]
                    .vertices
                    .iter()
                    .map(|&v| {
                        ctx.core_vertices
                            .iter()
                            .position(|&cv| cv == v)
                            .expect("member is in the core") as u32
                    })
                    .collect();
                locals.sort_unstable();
                (c.sample_weight.clone(), locals)
            })
            .collect();
        let ref_cells: Vec<(Vec<f64>, Vec<u32>)> = reference
            .iter()
            .map(|c| (c.sample_weight.clone(), c.community.clone()))
            .collect();
        assert_eq!(
            canonical(&new_cells),
            canonical(&ref_cells),
            "{name:?}: rollback DFS and clone-based reference disagree"
        );
    }
}

#[test]
fn global_search_is_deterministic_across_runs() {
    let (rsn, query) = preset_query(PresetName::SfSlashdot, 8, 0.01);
    let a = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    let b = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
    assert_eq!(a.cells.len(), b.cells.len());
    for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
        assert_eq!(ca.sample_weight, cb.sample_weight);
        assert_eq!(ca.communities[0].vertices, cb.communities[0].vertices);
    }
}

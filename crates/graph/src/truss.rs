//! k-truss decomposition and truss-based community extraction.
//!
//! Section II-B of the paper notes that the MAC techniques apply to other
//! structural cohesiveness criteria such as k-truss; the case study (Fig. 15h)
//! compares against ATC, an attributed (k+1)-truss community. This module
//! provides the truss substrate used by the `rsn-baselines` crate.

use crate::connectivity::bfs_reachable;
use crate::graph::{Graph, VertexId};

/// Computes the truss number of every edge.
///
/// The truss number of an edge `e` is the largest `k` such that `e` belongs to
/// a k-truss, i.e. a subgraph in which every edge participates in at least
/// `k − 2` triangles. Returns a map keyed by canonical `(min, max)` edges.
pub fn truss_numbers(g: &Graph) -> std::collections::HashMap<(VertexId, VertexId), u32> {
    use std::collections::HashMap;
    let mut support: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    // Triangle counting by neighbourhood intersection (adjacency lists sorted).
    for (u, v) in g.edges() {
        let mut count = 0u32;
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        support.insert((u, v), count);
    }

    let mut alive: HashMap<(VertexId, VertexId), bool> =
        support.keys().map(|&e| (e, true)).collect();
    let mut truss: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = support.keys().copied().collect();

    let mut k = 2u32;
    while !edges.is_empty() {
        loop {
            // Peel all edges with support <= k - 2.
            let peel: Vec<(VertexId, VertexId)> = edges
                .iter()
                .copied()
                .filter(|e| alive[e] && support[e] + 2 <= k)
                .collect();
            if peel.is_empty() {
                break;
            }
            for e in peel {
                alive.insert(e, false);
                truss.insert(e, k);
                let (u, v) = e;
                // decrement support of triangles through (u, v)
                let (nu, nv) = (g.neighbors(u), g.neighbors(v));
                let (mut i, mut j) = (0usize, 0usize);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = nu[i];
                            let e1 = canonical(u, w);
                            let e2 = canonical(v, w);
                            if *alive.get(&e1).unwrap_or(&false)
                                && *alive.get(&e2).unwrap_or(&false)
                            {
                                if let Some(s) = support.get_mut(&e1) {
                                    *s = s.saturating_sub(1);
                                }
                                if let Some(s) = support.get_mut(&e2) {
                                    *s = s.saturating_sub(1);
                                }
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        edges.retain(|e| alive[e]);
        k += 1;
    }
    truss
}

/// Canonical undirected edge key.
#[inline]
fn canonical(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// The maximal truss number over all edges (0 for a triangle-free graph this
/// is 2, and 0 for an edgeless graph).
pub fn max_truss_number(g: &Graph) -> u32 {
    truss_numbers(g).values().copied().max().unwrap_or(0)
}

/// Extracts the connected k-truss containing every query vertex, if any:
/// keeps only edges with truss number `>= k`, then returns the connected
/// component (by vertices) containing all of `q`.
pub fn connected_k_truss_containing(g: &Graph, k: u32, q: &[VertexId]) -> Option<Vec<VertexId>> {
    if q.is_empty() {
        return None;
    }
    let truss = truss_numbers(g);
    let n = g.num_vertices();
    let mut keep_edges: Vec<(VertexId, VertexId)> = truss
        .iter()
        .filter(|&(_, &t)| t >= k)
        .map(|(&e, _)| e)
        .collect();
    keep_edges.sort_unstable();
    let sub = Graph::from_edges(n, &keep_edges);
    let alive: Vec<bool> = (0..n as u32).map(|v| sub.degree(v) > 0).collect();
    for &v in q {
        if (v as usize) >= n || !alive[v as usize] {
            return None;
        }
    }
    let reach = bfs_reachable(&sub, q[0], &alive);
    if q.iter().any(|&v| !reach[v as usize]) {
        return None;
    }
    Some((0..n as u32).filter(|&v| reach[v as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4_plus_tail() -> Graph {
        // K4 on {0,1,2,3}, tail 3-4-5
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn truss_of_k4() {
        let g = k4_plus_tail();
        let truss = truss_numbers(&g);
        // every K4 edge is in a 4-truss, tail edges only a 2-truss
        assert_eq!(truss[&(0, 1)], 4);
        assert_eq!(truss[&(2, 3)], 4);
        assert_eq!(truss[&(3, 4)], 2);
        assert_eq!(truss[&(4, 5)], 2);
        assert_eq!(max_truss_number(&g), 4);
    }

    #[test]
    fn truss_of_triangle_free() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let truss = truss_numbers(&g);
        assert!(truss.values().all(|&t| t == 2));
    }

    #[test]
    fn connected_truss_community() {
        let g = k4_plus_tail();
        let comm = connected_k_truss_containing(&g, 4, &[0]).unwrap();
        assert_eq!(comm, vec![0, 1, 2, 3]);
        assert!(connected_k_truss_containing(&g, 4, &[5]).is_none());
        assert!(connected_k_truss_containing(&g, 5, &[0]).is_none());
        let comm2 = connected_k_truss_containing(&g, 2, &[5]).unwrap();
        assert_eq!(comm2.len(), 6);
    }

    #[test]
    fn truss_empty_inputs() {
        let g = Graph::new(3);
        assert!(truss_numbers(&g).is_empty());
        assert_eq!(max_truss_number(&g), 0);
        assert!(connected_k_truss_containing(&g, 2, &[0]).is_none());
        assert!(connected_k_truss_containing(&g, 2, &[]).is_none());
    }

    #[test]
    fn a_k_plus_1_truss_is_a_k_core() {
        // Structural relation used by the ATC comparison in the case study.
        let g = k4_plus_tail();
        let comm = connected_k_truss_containing(&g, 4, &[0]).unwrap();
        let (sub, _) = g.induced_subgraph(&comm);
        let min_deg = (0..sub.num_vertices() as u32)
            .map(|v| sub.degree(v))
            .min()
            .unwrap();
        assert!(min_deg >= 3);
    }
}

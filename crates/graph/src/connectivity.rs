//! Connectivity helpers shared by the core-decomposition and search code.

use crate::graph::{Graph, VertexId};

/// BFS from `start` restricted to vertices whose `alive` flag is set.
///
/// Returns a boolean mask of reachable vertices (the mask of the whole graph,
/// not only the alive subset). If `start` itself is not alive the result is
/// all-false.
pub fn bfs_reachable(g: &Graph, start: VertexId, alive: &[bool]) -> Vec<bool> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    if (start as usize) >= n || !alive[start as usize] {
        return visited;
    }
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if alive[u as usize] && !visited[u as usize] {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    visited
}

/// Connected components of the subgraph induced by the `alive` mask.
///
/// Returns `(component_id, count)` where dead vertices get `u32::MAX`.
pub fn connected_components(g: &Graph, alive: &[bool]) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if !alive[s] || comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s as u32);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if alive[u as usize] && comp[u as usize] == u32::MAX {
                    comp[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Whether all vertices of `subset` lie in one connected component of the
/// subgraph induced by `alive`.
pub fn is_connected_subset(g: &Graph, alive: &[bool], subset: &[VertexId]) -> bool {
    match subset.first() {
        None => true,
        Some(&first) => {
            if !alive[first as usize] {
                return false;
            }
            let reach = bfs_reachable(g, first, alive);
            subset.iter().all(|&v| reach[v as usize])
        }
    }
}

/// Whether the entire alive subgraph is connected (trivially true when it is
/// empty).
pub fn is_induced_connected(g: &Graph, alive: &[bool]) -> bool {
    let n = g.num_vertices();
    let Some(start) = (0..n).find(|&v| alive[v]) else {
        return true;
    };
    let reach = bfs_reachable(g, start as u32, alive);
    (0..n).all(|v| !alive[v] || reach[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn two_triangles_with_bridge() -> Graph {
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
            ],
        )
    }

    #[test]
    fn bfs_respects_alive_mask() {
        let g = two_triangles_with_bridge();
        let mut alive = vec![true; 7];
        alive[3] = false; // cut the bridge
        let reach = bfs_reachable(&g, 0, &alive);
        assert!(reach[0] && reach[1] && reach[2]);
        assert!(!reach[3] && !reach[4] && !reach[5] && !reach[6]);
    }

    #[test]
    fn bfs_from_dead_start_is_empty() {
        let g = two_triangles_with_bridge();
        let mut alive = vec![true; 7];
        alive[0] = false;
        let reach = bfs_reachable(&g, 0, &alive);
        assert!(reach.iter().all(|&b| !b));
    }

    #[test]
    fn components_count() {
        let g = two_triangles_with_bridge();
        let alive = vec![true; 7];
        let (_, count) = connected_components(&g, &alive);
        assert_eq!(count, 1);
        let mut alive2 = alive.clone();
        alive2[3] = false;
        let (comp, count2) = connected_components(&g, &alive2);
        assert_eq!(count2, 2);
        assert_eq!(comp[3], u32::MAX);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[6]);
    }

    #[test]
    fn connected_subset_checks() {
        let g = two_triangles_with_bridge();
        let alive = vec![true; 7];
        assert!(is_connected_subset(&g, &alive, &[0, 6]));
        let mut alive2 = alive.clone();
        alive2[3] = false;
        assert!(!is_connected_subset(&g, &alive2, &[0, 6]));
        assert!(is_connected_subset(&g, &alive2, &[4, 5, 6]));
        assert!(is_connected_subset(&g, &alive2, &[]));
        let mut alive3 = alive.clone();
        alive3[0] = false;
        assert!(!is_connected_subset(&g, &alive3, &[0, 1]));
    }

    #[test]
    fn induced_connectivity() {
        let g = two_triangles_with_bridge();
        assert!(is_induced_connected(&g, &[true; 7]));
        let mut alive = vec![true; 7];
        alive[3] = false;
        assert!(!is_induced_connected(&g, &alive));
        assert!(is_induced_connected(&g, &[false; 7]));
    }
}

//! Deletable view over a graph supporting the cascading DFS deletion of
//! Algorithm 1 (lines 15–20) and its undo.
//!
//! The global search of the paper repeatedly removes the smallest-score
//! vertex of the current community and then recursively removes every vertex
//! whose degree drops below `k`. When the deletion would destroy the
//! community containing the query vertices the step has to be rolled back
//! (Corollary 1), and for top-j recovery the deleted groups are re-inserted
//! in reverse order. [`SubgraphView`] provides exactly these operations while
//! sharing the underlying immutable [`Graph`].

use crate::connectivity::bfs_reachable;
use crate::graph::{Graph, VertexId};

/// Record of one cascading deletion round, sufficient to undo it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CascadeDelete {
    /// Vertices removed in this round, in removal order.
    pub removed: Vec<VertexId>,
}

impl CascadeDelete {
    /// Whether any vertex of `set` was removed in this round.
    pub fn removed_any_of(&self, set: &[VertexId]) -> bool {
        self.removed.iter().any(|v| set.contains(v))
    }

    /// Number of removed vertices.
    pub fn len(&self) -> usize {
        self.removed.len()
    }

    /// Whether the round removed nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty()
    }

    /// Merges another deletion round into this one (used when a cascade is
    /// followed by a connectivity trim and both should undo together).
    pub fn merge(&mut self, other: CascadeDelete) {
        self.removed.extend(other.removed);
    }
}

/// A position in a view's undo log, marking a state to roll back to.
///
/// Checkpoints are cheap (an index into the log) and strictly nested: rolling
/// back to a checkpoint invalidates every checkpoint taken after it. This is
/// exactly the discipline of a DFS — take a checkpoint before exploring a
/// branch, roll back when the branch returns — and lets the global search
/// reuse *one* view across all branches instead of cloning per branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

/// Recyclable buffers for a [`SubgraphView`]: everything the view owns
/// except the graph borrow. A caller that builds one full view per query can
/// park the buffers here between queries
/// ([`SubgraphView::recycle_into`] / [`SubgraphView::full_from_scratch`]) so
/// the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct ViewScratch {
    alive: Vec<bool>,
    degree: Vec<u32>,
    log: Vec<VertexId>,
    mark: Vec<u32>,
    reach: Vec<u32>,
    queue: Vec<VertexId>,
}

impl ViewScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ViewScratch::default()
    }
}

/// A live/dead view over an immutable [`Graph`] with incremental degree
/// maintenance and an undo log for O(|undone|) rollback.
#[derive(Debug, Clone)]
pub struct SubgraphView<'a> {
    graph: &'a Graph,
    alive: Vec<bool>,
    degree: Vec<u32>,
    num_alive: usize,
    /// Every killed vertex, in kill order (the undo log).
    log: Vec<VertexId>,
    /// Epoch-stamped scratch marks used by rollback/undo (no per-call allocs).
    mark: Vec<u32>,
    epoch: u32,
    /// Epoch-stamped reachability marks + BFS queue for the connectivity trim
    /// ([`retain_component_of_logged`]) — pooled so the trim never allocates.
    reach: Vec<u32>,
    reach_epoch: u32,
    queue: Vec<VertexId>,
}

impl<'a> SubgraphView<'a> {
    /// A view in which every vertex of `graph` is alive.
    pub fn full(graph: &'a Graph) -> Self {
        let n = graph.num_vertices();
        let degree = (0..n as u32).map(|v| graph.degree(v) as u32).collect();
        SubgraphView {
            graph,
            alive: vec![true; n],
            degree,
            num_alive: n,
            log: Vec::new(),
            mark: vec![0; n],
            epoch: 0,
            reach: Vec::new(),
            reach_epoch: 0,
            queue: Vec::new(),
        }
    }

    /// [`full`](Self::full) drawing its buffers from recycled scratch, so a
    /// warmed caller pays no allocations. The inverse of
    /// [`recycle_into`](Self::recycle_into).
    pub fn full_from_scratch(graph: &'a Graph, scratch: &mut ViewScratch) -> Self {
        let n = graph.num_vertices();
        let mut alive = std::mem::take(&mut scratch.alive);
        alive.clear();
        alive.resize(n, true);
        let mut degree = std::mem::take(&mut scratch.degree);
        degree.clear();
        degree.extend((0..n as u32).map(|v| graph.degree(v) as u32));
        let mut log = std::mem::take(&mut scratch.log);
        log.clear();
        let mut mark = std::mem::take(&mut scratch.mark);
        mark.clear();
        mark.resize(n, 0);
        let mut reach = std::mem::take(&mut scratch.reach);
        reach.clear();
        reach.resize(n, 0);
        let mut queue = std::mem::take(&mut scratch.queue);
        queue.clear();
        SubgraphView {
            graph,
            alive,
            degree,
            num_alive: n,
            log,
            mark,
            epoch: 0,
            reach,
            reach_epoch: 0,
            queue,
        }
    }

    /// Returns the view's buffers to `scratch` for a later
    /// [`full_from_scratch`](Self::full_from_scratch).
    pub fn recycle_into(self, scratch: &mut ViewScratch) {
        scratch.alive = self.alive;
        scratch.degree = self.degree;
        scratch.log = self.log;
        scratch.mark = self.mark;
        scratch.reach = self.reach;
        scratch.queue = self.queue;
    }

    /// A view restricted to the vertices whose mask entry is `true`.
    pub fn from_mask(graph: &'a Graph, mask: &[bool]) -> Self {
        let n = graph.num_vertices();
        assert_eq!(mask.len(), n, "mask length must equal vertex count");
        let mut degree = vec![0u32; n];
        let mut num_alive = 0;
        for v in 0..n {
            if mask[v] {
                num_alive += 1;
                degree[v] = graph
                    .neighbors(v as u32)
                    .iter()
                    .filter(|&&u| mask[u as usize])
                    .count() as u32;
            }
        }
        SubgraphView {
            graph,
            alive: mask.to_vec(),
            degree,
            num_alive,
            log: Vec::new(),
            mark: vec![0; n],
            epoch: 0,
            reach: Vec::new(),
            reach_epoch: 0,
            queue: Vec::new(),
        }
    }

    /// A view restricted to an explicit vertex set.
    pub fn from_vertices(graph: &'a Graph, vertices: &[VertexId]) -> Self {
        let mut mask = vec![false; graph.num_vertices()];
        for &v in vertices {
            mask[v as usize] = true;
        }
        Self::from_mask(graph, &mask)
    }

    /// The underlying immutable graph.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Whether `v` is currently alive.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v as usize]
    }

    /// Current degree of `v` within the alive subgraph (0 when dead).
    #[inline]
    pub fn degree_of(&self, v: VertexId) -> u32 {
        if self.alive[v as usize] {
            self.degree[v as usize]
        } else {
            0
        }
    }

    /// Number of alive vertices.
    #[inline]
    pub fn num_alive(&self) -> usize {
        self.num_alive
    }

    /// The alive mask (length = number of vertices in the underlying graph).
    #[inline]
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Alive vertices in increasing id order.
    pub fn alive_vertices(&self) -> Vec<VertexId> {
        (0..self.alive.len() as u32)
            .filter(|&v| self.alive[v as usize])
            .collect()
    }

    /// [`alive_vertices`](Self::alive_vertices) into a caller-owned buffer
    /// (cleared first), for hot paths that must not allocate.
    pub fn alive_vertices_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend((0..self.alive.len() as u32).filter(|&v| self.alive[v as usize]));
    }

    /// Alive neighbours of `v`.
    pub fn alive_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.alive[u as usize])
    }

    /// Minimum degree over alive vertices (`δ(H)` of the paper); `None` when
    /// the view is empty.
    pub fn min_degree(&self) -> Option<u32> {
        (0..self.alive.len())
            .filter(|&v| self.alive[v])
            .map(|v| self.degree[v])
            .min()
    }

    /// Number of alive edges (each edge counted once).
    pub fn num_alive_edges(&self) -> usize {
        let total: u64 = (0..self.alive.len())
            .filter(|&v| self.alive[v])
            .map(|v| u64::from(self.degree[v]))
            .sum();
        (total / 2) as usize
    }

    /// A checkpoint of the current state; pass to [`rollback`](Self::rollback)
    /// to restore it.
    #[inline]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.log.len())
    }

    /// The vertices removed since `cp`, in removal order.
    #[inline]
    pub fn log_since(&self, cp: Checkpoint) -> &[VertexId] {
        &self.log[cp.0..]
    }

    /// Restores every vertex removed since `cp`, in O(restored + their
    /// incident edges), without allocating.
    ///
    /// Checkpoints are nested: rolling back invalidates checkpoints taken
    /// after `cp`.
    pub fn rollback(&mut self, cp: Checkpoint) {
        debug_assert!(cp.0 <= self.log.len(), "rollback past the log");
        self.restore_suffix(cp.0);
        self.log.truncate(cp.0);
    }

    /// Revives `log[start..]` and repairs degrees (log is left untouched).
    fn restore_suffix(&mut self, start: usize) {
        // Epoch-stamp the restored set so neighbour repair can tell restored
        // vertices (full degree recount) from survivors (increment).
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrap-around: clear stale stamps the hard way, once every 2^32
            self.mark.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        for i in start..self.log.len() {
            let v = self.log[i] as usize;
            self.mark[v] = epoch;
            self.alive[v] = true;
            self.num_alive += 1;
        }
        for i in start..self.log.len() {
            let v = self.log[i];
            let mut d = 0u32;
            for &u in self.graph.neighbors(v) {
                if self.alive[u as usize] {
                    d += 1;
                    if self.mark[u as usize] != epoch {
                        self.degree[u as usize] += 1;
                    }
                }
            }
            self.degree[v as usize] = d;
        }
    }

    /// Removes `seed` and then recursively removes every alive vertex whose
    /// degree drops below `k` (the DFS procedure of Algorithm 1).
    ///
    /// Returns the removal record; the caller is responsible for checking
    /// Corollary 1 (query vertex removed / no k-core left) and calling
    /// [`undo`](Self::undo) — or taking a [`checkpoint`](Self::checkpoint)
    /// first and [`rollback`](Self::rollback)ing — when the deletion must be
    /// reverted. Prefer [`delete_cascade_logged`](Self::delete_cascade_logged)
    /// in hot loops that don't need an owned record.
    pub fn delete_cascade(&mut self, seed: VertexId, k: u32) -> CascadeDelete {
        let start = self.log.len();
        self.delete_cascade_logged(seed, k);
        CascadeDelete {
            removed: self.log[start..].to_vec(),
        }
    }

    /// [`delete_cascade`](Self::delete_cascade) without materializing a
    /// record: the removals land only in the undo log (readable through
    /// [`log_since`](Self::log_since)).
    pub fn delete_cascade_logged(&mut self, seed: VertexId, k: u32) {
        if !self.alive[seed as usize] {
            return;
        }
        let graph = self.graph;
        let mut cursor = self.log.len();
        self.kill(seed);
        // The log doubles as the work queue: vertices killed but not yet
        // processed are exactly log[cursor..]. The cascade's fixed point (the
        // k-core of the remainder) does not depend on processing order.
        while cursor < self.log.len() {
            let v = self.log[cursor];
            cursor += 1;
            // Decrement neighbours; cascade the ones that fall below k.
            for &u in graph.neighbors(v) {
                if self.alive[u as usize] {
                    self.degree[u as usize] -= 1;
                    if self.degree[u as usize] < k {
                        self.kill(u);
                    }
                }
            }
        }
    }

    /// Removes a single vertex (no cascade), updating neighbour degrees.
    pub fn delete_single(&mut self, v: VertexId) -> CascadeDelete {
        let mut record = CascadeDelete::default();
        if !self.alive[v as usize] {
            return record;
        }
        let graph = self.graph;
        self.kill(v);
        record.removed.push(v);
        for &u in graph.neighbors(v) {
            if self.alive[u as usize] {
                self.degree[u as usize] -= 1;
            }
        }
        record
    }

    /// Removes every alive vertex that is not reachable from `root` and
    /// returns the removal record (empty when `root` is dead).
    ///
    /// After a cascade deletion the remaining graph may fall apart; only the
    /// component containing the query vertices can still host MACs, so the
    /// global search trims the rest with this method.
    pub fn retain_component_of(&mut self, root: VertexId) -> CascadeDelete {
        let start = self.log.len();
        self.retain_component_of_logged(root);
        CascadeDelete {
            removed: self.log[start..].to_vec(),
        }
    }

    /// [`retain_component_of`](Self::retain_component_of) without
    /// materializing a record.
    ///
    /// Uses the view's pooled epoch-stamped reach marks, so repeated trims on
    /// a warmed view perform no allocations.
    pub fn retain_component_of_logged(&mut self, root: VertexId) {
        if !self.alive[root as usize] {
            return;
        }
        let graph = self.graph;
        let n = self.alive.len();
        if self.reach.len() < n {
            self.reach.resize(n, 0);
        }
        self.reach_epoch = self.reach_epoch.wrapping_add(1);
        if self.reach_epoch == 0 {
            // Epoch counter wrapped: old stamps could alias, wipe them once.
            self.reach.iter_mut().for_each(|m| *m = 0);
            self.reach_epoch = 1;
        }
        let epoch = self.reach_epoch;
        self.queue.clear();
        self.reach[root as usize] = epoch;
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for &u in graph.neighbors(v) {
                if self.alive[u as usize] && self.reach[u as usize] != epoch {
                    self.reach[u as usize] = epoch;
                    self.queue.push(u);
                }
            }
        }
        for v in 0..n as u32 {
            if self.alive[v as usize] && self.reach[v as usize] != epoch {
                self.kill(v);
                for &u in graph.neighbors(v) {
                    if self.alive[u as usize] {
                        self.degree[u as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Restores the vertices removed by one or more deletion records.
    ///
    /// Records must be undone in reverse order of application (most recent
    /// first), which is what every caller naturally does; the fast path pops
    /// the record straight off the undo log.
    pub fn undo(&mut self, record: &CascadeDelete) {
        if record.removed.is_empty() {
            return;
        }
        let n = record.removed.len();
        let tail_matches = self.log.len() >= n && self.log[self.log.len() - n..] == record.removed;
        debug_assert!(
            tail_matches,
            "undo out of order: the record must be the most recent removals"
        );
        let start = if tail_matches {
            self.log.len() - n
        } else {
            // Release-mode fallback for out-of-order undo of disjoint records:
            // rewrite the log without the record's vertices, then restore.
            let in_record: std::collections::HashSet<VertexId> =
                record.removed.iter().copied().collect();
            self.log.retain(|v| !in_record.contains(v));
            self.log.extend_from_slice(&record.removed);
            self.log.len() - n
        };
        self.restore_suffix(start);
        self.log.truncate(start);
    }

    /// Whether the alive subgraph still contains a connected k-core containing
    /// every vertex of `q`. Peels on the view itself behind a checkpoint, so
    /// the state is unchanged on return and nothing is cloned.
    pub fn has_connected_k_core_with(&mut self, k: u32, q: &[VertexId]) -> bool {
        if q.iter().any(|&v| !self.alive[v as usize]) {
            return false;
        }
        let cp = self.checkpoint();
        self.peel_to_k_core_logged(k);
        let ok = q.iter().all(|&v| self.alive[v as usize]) && {
            let reach = bfs_reachable(self.graph, q[0], &self.alive);
            q.iter().all(|&v| reach[v as usize])
        };
        self.rollback(cp);
        ok
    }

    /// Peels every vertex with degree `< k` (in place) and returns the
    /// combined removal record.
    pub fn peel_to_k_core(&mut self, k: u32) -> CascadeDelete {
        let start = self.log.len();
        self.peel_to_k_core_logged(k);
        CascadeDelete {
            removed: self.log[start..].to_vec(),
        }
    }

    /// [`peel_to_k_core`](Self::peel_to_k_core) without materializing a
    /// record.
    pub fn peel_to_k_core_logged(&mut self, k: u32) {
        for v in 0..self.alive.len() as u32 {
            if self.alive[v as usize] && self.degree[v as usize] < k {
                self.delete_cascade_logged(v, k);
            }
        }
    }

    #[inline]
    fn kill(&mut self, v: VertexId) {
        self.alive[v as usize] = false;
        self.degree[v as usize] = 0;
        self.num_alive -= 1;
        self.log.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Triangle {0,1,2} + path 2-3-4 + triangle {4,5,6}.
    fn chain_of_triangles() -> Graph {
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
            ],
        )
    }

    #[test]
    fn full_view_degrees() {
        let g = chain_of_triangles();
        let view = SubgraphView::full(&g);
        assert_eq!(view.num_alive(), 7);
        assert_eq!(view.degree_of(2), 3);
        assert_eq!(view.min_degree(), Some(2));
        assert_eq!(view.num_alive_edges(), 8);
    }

    #[test]
    fn mask_view_recomputes_degrees() {
        let g = chain_of_triangles();
        let view = SubgraphView::from_vertices(&g, &[0, 1, 2, 3]);
        assert_eq!(view.num_alive(), 4);
        assert_eq!(view.degree_of(2), 3);
        assert_eq!(view.degree_of(3), 1);
        assert_eq!(view.degree_of(4), 0);
        assert!(!view.is_alive(4));
    }

    #[test]
    fn cascade_delete_peels_chain() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        // Deleting vertex 0 with k = 2: the triangle {0,1,2} degrades, 1 and 2
        // lose a neighbour but keep degree >= 2 (2 still has 1 and 3)?
        // degrees after removing 0: 1 -> {2}, so degree 1 < 2: cascade.
        let record = view.delete_cascade(0, 2);
        assert!(record.removed.contains(&0));
        assert!(record.removed.contains(&1));
        // 2 drops to {3} after losing 0 and 1, so it cascades too, then 3.
        assert!(record.removed.contains(&2));
        assert!(record.removed.contains(&3));
        // the far triangle survives
        assert!(view.is_alive(4) && view.is_alive(5) && view.is_alive(6));
        assert_eq!(view.min_degree(), Some(2));
        assert_eq!(view.num_alive(), 3);
    }

    #[test]
    fn undo_restores_exact_state() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        let before_degrees: Vec<u32> = (0..7).map(|v| view.degree_of(v)).collect();
        let record = view.delete_cascade(0, 2);
        assert!(view.num_alive() < 7);
        view.undo(&record);
        assert_eq!(view.num_alive(), 7);
        let after: Vec<u32> = (0..7).map(|v| view.degree_of(v)).collect();
        assert_eq!(before_degrees, after);
    }

    #[test]
    fn undo_overlapping_rounds_in_reverse_order() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        let r1 = view.delete_single(3);
        let r2 = view.delete_cascade(0, 2);
        view.undo(&r2);
        view.undo(&r1);
        let fresh = SubgraphView::full(&g);
        for v in 0..7 {
            assert_eq!(view.degree_of(v), fresh.degree_of(v));
            assert_eq!(view.is_alive(v), fresh.is_alive(v));
        }
    }

    #[test]
    fn retain_component_trims_other_side() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        view.delete_single(3);
        let record = view.retain_component_of(0);
        assert_eq!(record.removed.len(), 3);
        assert!(view.is_alive(0) && view.is_alive(1) && view.is_alive(2));
        assert!(!view.is_alive(4) && !view.is_alive(5) && !view.is_alive(6));
        assert_eq!(view.degree_of(2), 2);
    }

    /// Two K4s {0,1,2,3} and {5,6,7,8} joined through cut vertex 4.
    fn two_k4_with_cut_vertex() -> Graph {
        let mut edges = vec![(3, 4), (4, 5)];
        for base in [0u32, 5u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        Graph::from_edges(9, &edges)
    }

    #[test]
    fn has_connected_k_core_checks() {
        let g = two_k4_with_cut_vertex();
        let mut view = SubgraphView::full(&g);
        assert!(view.has_connected_k_core_with(3, &[0, 1]));
        assert!(view.has_connected_k_core_with(3, &[5]));
        // 0 and 8 live in different 3-core components
        assert!(!view.has_connected_k_core_with(3, &[0, 8]));
        assert!(!view.has_connected_k_core_with(4, &[0]));
        // the whole graph is a single connected 2-core
        assert!(view.has_connected_k_core_with(2, &[0, 8]));
        // non-destructive
        assert_eq!(view.num_alive(), 9);
    }

    #[test]
    fn peel_to_k_core_matches_decomposition() {
        let g = two_k4_with_cut_vertex();
        let mut view = SubgraphView::full(&g);
        let record = view.peel_to_k_core(3);
        assert_eq!(record.removed, vec![4]);
        assert_eq!(view.num_alive(), 8);
        assert_eq!(view.min_degree(), Some(3));
    }

    #[test]
    fn delete_dead_vertex_is_noop() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        let r1 = view.delete_single(3);
        assert_eq!(r1.len(), 1);
        let r2 = view.delete_single(3);
        assert!(r2.is_empty());
        let r3 = view.delete_cascade(3, 2);
        assert!(r3.is_empty());
    }

    #[test]
    fn cascade_removed_any_of_query() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        let record = view.delete_cascade(0, 2);
        assert!(record.removed_any_of(&[1, 6]));
        assert!(!record.removed_any_of(&[4, 5, 6]));
    }

    #[test]
    fn checkpoint_rollback_restores_exact_state() {
        let g = chain_of_triangles();
        let mut view = SubgraphView::full(&g);
        let cp = view.checkpoint();
        view.delete_cascade_logged(0, 2);
        assert!(!view.log_since(cp).is_empty());
        assert!(view.num_alive() < 7);
        view.rollback(cp);
        let fresh = SubgraphView::full(&g);
        for v in 0..7 {
            assert_eq!(view.degree_of(v), fresh.degree_of(v));
            assert_eq!(view.is_alive(v), fresh.is_alive(v));
        }
        assert_eq!(view.num_alive(), 7);
        assert_eq!(view.num_alive_edges(), fresh.num_alive_edges());
    }

    #[test]
    fn nested_checkpoints_roll_back_in_layers() {
        let g = two_k4_with_cut_vertex();
        let mut view = SubgraphView::full(&g);
        let cp0 = view.checkpoint();
        view.delete_cascade_logged(4, 3);
        let alive_after_first = view.alive_vertices();
        let cp1 = view.checkpoint();
        view.delete_cascade_logged(0, 3);
        view.rollback(cp1);
        assert_eq!(view.alive_vertices(), alive_after_first);
        view.rollback(cp0);
        assert_eq!(view.num_alive(), 9);
        assert_eq!(view.min_degree(), Some(2));
    }

    #[test]
    fn scratch_roundtrip_matches_fresh_view() {
        let g = chain_of_triangles();
        let mut scratch = ViewScratch::new();
        for _ in 0..3 {
            let mut view = SubgraphView::full_from_scratch(&g, &mut scratch);
            let fresh = SubgraphView::full(&g);
            for v in 0..7 {
                assert_eq!(view.degree_of(v), fresh.degree_of(v));
                assert_eq!(view.is_alive(v), fresh.is_alive(v));
            }
            view.delete_cascade_logged(0, 2);
            let mut buf = Vec::new();
            view.alive_vertices_into(&mut buf);
            assert_eq!(buf, view.alive_vertices());
            view.recycle_into(&mut scratch);
        }
    }

    /// Randomized property: an arbitrary interleaving of cascades, trims, and
    /// peels rolled back from a checkpoint restores the alive set, every
    /// degree, and the edge count exactly.
    #[test]
    fn randomized_rollback_is_exact() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for round in 0..40 {
            let n = rng.random_range(8..40usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_range(0.0..1.0) < 0.25 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let mut view = SubgraphView::full(&g);
            // A few committed deletions first, so rollback does not always
            // land on the pristine state.
            for _ in 0..rng.random_range(0..3usize) {
                view.delete_single(rng.random_range(0..n as u32));
            }
            let before_alive: Vec<bool> = (0..n as u32).map(|v| view.is_alive(v)).collect();
            let before_deg: Vec<u32> = (0..n as u32).map(|v| view.degree_of(v)).collect();
            let before_edges = view.num_alive_edges();
            let cp = view.checkpoint();
            for _ in 0..rng.random_range(1..6usize) {
                match rng.random_range(0..3u32) {
                    0 => view.delete_cascade_logged(rng.random_range(0..n as u32), 2),
                    1 => view.retain_component_of_logged(rng.random_range(0..n as u32)),
                    _ => view.peel_to_k_core_logged(rng.random_range(1..4u32)),
                }
            }
            view.rollback(cp);
            for v in 0..n as u32 {
                assert_eq!(
                    view.is_alive(v),
                    before_alive[v as usize],
                    "round {round}: alive set diverged at {v}"
                );
                assert_eq!(
                    view.degree_of(v),
                    before_deg[v as usize],
                    "round {round}: degree diverged at {v}"
                );
            }
            assert_eq!(view.num_alive_edges(), before_edges, "round {round}");
        }
    }
}

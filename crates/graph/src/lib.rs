//! # rsn-graph
//!
//! Social-graph substrate used by the multi-attributed community (MAC) search
//! reproduction of *"Multi-attributed Community Search in Road-social
//! Networks"* (ICDE 2021).
//!
//! The crate provides the purely structural pieces of the paper:
//!
//! * [`graph::Graph`] — a compact undirected simple graph.
//! * [`core_decomp`] — Batagelj–Zaversnik O(m) k-core decomposition, the
//!   coreness upper bound of Section III, and maximal (connected) k-cores.
//! * [`subgraph::SubgraphView`] — a deletable view over a graph supporting the
//!   cascading DFS deletion of Algorithm 1 (lines 15–20) together with undo,
//!   which the global search uses when exploring partitions of the preference
//!   region.
//! * [`connectivity`] — BFS/connected-component helpers.
//! * [`truss`] — k-truss decomposition, used by the ATC-style baseline and the
//!   "other cohesiveness criteria" remark of Section II-B.
//!
//! All vertex identifiers are dense `u32` indices in `0..n`.

pub mod connectivity;
pub mod core_decomp;
pub mod graph;
pub mod subgraph;
pub mod truss;

pub use connectivity::{bfs_reachable, connected_components, is_connected_subset};
pub use core_decomp::{core_numbers, coreness_upper_bound, maximal_connected_k_core_containing};
pub use graph::{Graph, GraphBuilder, VertexId};
pub use subgraph::{CascadeDelete, SubgraphView, ViewScratch};

/// Errors produced by the graph substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex identifier was out of range for the graph it was used with.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An operation that requires a non-empty query set received an empty one.
    EmptyQuery,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::EmptyQuery => write!(f, "query vertex set must not be empty"),
        }
    }
}

impl std::error::Error for GraphError {}

//! k-core decomposition and maximal (connected) k-core extraction.
//!
//! The MAC definition (Definition 5) requires every community to be a
//! connected k-core containing the query vertices; Lemma 2 restricts the
//! search to the maximal connected k-core containing `Q`, and Section III uses
//! the coreness upper bound `⌊(1 + √(9 + 8(m − n))) / 2⌋` as a quick
//! infeasibility test before decomposing.

use crate::connectivity::bfs_reachable;
use crate::graph::{Graph, VertexId};
use crate::GraphError;

/// Computes the core number of every vertex with the Batagelj–Zaversnik
/// bucket algorithm in O(n + m).
///
/// The core number of `v` is the largest `k` such that `v` belongs to a
/// subgraph in which every vertex has degree at least `k`.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_deg = g.max_degree();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();

    // bucket sort vertices by degree
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0u32; n];
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v as u32;
        bin[degree[v]] += 1;
    }
    // restore bin starts
    for d in (1..=max_deg).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core: Vec<u32> = degree.iter().map(|&d| d as u32).collect();
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u as u32 != w {
                    pos[u] = pw;
                    pos[w as usize] = pu;
                    vert[pu] = w;
                    vert[pw] = u as u32;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The maximal core number over all vertices (`k_max` in Table II), or 0 for
/// an empty graph.
pub fn max_core_number(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// The coreness upper bound of Section III: any graph with `n` vertices and
/// `m` edges cannot contain a k-core for
/// `k > ⌊(1 + √(9 + 8(m − n))) / 2⌋` (when `m >= n`; for sparser graphs the
/// bound degrades gracefully to 1).
///
/// The paper uses this as a constant-time early exit before running core
/// decomposition on the distance-filtered subgraph.
pub fn coreness_upper_bound(n: usize, m: usize) -> u32 {
    if n == 0 {
        return 0;
    }
    if m < n {
        // A graph with fewer edges than vertices still may contain small
        // cores (e.g. a triangle plus isolated vertices): fall back to the
        // bound computed with m - n clamped at 0.
        let val = (1.0 + 9.0_f64.sqrt()) / 2.0;
        return val.floor() as u32;
    }
    let diff = (m - n) as f64;
    ((1.0 + (9.0 + 8.0 * diff).sqrt()) / 2.0).floor() as u32
}

/// Returns the vertex mask of the maximal k-core of `g` (not necessarily
/// connected): iteratively removes vertices of degree `< k`.
pub fn maximal_k_core_mask(g: &Graph, k: u32) -> Vec<bool> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v as u32) as u32).collect();
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] < k).collect();
    for &v in &stack {
        alive[v as usize] = false;
    }
    while let Some(v) = stack.pop() {
        for &u in g.neighbors(v) {
            if alive[u as usize] {
                degree[u as usize] -= 1;
                if degree[u as usize] < k {
                    alive[u as usize] = false;
                    stack.push(u);
                }
            }
        }
    }
    alive
}

/// Computes the maximal **connected** k-core containing every vertex of `q`
/// (the `k-ĉore` of the paper): the connected component of the maximal k-core
/// that contains all query vertices.
///
/// Returns `Ok(None)` when no such component exists (some query vertex falls
/// out of the k-core, or query vertices end up in different components).
pub fn maximal_connected_k_core_containing(
    g: &Graph,
    k: u32,
    q: &[VertexId],
) -> Result<Option<Vec<VertexId>>, GraphError> {
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let n = g.num_vertices();
    for &v in q {
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
    }
    let alive = maximal_k_core_mask(g, k);
    for &v in q {
        if !alive[v as usize] {
            return Ok(None);
        }
    }
    let component = bfs_reachable(g, q[0], &alive);
    for &v in q {
        if !component[v as usize] {
            return Ok(None);
        }
    }
    let vertices: Vec<VertexId> = (0..n as u32).filter(|&v| component[v as usize]).collect();
    Ok(Some(vertices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The 15-vertex social network of Fig. 1(a) in the paper.
    ///
    /// Vertex `i` here corresponds to `v_{i+1}` in the figure. Edges are read
    /// off the figure so that the example results of the paper hold:
    /// the maximal (3,·)-core for Q={v2,v3,v6} is {v1..v7} and the subgraph
    /// induced by {v2,v3,v6,v7} is a 3-core.
    pub(crate) fn paper_social_graph() -> Graph {
        let edges: &[(u32, u32)] = &[
            // dense cluster v1..v7 (0..6)
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (1, 6),
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (3, 4),
            (4, 5),
            (5, 6),
            (1, 6),
            (5, 6),
            // v7 (6) also connects to v2, v3, v6 forming the (3,t)-core {v2,v3,v6,v7}
            // periphery v8..v15 (7..14)
            (6, 8),
            (7, 8),
            (8, 9),
            (8, 13),
            (9, 10),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (9, 13),
        ];
        Graph::from_edges(15, edges)
    }

    #[test]
    fn core_numbers_triangle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let core = core_numbers(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
    }

    #[test]
    fn core_numbers_star() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_clique() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, &edges);
        assert!(core_numbers(&g).iter().all(|&c| c == 5));
        assert_eq!(max_core_number(&g), 5);
    }

    #[test]
    fn core_numbers_empty_and_isolated() {
        assert!(core_numbers(&Graph::new(0)).is_empty());
        assert_eq!(core_numbers(&Graph::new(3)), vec![0, 0, 0]);
    }

    #[test]
    fn coreness_bound_matches_formula() {
        // m - n = 10 => floor((1 + sqrt(89)) / 2) = 5
        assert_eq!(coreness_upper_bound(10, 20), 5);
        // complete graph on 6 vertices: n=6, m=15 => floor((1+sqrt(81))/2)=5
        assert_eq!(coreness_upper_bound(6, 15), 5);
        assert_eq!(coreness_upper_bound(0, 0), 0);
        assert!(coreness_upper_bound(10, 5) >= 1);
    }

    #[test]
    fn coreness_bound_is_valid_upper_bound() {
        let g = paper_social_graph();
        let bound = coreness_upper_bound(g.num_vertices(), g.num_edges());
        assert!(max_core_number(&g) <= bound);
    }

    #[test]
    fn maximal_k_core_mask_peels_low_degree() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let mask = maximal_k_core_mask(&g, 2);
        assert_eq!(mask, vec![true, true, true, false, false]);
        let mask3 = maximal_k_core_mask(&g, 3);
        assert!(mask3.iter().all(|&b| !b));
    }

    #[test]
    fn connected_k_core_containing_query() {
        // two K4s {0,1,2,3} and {5,6,7,8} joined through cut vertex 4
        let mut edges = vec![(3, 4), (4, 5)];
        for base in [0u32, 5u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::from_edges(9, &edges);
        let res = maximal_connected_k_core_containing(&g, 3, &[0]).unwrap();
        assert_eq!(res, Some(vec![0, 1, 2, 3]));
        let res2 = maximal_connected_k_core_containing(&g, 3, &[5, 8]).unwrap();
        assert_eq!(res2, Some(vec![5, 6, 7, 8]));
        // query spanning both components of the 3-core -> None
        let res3 = maximal_connected_k_core_containing(&g, 3, &[0, 8]).unwrap();
        assert_eq!(res3, None);
        // the cut vertex is not in any 3-core
        let res4 = maximal_connected_k_core_containing(&g, 3, &[4]).unwrap();
        assert_eq!(res4, None);
        // with k = 2 the whole graph is one connected 2-core
        let res5 = maximal_connected_k_core_containing(&g, 2, &[0, 8]).unwrap();
        assert_eq!(res5.map(|v| v.len()), Some(9));
    }

    #[test]
    fn connected_k_core_rejects_bad_input() {
        let g = Graph::new(3);
        assert!(matches!(
            maximal_connected_k_core_containing(&g, 1, &[]),
            Err(GraphError::EmptyQuery)
        ));
        assert!(matches!(
            maximal_connected_k_core_containing(&g, 1, &[7]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn paper_example_core_structure() {
        let g = paper_social_graph();
        // Q = {v2, v3, v6} -> indices {1, 2, 5}; the maximal connected 3-core
        // containing them is {v1..v7} = indices 0..=6.
        let res = maximal_connected_k_core_containing(&g, 3, &[1, 2, 5])
            .unwrap()
            .unwrap();
        assert_eq!(res, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}

//! Compact undirected simple graph with dense `u32` vertex identifiers.
//!
//! The social network `G_s` of the paper is stored in this structure (minus
//! the per-vertex attribute vectors and locations, which live in the `rsn-core`
//! crate's [`RoadSocialNetwork`](https://docs.rs/rsn-core) wrapper).

use serde::{Deserialize, Serialize};

/// Dense vertex identifier. Valid identifiers are `0..graph.num_vertices()`.
pub type VertexId = u32;

/// An undirected simple graph (no self-loops, no parallel edges) stored as a
/// sorted adjacency list.
///
/// The representation is optimized for the access patterns of community
/// search: O(1) degree lookup, cache-friendly neighbour iteration, and
/// O(log deg) edge membership tests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are dropped and parallel edges are de-duplicated. Edges that
    /// reference vertices `>= n` are silently ignored (the generators never
    /// produce them; callers that want strict checking should use
    /// [`GraphBuilder`]).
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            if (u as usize) < n && (v as usize) < n {
                builder.add_edge(u, v);
            }
        }
        builder.build()
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted slice of neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Whether the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(|v| v as VertexId)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as VertexId;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n`; 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Builds the subgraph induced by `vertices`, returning the new graph
    /// together with the mapping `new id -> old id`.
    ///
    /// Vertices listed more than once are collapsed; order of first occurrence
    /// determines the new ids.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut old_to_new = vec![u32::MAX; self.num_vertices()];
        let mut new_to_old = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if old_to_new[v as usize] == u32::MAX {
                old_to_new[v as usize] = new_to_old.len() as u32;
                new_to_old.push(v);
            }
        }
        let mut builder = GraphBuilder::new(new_to_old.len());
        for (new_u, &old_u) in new_to_old.iter().enumerate() {
            for &old_v in self.neighbors(old_u) {
                let new_v = old_to_new[old_v as usize];
                if new_v != u32::MAX && (new_u as u32) < new_v {
                    builder.add_edge(new_u as u32, new_v);
                }
            }
        }
        (builder.build(), new_to_old)
    }

    /// Degree sequence, useful for dataset statistics (Table II).
    pub fn degree_sequence(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }
}

/// Incremental builder for [`Graph`] that validates vertex ranges and
/// de-duplicates edges on [`build`](GraphBuilder::build).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge. Self-loops and out-of-range endpoints are
    /// ignored so that noisy generators cannot corrupt the structure.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        if u != v && (u as usize) < self.n && (v as usize) < self.n {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b));
        }
        self
    }

    /// Number of (not yet de-duplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph: sorts adjacency lists and removes duplicates.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            num_edges: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 0-2 triangle, 3 attached to 0
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn builds_simple_graph() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn dedups_and_drops_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn out_of_range_edges_ignored() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 5), (7, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_iterator_is_canonical() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_pendant();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = triangle_plus_pendant();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // only the edge 1-2 survives
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(map, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.degree(2), 0);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle_plus_pendant();
        let (sub, map) = g.induced_subgraph(&[0, 1, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![0, 1, 2]);
    }
}

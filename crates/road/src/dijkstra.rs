//! Exact shortest-path primitives on the road network.
//!
//! All higher-level distance notions of the paper (network distance
//! `dist(p, p')`, query distance `D_Q`, the Lemma-1 range filter) reduce to
//! Dijkstra runs provided here. A bounded variant stops expanding once the
//! tentative distance exceeds a radius, which is the natural accelerator for
//! the range query of Lemma 1.

use crate::budget::BudgetTicker;
use crate::network::{Location, RoadNetwork, RoadVertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by smallest distance first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: RoadVertexId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra state: the distance field, the heap, and the list of
/// vertices touched by the last run.
///
/// A fresh SSSP allocates `vec![INFINITY; |V|]` plus a heap every call, which
/// dominates the cost of the many small bounded searches the MAC query path
/// issues. A scratch instead clears only the entries the *previous* run
/// touched, so repeated calls are allocation-free once the buffers have grown
/// to the network size.
#[derive(Debug, Default)]
pub struct SsspScratch {
    dist: Vec<f64>,
    touched: Vec<RoadVertexId>,
    heap: BinaryHeap<HeapEntry>,
}

impl SsspScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SsspScratch::default()
    }

    /// Runs multi-source Dijkstra, reusing this scratch's buffers, and
    /// returns the distance field (`f64::INFINITY` beyond `bound` or for
    /// unreachable vertices). The field stays valid until the next `run`.
    pub fn run(
        &mut self,
        net: &RoadNetwork,
        seeds: &[(RoadVertexId, f64)],
        bound: Option<f64>,
        allowed: Option<&[bool]>,
    ) -> &[f64] {
        self.run_inner(net, seeds, bound, allowed, None);
        &self.dist
    }

    /// Budgeted variant of [`run`](Self::run): charges one work unit per
    /// settled heap entry and stops expanding once `ticker` exhausts.
    /// Returns `true` when the sweep ran to completion; on `false` the
    /// distance field is partial (a prefix of the settled vertices) and
    /// callers must treat the run as failed. Either way, the scratch is
    /// left reusable — the next `run` resets exactly what this one touched.
    pub fn run_budgeted(
        &mut self,
        net: &RoadNetwork,
        seeds: &[(RoadVertexId, f64)],
        bound: Option<f64>,
        allowed: Option<&[bool]>,
        ticker: &mut BudgetTicker,
    ) -> bool {
        self.run_inner(net, seeds, bound, allowed, Some(ticker))
    }

    fn run_inner(
        &mut self,
        net: &RoadNetwork,
        seeds: &[(RoadVertexId, f64)],
        bound: Option<f64>,
        allowed: Option<&[bool]>,
        mut ticker: Option<&mut BudgetTicker>,
    ) -> bool {
        let n = net.num_vertices();
        // Reset only what the previous run wrote; (re)grow on size change.
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, f64::INFINITY);
        } else {
            for &v in &self.touched {
                self.dist[v as usize] = f64::INFINITY;
            }
        }
        self.touched.clear();
        self.heap.clear();

        let bound = bound.unwrap_or(f64::INFINITY);
        for &(s, d0) in seeds {
            if (s as usize) < n
                && d0 <= bound
                && allowed.map(|a| a[s as usize]).unwrap_or(true)
                && d0 < self.dist[s as usize]
            {
                if self.dist[s as usize].is_infinite() {
                    self.touched.push(s);
                }
                self.dist[s as usize] = d0;
                self.heap.push(HeapEntry {
                    dist: d0,
                    vertex: s,
                });
            }
        }
        while let Some(HeapEntry { dist: d, vertex: v }) = self.heap.pop() {
            if let Some(t) = ticker.as_deref_mut() {
                if !t.charge(1) {
                    return false;
                }
            }
            if d > self.dist[v as usize] {
                continue;
            }
            if d > bound {
                break;
            }
            for &(u, w) in net.neighbors(v) {
                if let Some(allowed) = allowed {
                    if !allowed[u as usize] {
                        continue;
                    }
                }
                let nd = d + w;
                if nd < self.dist[u as usize] && nd <= bound {
                    if self.dist[u as usize].is_infinite() {
                        self.touched.push(u);
                    }
                    self.dist[u as usize] = nd;
                    self.heap.push(HeapEntry {
                        dist: nd,
                        vertex: u,
                    });
                }
            }
        }
        // Values strictly above the bound were never inserted, so the field
        // needs no cleanup.
        true
    }

    /// The distance field of the last [`run`](Self::run).
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }
}

/// Runs Dijkstra from multiple `(vertex, initial_distance)` seeds.
///
/// `bound` limits expansion: vertices whose final distance exceeds it keep
/// `f64::INFINITY`. `allowed` optionally restricts the search to a vertex
/// subset (used by the G-tree to compute within-region matrices). Allocates a
/// fresh field per call; hot paths should hold an [`SsspScratch`] instead.
pub fn multi_source_dijkstra(
    net: &RoadNetwork,
    seeds: &[(RoadVertexId, f64)],
    bound: Option<f64>,
    allowed: Option<&[bool]>,
) -> Vec<f64> {
    let mut scratch = SsspScratch::new();
    scratch.run(net, seeds, bound, allowed);
    scratch.dist
}

/// Single-source shortest distances from a road vertex.
pub fn sssp(net: &RoadNetwork, source: RoadVertexId) -> Vec<f64> {
    multi_source_dijkstra(net, &[(source, 0.0)], None, None)
}

/// Single-source shortest distances, not expanding past `bound`.
pub fn bounded_sssp(net: &RoadNetwork, source: RoadVertexId, bound: f64) -> Vec<f64> {
    multi_source_dijkstra(net, &[(source, 0.0)], Some(bound), None)
}

/// Shortest distances from an arbitrary [`Location`] to every road vertex.
///
/// An on-edge location seeds both endpoints with the partial edge costs, which
/// is exactly the paper's `ω(u, p)` convention.
pub fn sssp_from_location(net: &RoadNetwork, loc: &Location, bound: Option<f64>) -> Vec<f64> {
    match *loc {
        Location::Vertex(v) => multi_source_dijkstra(net, &[(v, 0.0)], bound, None),
        Location::OnEdge { u, v, offset } => {
            let w = net.edge_weight(u, v).unwrap_or(f64::INFINITY);
            multi_source_dijkstra(net, &[(u, offset), (v, (w - offset).max(0.0))], bound, None)
        }
    }
}

/// Distance from a precomputed vertex-distance field to a [`Location`].
pub fn distance_to_location(net: &RoadNetwork, dist: &[f64], loc: &Location) -> f64 {
    match *loc {
        Location::Vertex(v) => dist[v as usize],
        Location::OnEdge { u, v, offset } => {
            let w = net.edge_weight(u, v).unwrap_or(f64::INFINITY);
            (dist[u as usize] + offset).min(dist[v as usize] + (w - offset).max(0.0))
        }
    }
}

/// Network distance between two locations (`dist(p, p')` of the paper);
/// `f64::INFINITY` when they are not connected.
pub fn location_distance(net: &RoadNetwork, a: &Location, b: &Location) -> f64 {
    location_distance_bounded(net, a, b, None)
}

/// Network distance between two locations, pruning the search at `bound`
/// (returns `f64::INFINITY` when the true distance exceeds the bound).
///
/// Two points on the same edge additionally bound the search by their direct
/// along-edge cost: any strictly better route must be shorter than that, so
/// when the along-edge path is already minimal the Dijkstra terminates after
/// settling only the vertices closer than it — instead of the full network
/// sweep the unbounded version pays.
pub fn location_distance_bounded(
    net: &RoadNetwork,
    a: &Location,
    b: &Location,
    bound: Option<f64>,
) -> f64 {
    let mut search_bound = bound;
    let mut along_edge = f64::INFINITY;
    if let (
        Location::OnEdge {
            u: u1,
            v: v1,
            offset: o1,
        },
        Location::OnEdge {
            u: u2,
            v: v2,
            offset: o2,
        },
    ) = (a, b)
    {
        if u1 == u2 && v1 == v2 {
            along_edge = (o1 - o2).abs();
            if along_edge == 0.0 {
                return 0.0;
            }
            search_bound = Some(search_bound.unwrap_or(f64::INFINITY).min(along_edge));
        }
    }
    let dist = sssp_from_location(net, a, search_bound);
    distance_to_location(net, &dist, b).min(along_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;

    /// 0 --2-- 1 --3-- 2 --1.5-- 3, plus a long direct edge 0 --10-- 3.
    fn line_net() -> RoadNetwork {
        RoadNetwork::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.5), (0, 3, 10.0)])
    }

    #[test]
    fn sssp_basic() {
        let net = line_net();
        let d = sssp(&net, 0);
        assert_eq!(d, vec![0.0, 2.0, 5.0, 6.5]);
    }

    #[test]
    fn sssp_prefers_shorter_route_over_direct_edge() {
        let net = line_net();
        let d = sssp(&net, 3);
        assert!((d[0] - 6.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_sssp_stops_early() {
        let net = line_net();
        let d = bounded_sssp(&net, 0, 3.0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 2.0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn disconnected_vertices_are_infinite() {
        let net = RoadNetwork::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let d = sssp(&net, 0);
        assert!(d[2].is_infinite() && d[3].is_infinite());
    }

    #[test]
    fn multi_source_takes_minimum() {
        let net = line_net();
        let d = multi_source_dijkstra(&net, &[(0, 0.0), (3, 0.0)], None, None);
        assert_eq!(d, vec![0.0, 2.0, 1.5, 0.0]);
    }

    #[test]
    fn restricted_search_respects_mask() {
        let net = line_net();
        // forbid vertex 1: the only route 0 -> 3 is the direct long edge
        let allowed = vec![true, false, true, true];
        let d = multi_source_dijkstra(&net, &[(0, 0.0)], None, Some(&allowed));
        assert_eq!(d[3], 10.0);
        assert!(d[1].is_infinite());
        assert_eq!(d[2], 11.5);
    }

    #[test]
    fn location_distances() {
        let net = line_net();
        let a = Location::OnEdge {
            u: 0,
            v: 1,
            offset: 0.5,
        };
        // distance from a to vertex 2: 1.5 (rest of edge 0-1) + 3.0
        let d = sssp_from_location(&net, &a, None);
        assert!((d[2] - 4.5).abs() < 1e-12);
        assert!((d[0] - 0.5).abs() < 1e-12);

        let b = Location::Vertex(3);
        assert!((location_distance(&net, &a, &b) - 6.0).abs() < 1e-12);

        // two points on the same edge use the along-edge shortcut
        let p = Location::OnEdge {
            u: 0,
            v: 3,
            offset: 1.0,
        };
        let q = Location::OnEdge {
            u: 0,
            v: 3,
            offset: 4.0,
        };
        assert!((location_distance(&net, &p, &q) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_location_distance_respects_bound_for_on_edge_seeds() {
        // Seeds carry the partial edge offsets; a bound below the offset must
        // report INFINITY instead of leaking the seed distance.
        let net = RoadNetwork::from_edges(2, &[(0, 1, 10.0)]);
        let a = Location::OnEdge {
            u: 0,
            v: 1,
            offset: 4.0,
        };
        let b = Location::Vertex(0);
        assert!(location_distance_bounded(&net, &a, &b, Some(2.0)).is_infinite());
        assert!((location_distance_bounded(&net, &a, &b, Some(5.0)) - 4.0).abs() < 1e-12);
        assert!((location_distance(&net, &a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_location_on_edge() {
        let net = line_net();
        let d = sssp(&net, 0);
        let loc = Location::OnEdge {
            u: 2,
            v: 3,
            offset: 0.5,
        };
        // min(d[2] + 0.5, d[3] + 1.0) = min(5.5, 7.5)
        assert!((distance_to_location(&net, &d, &loc) - 5.5).abs() < 1e-12);
    }
}

//! Cooperative work budgets for the query-path primitives.
//!
//! MAC queries are exact but worst-case expensive, and the serving layer
//! built on top of this crate needs every long-running primitive — the
//! bounded Dijkstra sweep, the multi-seed G-tree walk, the range filter —
//! to stop *cooperatively* when a deadline passes, a work limit is hit, or
//! a caller flips a cancellation flag. [`BudgetTicker`] is that mechanism:
//! a cheap amortized tick counter the hot loops charge as they go.
//!
//! The cost discipline matters more than the feature set here. A charge is
//! one saturating add plus one integer compare in the common case; the
//! expensive checks (an atomic load for cancellation, an `Instant::now()`
//! for the deadline) run only every [`CHECK_INTERVAL`] charged units. The
//! **first** charge always runs the expensive checks, so a deadline that
//! already passed (e.g. a zero deadline) trips before any real work happens.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many charged work units pass between expensive budget checks (the
/// cancellation atomic load and the deadline clock read). Work limits are
/// checked on every charge — they are a plain integer compare.
pub const CHECK_INTERVAL: u64 = 1024;

/// Why a budget stopped the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionCause {
    /// The deadline passed.
    Deadline,
    /// The work limit was spent.
    WorkLimit,
    /// The cancellation flag was set.
    Cancelled,
}

impl std::fmt::Display for ExhaustionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionCause::Deadline => write!(f, "deadline"),
            ExhaustionCause::WorkLimit => write!(f, "work limit"),
            ExhaustionCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// An armed, single-query work budget: charged by the hot loops, it reports
/// exhaustion once the deadline passes, the work limit is spent, or the
/// cancellation flag is observed set. Once exhausted it stays exhausted.
///
/// ```
/// use rsn_road::budget::{BudgetTicker, ExhaustionCause};
///
/// let mut ticker = BudgetTicker::new(None, Some(10), None);
/// assert!(ticker.charge(8)); // within the limit
/// assert!(!ticker.charge(8)); // 16 > 10: exhausted
/// assert_eq!(ticker.cause(), Some(ExhaustionCause::WorkLimit));
/// assert!(!ticker.charge(1)); // stays exhausted
/// ```
#[derive(Debug, Default)]
pub struct BudgetTicker {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    spent: u64,
    /// Charged units until the next expensive check; starts at 0 so the
    /// first charge checks the clock and the flag immediately.
    until_check: u64,
    exhausted: Option<ExhaustionCause>,
}

impl BudgetTicker {
    /// Arms a ticker. All limits are optional; a ticker with none never
    /// exhausts (but still pays the amortized checks — callers that know
    /// the budget is unlimited should skip the budgeted code path entirely).
    pub fn new(
        deadline: Option<Instant>,
        work_limit: Option<u64>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Self {
        BudgetTicker {
            deadline,
            work_limit,
            cancel,
            spent: 0,
            until_check: 0,
            exhausted: None,
        }
    }

    /// A ticker that never exhausts.
    pub fn unlimited() -> Self {
        BudgetTicker::new(None, None, None)
    }

    /// Charges `units` of work. Returns `true` while the budget holds;
    /// `false` once it is exhausted (and on every later call).
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.spent = self.spent.saturating_add(units);
        if let Some(limit) = self.work_limit {
            if self.spent > limit {
                self.exhausted = Some(ExhaustionCause::WorkLimit);
                return false;
            }
        }
        if self.until_check > units {
            self.until_check -= units;
            return true;
        }
        self.until_check = CHECK_INTERVAL;
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.exhausted = Some(ExhaustionCause::Cancelled);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted = Some(ExhaustionCause::Deadline);
                return false;
            }
        }
        true
    }

    /// Whether the budget has been exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.is_some()
    }

    /// Why the budget exhausted, once it has.
    pub fn cause(&self) -> Option<ExhaustionCause> {
        self.exhausted
    }

    /// Total work units charged so far (including the charge that tripped).
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Splits the remaining budget into a [`SharedBudget`] that a pool of
    /// workers can charge concurrently. The shared budget inherits the
    /// limits, the units already spent, and any exhaustion already latched.
    /// After the parallel stage, fold the workers' charges back with
    /// [`absorb`](Self::absorb).
    pub fn share(&self) -> SharedBudget {
        SharedBudget {
            deadline: self.deadline,
            work_limit: self.work_limit,
            cancel: self.cancel.clone(),
            spent: AtomicU64::new(self.spent),
            cause: AtomicU8::new(cause_to_code(self.exhausted)),
        }
    }

    /// Folds a [`SharedBudget`] back into this ticker: the total units spent
    /// (across every worker, including aborted ones) replace the local count
    /// and a latched exhaustion carries over, so no parallel charge is ever
    /// lost. The next local charge re-runs the expensive checks.
    pub fn absorb(&mut self, shared: &SharedBudget) {
        self.spent = self.spent.max(shared.total_spent());
        if self.exhausted.is_none() {
            self.exhausted = shared.cause();
        }
        self.until_check = 0;
    }
}

#[inline]
fn cause_to_code(cause: Option<ExhaustionCause>) -> u8 {
    match cause {
        None => 0,
        Some(ExhaustionCause::Deadline) => 1,
        Some(ExhaustionCause::WorkLimit) => 2,
        Some(ExhaustionCause::Cancelled) => 3,
    }
}

#[inline]
fn code_to_cause(code: u8) -> Option<ExhaustionCause> {
    match code {
        1 => Some(ExhaustionCause::Deadline),
        2 => Some(ExhaustionCause::WorkLimit),
        3 => Some(ExhaustionCause::Cancelled),
        _ => None,
    }
}

/// One query budget charged concurrently by a pool of workers.
///
/// The shared state is two atomics: the total units spent and a one-shot
/// exhaustion latch. Workers charge through per-thread [`WorkerTicker`]
/// views that batch charges locally and synchronize every
/// [`CHECK_INTERVAL`] units, so the hot-loop cost stays an add and a
/// compare. The latch makes exhaustion **global**: the first worker to trip
/// (deadline, work limit, or cancellation) publishes the cause, every other
/// worker observes it at its next check and stops, and every worker's
/// charges — including those of a task aborted mid-flight — are flushed
/// into the shared total when its ticker finishes or drops.
#[derive(Debug)]
pub struct SharedBudget {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    spent: AtomicU64,
    /// Exhaustion latch: 0 = live, else an [`ExhaustionCause`] code. The
    /// first tripping worker wins; later causes are ignored.
    cause: AtomicU8,
}

impl SharedBudget {
    /// A shared budget that never exhausts (workers still pay the amortized
    /// checks).
    pub fn unlimited() -> Self {
        BudgetTicker::unlimited().share()
    }

    /// A per-worker charging view. Any number may be live at once.
    pub fn worker(&self) -> WorkerTicker<'_> {
        WorkerTicker {
            shared: self,
            local: 0,
            until_check: 0,
            exhausted: code_to_cause(self.cause.load(Ordering::Acquire)),
        }
    }

    /// Latches `cause` if no worker tripped before; returns the winning
    /// cause either way.
    fn latch(&self, cause: ExhaustionCause) -> ExhaustionCause {
        match self.cause.compare_exchange(
            0,
            cause_to_code(Some(cause)),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => cause,
            Err(prev) => code_to_cause(prev).unwrap_or(cause),
        }
    }

    /// Whether any worker tripped the budget.
    pub fn is_exhausted(&self) -> bool {
        self.cause.load(Ordering::Acquire) != 0
    }

    /// The latched exhaustion cause, once a worker tripped.
    pub fn cause(&self) -> Option<ExhaustionCause> {
        code_to_cause(self.cause.load(Ordering::Acquire))
    }

    /// Total units flushed by all workers so far. Exact once every
    /// [`WorkerTicker`] has finished or dropped.
    pub fn total_spent(&self) -> u64 {
        self.spent.load(Ordering::Acquire)
    }

    #[inline]
    fn flush_units(&self, units: u64) -> u64 {
        if units == 0 {
            return self.spent.load(Ordering::Acquire);
        }
        self.spent
            .fetch_add(units, Ordering::AcqRel)
            .saturating_add(units)
    }
}

/// A per-worker view of a [`SharedBudget`]: same charge discipline as
/// [`BudgetTicker`], but the expensive interval check also flushes the
/// locally batched units into the shared total and consults the global
/// exhaustion latch. Dropping the ticker flushes any outstanding units, so
/// a worker that aborts mid-task never loses its charges.
#[derive(Debug)]
pub struct WorkerTicker<'a> {
    shared: &'a SharedBudget,
    /// Units charged locally since the last flush.
    local: u64,
    /// Charged units until the next flush + expensive check; starts at 0 so
    /// the first charge checks immediately (an already-expired deadline
    /// trips every worker before it does real work).
    until_check: u64,
    exhausted: Option<ExhaustionCause>,
}

impl WorkerTicker<'_> {
    /// Charges `units` of work. Returns `true` while the shared budget
    /// holds; `false` once this worker observes (or causes) exhaustion.
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.local = self.local.saturating_add(units);
        if self.until_check > units {
            self.until_check -= units;
            return true;
        }
        self.until_check = CHECK_INTERVAL;
        self.check()
    }

    /// The slow path: flush local units, consult the latch, run the
    /// expensive checks.
    fn check(&mut self) -> bool {
        let total = self.shared.flush_units(self.local);
        self.local = 0;
        if let Some(cause) = self.shared.cause() {
            self.exhausted = Some(cause);
            return false;
        }
        if let Some(limit) = self.shared.work_limit {
            if total > limit {
                self.exhausted = Some(self.shared.latch(ExhaustionCause::WorkLimit));
                return false;
            }
        }
        if let Some(cancel) = &self.shared.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.exhausted = Some(self.shared.latch(ExhaustionCause::Cancelled));
                return false;
            }
        }
        if let Some(deadline) = self.shared.deadline {
            if Instant::now() >= deadline {
                self.exhausted = Some(self.shared.latch(ExhaustionCause::Deadline));
                return false;
            }
        }
        true
    }

    /// Whether this worker has observed exhaustion. Other workers may have
    /// tripped the shared latch without this view noticing yet; the next
    /// [`charge`](Self::charge) interval will.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.is_some()
    }

    /// The exhaustion cause this worker observed, once it has.
    pub fn cause(&self) -> Option<ExhaustionCause> {
        self.exhausted
    }
}

impl Drop for WorkerTicker<'_> {
    /// Flush outstanding local charges so an aborted task's work still
    /// counts against the shared budget.
    fn drop(&mut self) {
        self.shared.flush_units(self.local);
        self.local = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = BudgetTicker::unlimited();
        for _ in 0..10_000 {
            assert!(t.charge(17));
        }
        assert!(!t.is_exhausted());
        assert_eq!(t.cause(), None);
        assert_eq!(t.spent(), 170_000);
    }

    #[test]
    fn work_limit_trips_exactly_and_latches() {
        let mut t = BudgetTicker::new(None, Some(5), None);
        assert!(t.charge(5)); // spent == limit is still fine
        assert!(!t.charge(1));
        assert_eq!(t.cause(), Some(ExhaustionCause::WorkLimit));
        assert!(!t.charge(0));
    }

    #[test]
    fn expired_deadline_trips_on_the_first_charge() {
        let mut t = BudgetTicker::new(Some(Instant::now() - Duration::from_secs(1)), None, None);
        assert!(!t.charge(1));
        assert_eq!(t.cause(), Some(ExhaustionCause::Deadline));
    }

    #[test]
    fn cancellation_is_observed_within_a_check_interval() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut t = BudgetTicker::new(None, None, Some(flag.clone()));
        assert!(t.charge(1)); // first charge checks: flag clear
        flag.store(true, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if !t.charge(1) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "flag must be observed within one check interval");
        assert_eq!(t.cause(), Some(ExhaustionCause::Cancelled));
    }

    #[test]
    fn spent_saturates_instead_of_overflowing() {
        let mut t = BudgetTicker::unlimited();
        assert!(t.charge(u64::MAX));
        assert!(t.charge(u64::MAX));
        assert_eq!(t.spent(), u64::MAX);
    }

    #[test]
    fn shared_expired_deadline_trips_every_worker_on_first_charge() {
        let shared =
            BudgetTicker::new(Some(Instant::now() - Duration::from_secs(1)), None, None).share();
        for _ in 0..3 {
            let mut w = shared.worker();
            assert!(!w.charge(1));
            assert_eq!(w.cause(), Some(ExhaustionCause::Deadline));
        }
        assert_eq!(shared.cause(), Some(ExhaustionCause::Deadline));
    }

    #[test]
    fn shared_latch_is_observed_by_other_workers() {
        let flag = Arc::new(AtomicBool::new(false));
        let shared = BudgetTicker::new(None, None, Some(flag.clone())).share();
        let mut a = shared.worker();
        let mut b = shared.worker();
        assert!(a.charge(1));
        assert!(b.charge(1));
        flag.store(true, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if !a.charge(1) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        // b observes the cause a latched within one of its own intervals.
        let mut observed = false;
        for _ in 0..=CHECK_INTERVAL {
            if !b.charge(1) {
                observed = true;
                break;
            }
        }
        assert!(observed);
        assert_eq!(b.cause(), Some(ExhaustionCause::Cancelled));
    }

    #[test]
    fn dropped_worker_flushes_its_charges() {
        let shared = BudgetTicker::unlimited().share();
        {
            let mut w = shared.worker();
            assert!(w.charge(1)); // first charge flushes immediately
            assert!(w.charge(7)); // batched locally
        } // dropped mid-batch: the 7 units must not be lost
        assert_eq!(shared.total_spent(), 8);
    }

    #[test]
    fn absorb_carries_spend_and_cause_back() {
        let mut t = BudgetTicker::new(None, Some(100), None);
        assert!(t.charge(10));
        let shared = t.share();
        assert_eq!(shared.total_spent(), 10);
        {
            let mut w = shared.worker();
            // 10 already spent + 95 > 100 trips the shared limit at the
            // worker's first check.
            assert!(!w.charge(95));
        }
        t.absorb(&shared);
        assert!(t.is_exhausted());
        assert_eq!(t.cause(), Some(ExhaustionCause::WorkLimit));
        assert_eq!(t.spent(), 105);
        assert!(!t.charge(1));
    }
}

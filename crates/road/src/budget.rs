//! Cooperative work budgets for the query-path primitives.
//!
//! MAC queries are exact but worst-case expensive, and the serving layer
//! built on top of this crate needs every long-running primitive — the
//! bounded Dijkstra sweep, the multi-seed G-tree walk, the range filter —
//! to stop *cooperatively* when a deadline passes, a work limit is hit, or
//! a caller flips a cancellation flag. [`BudgetTicker`] is that mechanism:
//! a cheap amortized tick counter the hot loops charge as they go.
//!
//! The cost discipline matters more than the feature set here. A charge is
//! one saturating add plus one integer compare in the common case; the
//! expensive checks (an atomic load for cancellation, an `Instant::now()`
//! for the deadline) run only every [`CHECK_INTERVAL`] charged units. The
//! **first** charge always runs the expensive checks, so a deadline that
//! already passed (e.g. a zero deadline) trips before any real work happens.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many charged work units pass between expensive budget checks (the
/// cancellation atomic load and the deadline clock read). Work limits are
/// checked on every charge — they are a plain integer compare.
pub const CHECK_INTERVAL: u64 = 1024;

/// Why a budget stopped the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionCause {
    /// The deadline passed.
    Deadline,
    /// The work limit was spent.
    WorkLimit,
    /// The cancellation flag was set.
    Cancelled,
}

impl std::fmt::Display for ExhaustionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionCause::Deadline => write!(f, "deadline"),
            ExhaustionCause::WorkLimit => write!(f, "work limit"),
            ExhaustionCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// An armed, single-query work budget: charged by the hot loops, it reports
/// exhaustion once the deadline passes, the work limit is spent, or the
/// cancellation flag is observed set. Once exhausted it stays exhausted.
///
/// ```
/// use rsn_road::budget::{BudgetTicker, ExhaustionCause};
///
/// let mut ticker = BudgetTicker::new(None, Some(10), None);
/// assert!(ticker.charge(8)); // within the limit
/// assert!(!ticker.charge(8)); // 16 > 10: exhausted
/// assert_eq!(ticker.cause(), Some(ExhaustionCause::WorkLimit));
/// assert!(!ticker.charge(1)); // stays exhausted
/// ```
#[derive(Debug, Default)]
pub struct BudgetTicker {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    spent: u64,
    /// Charged units until the next expensive check; starts at 0 so the
    /// first charge checks the clock and the flag immediately.
    until_check: u64,
    exhausted: Option<ExhaustionCause>,
}

impl BudgetTicker {
    /// Arms a ticker. All limits are optional; a ticker with none never
    /// exhausts (but still pays the amortized checks — callers that know
    /// the budget is unlimited should skip the budgeted code path entirely).
    pub fn new(
        deadline: Option<Instant>,
        work_limit: Option<u64>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Self {
        BudgetTicker {
            deadline,
            work_limit,
            cancel,
            spent: 0,
            until_check: 0,
            exhausted: None,
        }
    }

    /// A ticker that never exhausts.
    pub fn unlimited() -> Self {
        BudgetTicker::new(None, None, None)
    }

    /// Charges `units` of work. Returns `true` while the budget holds;
    /// `false` once it is exhausted (and on every later call).
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.spent = self.spent.saturating_add(units);
        if let Some(limit) = self.work_limit {
            if self.spent > limit {
                self.exhausted = Some(ExhaustionCause::WorkLimit);
                return false;
            }
        }
        if self.until_check > units {
            self.until_check -= units;
            return true;
        }
        self.until_check = CHECK_INTERVAL;
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.exhausted = Some(ExhaustionCause::Cancelled);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted = Some(ExhaustionCause::Deadline);
                return false;
            }
        }
        true
    }

    /// Whether the budget has been exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.is_some()
    }

    /// Why the budget exhausted, once it has.
    pub fn cause(&self) -> Option<ExhaustionCause> {
        self.exhausted
    }

    /// Total work units charged so far (including the charge that tripped).
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = BudgetTicker::unlimited();
        for _ in 0..10_000 {
            assert!(t.charge(17));
        }
        assert!(!t.is_exhausted());
        assert_eq!(t.cause(), None);
        assert_eq!(t.spent(), 170_000);
    }

    #[test]
    fn work_limit_trips_exactly_and_latches() {
        let mut t = BudgetTicker::new(None, Some(5), None);
        assert!(t.charge(5)); // spent == limit is still fine
        assert!(!t.charge(1));
        assert_eq!(t.cause(), Some(ExhaustionCause::WorkLimit));
        assert!(!t.charge(0));
    }

    #[test]
    fn expired_deadline_trips_on_the_first_charge() {
        let mut t = BudgetTicker::new(Some(Instant::now() - Duration::from_secs(1)), None, None);
        assert!(!t.charge(1));
        assert_eq!(t.cause(), Some(ExhaustionCause::Deadline));
    }

    #[test]
    fn cancellation_is_observed_within_a_check_interval() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut t = BudgetTicker::new(None, None, Some(flag.clone()));
        assert!(t.charge(1)); // first charge checks: flag clear
        flag.store(true, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if !t.charge(1) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "flag must be observed within one check interval");
        assert_eq!(t.cause(), Some(ExhaustionCause::Cancelled));
    }

    #[test]
    fn spent_saturates_instead_of_overflowing() {
        let mut t = BudgetTicker::unlimited();
        assert!(t.charge(u64::MAX));
        assert!(t.charge(u64::MAX));
        assert_eq!(t.spent(), u64::MAX);
    }
}

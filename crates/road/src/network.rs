//! The weighted road network `G_r` and user locations on it.

use crate::RoadError;
use serde::{Deserialize, Serialize};

/// Dense road-vertex identifier.
pub type RoadVertexId = u32;

/// A location in the road network: either exactly on a vertex (road
/// junction/end) or part-way along an edge, `offset` cost units away from the
/// endpoint `u` (so `weight(u, v) - offset` away from `v`).
///
/// The paper allows user locations "either on a vertex or edge of G_r"
/// (Section II-A); the on-edge form is normalized so that `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Location {
    /// On road vertex.
    Vertex(RoadVertexId),
    /// On the edge `(u, v)`, `offset` away from `u`.
    OnEdge {
        /// Smaller endpoint of the edge.
        u: RoadVertexId,
        /// Larger endpoint of the edge.
        v: RoadVertexId,
        /// Distance from `u` along the edge.
        offset: f64,
    },
}

impl Location {
    /// Convenience constructor for an on-vertex location.
    pub fn vertex(v: RoadVertexId) -> Self {
        Location::Vertex(v)
    }

    /// Convenience constructor for an on-edge location (endpoints are
    /// normalized so that `u < v`, mirroring `ω(u, p)` in the paper).
    pub fn on_edge(u: RoadVertexId, v: RoadVertexId, offset: f64, edge_length: f64) -> Self {
        if u <= v {
            Location::OnEdge { u, v, offset }
        } else {
            Location::OnEdge {
                u: v,
                v: u,
                offset: edge_length - offset,
            }
        }
    }
}

/// A reweight of one existing road segment: traffic conditions changed the
/// travel cost of `(u, v)` to `weight`.
///
/// Updates never add or remove segments — the network topology (and with it
/// the G-tree partition, border sets, and leaf assignment) is fixed at build
/// time; only costs move. Topology changes require a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeUpdate {
    /// One endpoint of the existing segment.
    pub u: RoadVertexId,
    /// The other endpoint.
    pub v: RoadVertexId,
    /// The new travel cost (finite, non-negative).
    pub weight: f64,
}

impl EdgeUpdate {
    /// Convenience constructor.
    pub fn new(u: RoadVertexId, v: RoadVertexId, weight: f64) -> Self {
        EdgeUpdate { u, v, weight }
    }
}

/// An undirected weighted road network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    adj: Vec<Vec<(RoadVertexId, f64)>>,
    num_edges: usize,
}

impl RoadNetwork {
    /// Number of road vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of road segments (undirected edges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: RoadVertexId) -> &[(RoadVertexId, f64)] {
        &self.adj[v as usize]
    }

    /// Degree of a road vertex.
    #[inline]
    pub fn degree(&self, v: RoadVertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Weight of the edge `(u, v)` if it exists.
    pub fn edge_weight(&self, u: RoadVertexId, v: RoadVertexId) -> Option<f64> {
        self.adj[u as usize]
            .iter()
            .find(|&&(x, _)| x == v)
            .map(|&(_, w)| w)
    }

    /// Sets the weight of the **existing** edge `(u, v)` to `w`, returning
    /// the previous weight. Reweighting never changes the topology; an update
    /// naming a missing edge is [`RoadError::NoSuchEdge`].
    ///
    /// Callers that keep derived state (a G-tree index, grouped user seeds of
    /// on-edge locations) must refresh it afterwards — see
    /// [`GTree::apply_edge_updates`](crate::gtree::GTree::apply_edge_updates).
    pub fn set_edge_weight(
        &mut self,
        u: RoadVertexId,
        v: RoadVertexId,
        w: f64,
    ) -> Result<f64, RoadError> {
        if !(w.is_finite() && w >= 0.0) {
            return Err(RoadError::InvalidWeight(w));
        }
        for &x in &[u, v] {
            if (x as usize) >= self.num_vertices() {
                return Err(RoadError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: self.num_vertices(),
                });
            }
        }
        let forward = self.adj[u as usize]
            .iter_mut()
            .find(|(x, _)| *x == v)
            .ok_or(RoadError::NoSuchEdge { u, v })?;
        let old = forward.1;
        forward.1 = w;
        let backward = self.adj[v as usize]
            .iter_mut()
            .find(|(x, _)| *x == u)
            .expect("undirected adjacency is symmetric");
        backward.1 = w;
        Ok(old)
    }

    /// Applies a batch of reweights ([`set_edge_weight`](Self::set_edge_weight)
    /// per update), validating **all** of them first so an invalid entry
    /// leaves the network untouched.
    pub fn apply_edge_updates(&mut self, updates: &[EdgeUpdate]) -> Result<(), RoadError> {
        for upd in updates {
            if !(upd.weight.is_finite() && upd.weight >= 0.0) {
                return Err(RoadError::InvalidWeight(upd.weight));
            }
            for &x in &[upd.u, upd.v] {
                if (x as usize) >= self.num_vertices() {
                    return Err(RoadError::VertexOutOfRange {
                        vertex: x,
                        num_vertices: self.num_vertices(),
                    });
                }
            }
            if self.edge_weight(upd.u, upd.v).is_none() {
                return Err(RoadError::NoSuchEdge { u: upd.u, v: upd.v });
            }
        }
        for upd in updates {
            self.set_edge_weight(upd.u, upd.v, upd.weight)
                .expect("updates were validated");
        }
        Ok(())
    }

    /// Iterator over undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (RoadVertexId, RoadVertexId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as RoadVertexId;
            nbrs.iter()
                .copied()
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates a location against this network.
    pub fn validate_location(&self, loc: &Location) -> Result<(), RoadError> {
        match *loc {
            Location::Vertex(v) => {
                if (v as usize) < self.num_vertices() {
                    Ok(())
                } else {
                    Err(RoadError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: self.num_vertices(),
                    })
                }
            }
            Location::OnEdge { u, v, offset } => {
                if (u as usize) >= self.num_vertices() {
                    return Err(RoadError::VertexOutOfRange {
                        vertex: u,
                        num_vertices: self.num_vertices(),
                    });
                }
                if (v as usize) >= self.num_vertices() {
                    return Err(RoadError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: self.num_vertices(),
                    });
                }
                let Some(w) = self.edge_weight(u, v) else {
                    return Err(RoadError::NoSuchEdge { u, v });
                };
                if offset < 0.0 || offset > w {
                    return Err(RoadError::InvalidOffset {
                        offset,
                        edge_length: w,
                    });
                }
                Ok(())
            }
        }
    }
}

/// Builder for [`RoadNetwork`] with weight validation.
#[derive(Debug, Clone)]
pub struct RoadNetworkBuilder {
    n: usize,
    edges: Vec<(RoadVertexId, RoadVertexId, f64)>,
}

impl RoadNetworkBuilder {
    /// Creates a builder for a road network with `n` vertices.
    pub fn new(n: usize) -> Self {
        RoadNetworkBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected road segment of cost `w`.
    pub fn add_edge(
        &mut self,
        u: RoadVertexId,
        v: RoadVertexId,
        w: f64,
    ) -> Result<&mut Self, RoadError> {
        if !(w.is_finite() && w >= 0.0) {
            return Err(RoadError::InvalidWeight(w));
        }
        if (u as usize) >= self.n {
            return Err(RoadError::VertexOutOfRange {
                vertex: u,
                num_vertices: self.n,
            });
        }
        if (v as usize) >= self.n {
            return Err(RoadError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.n,
            });
        }
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b, w));
        }
        Ok(self)
    }

    /// Finalizes the network, keeping the cheapest copy of any parallel edge.
    pub fn build(mut self) -> RoadNetwork {
        self.edges
            .sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        self.edges.dedup_by_key(|e| (e.0, e.1));
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v, w) in &self.edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        for list in &mut adj {
            list.sort_by_key(|a| a.0);
        }
        RoadNetwork {
            adj,
            num_edges: self.edges.len(),
        }
    }
}

impl RoadNetwork {
    /// Builds a road network from an edge list, ignoring invalid entries.
    ///
    /// This is the forgiving constructor used by generators; use
    /// [`RoadNetworkBuilder`] for strict validation.
    pub fn from_edges(n: usize, edges: &[(RoadVertexId, RoadVertexId, f64)]) -> Self {
        let mut builder = RoadNetworkBuilder::new(n);
        for &(u, v, w) in edges {
            let _ = builder.add_edge(u, v, w);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> RoadNetwork {
        RoadNetwork::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.5), (0, 3, 10.0)])
    }

    #[test]
    fn builds_weighted_network() {
        let net = small_net();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.num_edges(), 4);
        assert_eq!(net.edge_weight(1, 2), Some(3.0));
        assert_eq!(net.edge_weight(2, 1), Some(3.0));
        assert_eq!(net.edge_weight(0, 2), None);
        assert_eq!(net.degree(0), 2);
        assert!((net.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(net.max_degree(), 2);
    }

    #[test]
    fn parallel_edges_keep_cheapest() {
        let net = RoadNetwork::from_edges(2, &[(0, 1, 5.0), (1, 0, 2.0), (0, 1, 9.0)]);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        let mut b = RoadNetworkBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 1, -1.0),
            Err(RoadError::InvalidWeight(_))
        ));
        assert!(matches!(
            b.add_edge(0, 1, f64::NAN),
            Err(RoadError::InvalidWeight(_))
        ));
        assert!(matches!(
            b.add_edge(0, 5, 1.0),
            Err(RoadError::VertexOutOfRange { .. })
        ));
        b.add_edge(0, 1, 1.0).unwrap();
        let net = b.build();
        assert_eq!(net.num_edges(), 1);
    }

    #[test]
    fn location_validation() {
        let net = small_net();
        assert!(net.validate_location(&Location::vertex(3)).is_ok());
        assert!(matches!(
            net.validate_location(&Location::vertex(9)),
            Err(RoadError::VertexOutOfRange { .. })
        ));
        assert!(net
            .validate_location(&Location::OnEdge {
                u: 1,
                v: 2,
                offset: 1.0
            })
            .is_ok());
        assert!(matches!(
            net.validate_location(&Location::OnEdge {
                u: 0,
                v: 2,
                offset: 0.5
            }),
            Err(RoadError::NoSuchEdge { .. })
        ));
        assert!(matches!(
            net.validate_location(&Location::OnEdge {
                u: 1,
                v: 2,
                offset: 7.5
            }),
            Err(RoadError::InvalidOffset { .. })
        ));
    }

    #[test]
    fn on_edge_normalization() {
        let loc = Location::on_edge(3, 1, 0.5, 2.0);
        assert_eq!(
            loc,
            Location::OnEdge {
                u: 1,
                v: 3,
                offset: 1.5
            }
        );
        let loc2 = Location::on_edge(1, 3, 0.5, 2.0);
        assert_eq!(
            loc2,
            Location::OnEdge {
                u: 1,
                v: 3,
                offset: 0.5
            }
        );
    }

    #[test]
    fn set_edge_weight_updates_both_directions() {
        let mut net = small_net();
        let old = net.set_edge_weight(2, 1, 7.5).unwrap();
        assert_eq!(old, 3.0);
        assert_eq!(net.edge_weight(1, 2), Some(7.5));
        assert_eq!(net.edge_weight(2, 1), Some(7.5));
        assert_eq!(net.num_edges(), 4, "reweighting must not change topology");
        assert!(matches!(
            net.set_edge_weight(0, 2, 1.0),
            Err(RoadError::NoSuchEdge { .. })
        ));
        assert!(matches!(
            net.set_edge_weight(0, 1, -1.0),
            Err(RoadError::InvalidWeight(_))
        ));
        assert!(matches!(
            net.set_edge_weight(0, 9, 1.0),
            Err(RoadError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn batched_updates_are_all_or_nothing() {
        let mut net = small_net();
        let bad = [EdgeUpdate::new(0, 1, 4.0), EdgeUpdate::new(0, 2, 1.0)];
        assert!(matches!(
            net.apply_edge_updates(&bad),
            Err(RoadError::NoSuchEdge { .. })
        ));
        assert_eq!(
            net.edge_weight(0, 1),
            Some(2.0),
            "failed batch must leave the network untouched"
        );
        let good = [EdgeUpdate::new(0, 1, 4.0), EdgeUpdate::new(2, 3, 0.5)];
        net.apply_edge_updates(&good).unwrap();
        assert_eq!(net.edge_weight(0, 1), Some(4.0));
        assert_eq!(net.edge_weight(2, 3), Some(0.5));
    }

    #[test]
    fn edge_iterator_canonical() {
        let net = small_net();
        let mut edges: Vec<_> = net.edges().collect();
        edges.sort_by_key(|a| (a.0, a.1));
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (0, 1, 2.0));
        assert_eq!(edges[3], (2, 3, 1.5));
    }
}

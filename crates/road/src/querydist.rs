//! Query-distance evaluation (Definition 2) and the Lemma-1 range filter.
//!
//! For query users `Q` located at points `L(q)` in the road network, the query
//! distance of a user `v` is `D_Q(v) = max_{q ∈ Q} dist(L(v), L(q))`, and the
//! query distance of a community `H` is the maximum over its members. Lemma 1
//! states that users with `D_Q(v) > t` can never belong to an MAC, so the MAC
//! search first filters the social network with a road-network range query.
//! [`QueryDistanceIndex`] precomputes one (optionally bounded) distance field
//! per query location and answers all of these questions.

use crate::dijkstra::{distance_to_location, sssp_from_location};
use crate::network::{Location, RoadNetwork};

/// Precomputed distance fields from every query location.
#[derive(Debug, Clone)]
pub struct QueryDistanceIndex<'a> {
    net: &'a RoadNetwork,
    /// `fields[i][r]` = network distance from query location `i` to road
    /// vertex `r` (`f64::INFINITY` when unreachable or beyond the bound).
    fields: Vec<Vec<f64>>,
    bound: Option<f64>,
}

impl<'a> QueryDistanceIndex<'a> {
    /// Builds the index by running one (bounded) Dijkstra per query location.
    ///
    /// Passing `bound = Some(t)` prunes the searches at radius `t`; distances
    /// beyond the bound are reported as `f64::INFINITY`, which is sound for
    /// the Lemma-1 filter and for any threshold check with threshold `<= t`.
    pub fn build(net: &'a RoadNetwork, query_locations: &[Location], bound: Option<f64>) -> Self {
        let fields = query_locations
            .iter()
            .map(|loc| sssp_from_location(net, loc, bound))
            .collect();
        QueryDistanceIndex { net, fields, bound }
    }

    /// Number of query locations the index was built for.
    pub fn num_queries(&self) -> usize {
        self.fields.len()
    }

    /// The bound the index was built with, if any.
    pub fn bound(&self) -> Option<f64> {
        self.bound
    }

    /// Approximate memory footprint in bytes (used by the Fig. 11(d) memory
    /// accounting harness).
    pub fn memory_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.len() * std::mem::size_of::<f64>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Query distance `D_Q` of an arbitrary location: the maximum over all
    /// query locations of the network distance to it.
    pub fn query_distance(&self, loc: &Location) -> f64 {
        self.fields
            .iter()
            .map(|field| distance_to_location(self.net, field, loc))
            .fold(0.0_f64, f64::max)
    }

    /// Query distance of a road vertex.
    pub fn query_distance_of_vertex(&self, v: u32) -> f64 {
        self.fields
            .iter()
            .map(|field| field[v as usize])
            .fold(0.0_f64, f64::max)
    }

    /// Query distance of a community given the locations of its members
    /// (`D_Q(H)` of Definition 2). Returns 0.0 for an empty member list.
    pub fn query_distance_of_members(&self, members: &[Location]) -> f64 {
        members
            .iter()
            .map(|loc| self.query_distance(loc))
            .fold(0.0_f64, f64::max)
    }

    /// Lemma-1 filter: for each user location, whether `D_Q(v) <= t`.
    ///
    /// When the index was built with a bound smaller than `t`, distances past
    /// the bound are unknown (∞) and the corresponding users are conservatively
    /// rejected; callers should build with `bound >= t` (the MAC search builds
    /// with exactly `t`).
    pub fn within_threshold(&self, user_locations: &[Location], t: f64) -> Vec<bool> {
        user_locations
            .iter()
            .map(|loc| self.query_distance(loc) <= t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;

    /// A 3x3 grid road network with unit weights.
    ///
    /// Vertex ids: row * 3 + col.
    fn grid3() -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((v, v + 1, 1.0));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3, 1.0));
                }
            }
        }
        RoadNetwork::from_edges(9, &edges)
    }

    #[test]
    fn query_distance_single_query() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        assert_eq!(idx.num_queries(), 1);
        assert!((idx.query_distance_of_vertex(8) - 4.0).abs() < 1e-12);
        assert!((idx.query_distance(&Location::vertex(4)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn query_distance_is_max_over_queries() {
        let net = grid3();
        // queries at opposite corners
        let idx =
            QueryDistanceIndex::build(&net, &[Location::vertex(0), Location::vertex(8)], None);
        // centre vertex is 2 away from both
        assert!((idx.query_distance_of_vertex(4) - 2.0).abs() < 1e-12);
        // corner 2 is 2 away from 0 but 2 away from 8? dist(2,8)=2, dist(2,0)=2
        assert!((idx.query_distance_of_vertex(2) - 2.0).abs() < 1e-12);
        // vertex 6: dist to 0 = 2, dist to 8 = 2
        assert!((idx.query_distance_of_vertex(6) - 2.0).abs() < 1e-12);
        // vertex 1: dist to 0 = 1, to 8 = 3 -> 3
        assert!((idx.query_distance_of_vertex(1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn within_threshold_filters_users() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], Some(2.0));
        let users = vec![
            Location::vertex(0),
            Location::vertex(4),
            Location::vertex(8),
        ];
        assert_eq!(idx.within_threshold(&users, 2.0), vec![true, true, false]);
    }

    #[test]
    fn query_distance_of_members_is_max() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        let members = vec![
            Location::vertex(1),
            Location::vertex(5),
            Location::vertex(8),
        ];
        assert!((idx.query_distance_of_members(&members) - 4.0).abs() < 1e-12);
        assert_eq!(idx.query_distance_of_members(&[]), 0.0);
    }

    #[test]
    fn paper_example_query_distances() {
        // Road network engineered so that dist(r7, r6) = 7 and
        // dist(r3, r6) = 9, matching the Section II examples
        // (DQ(v7) = 7, DQ({v2,v3,v6,v7}) = 9 for Q = {v2, v3, v6}).
        // Vertices here: 0..=6 stand for r1..=r7.
        let net = RoadNetwork::from_edges(
            7,
            &[
                (1, 2, 4.0), // r2 - r3
                (1, 5, 6.0), // r2 - r6
                (2, 5, 9.0), // r3 - r6
                (2, 6, 3.0), // r3 - r7
                (5, 6, 7.0), // r6 - r7
                (0, 1, 2.0), // r1 - r2
                (3, 2, 5.0), // r4 - r3
                (4, 5, 4.0), // r5 - r6
            ],
        );
        let q = [Location::vertex(1), Location::vertex(2), Location::vertex(5)];
        let idx = QueryDistanceIndex::build(&net, &q, None);
        assert!((idx.query_distance_of_vertex(6) - 7.0).abs() < 1e-12);
        let h = [
            Location::vertex(1),
            Location::vertex(2),
            Location::vertex(5),
            Location::vertex(6),
        ];
        assert!((idx.query_distance_of_members(&h) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting_positive() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        assert!(idx.memory_bytes() >= 9 * std::mem::size_of::<f64>());
    }
}

//! Query-distance evaluation (Definition 2) and the Lemma-1 range filter.
//!
//! For query users `Q` located at points `L(q)` in the road network, the query
//! distance of a user `v` is `D_Q(v) = max_{q ∈ Q} dist(L(v), L(q))`, and the
//! query distance of a community `H` is the maximum over its members. Lemma 1
//! states that users with `D_Q(v) > t` can never belong to an MAC, so the MAC
//! search first filters the social network with a road-network range query.
//!
//! [`QueryDistanceIndex`] answers all of these questions through either
//! backend of the [`DistanceOracle`]:
//!
//! * **Dijkstra**: one (bounded) SSSP per query location, materialized into a
//!   flat row-major `|Q| × |V|` distance matrix; evaluation then indexes the
//!   matrix. One allocation for the matrix, scratch state pooled.
//! * **G-tree**: no fields at all — each evaluation assembles the exact
//!   distance from the G-tree's border matrices, reusing one precomputed
//!   source-side climb per query location. This is the paper's accelerator:
//!   with `|Q|` locations probed against `m ≪ |V|·|Q|` user locations, point
//!   queries beat sweeping the whole road network.

use crate::dijkstra::distance_to_location;
use crate::gtree::{GTree, SourceState};
use crate::network::{Location, RoadNetwork};
use crate::oracle::{along_edge_distance, location_seeds, DistanceOracle, ScratchPool};

/// One query location prepared for repeated G-tree point queries: the seeds
/// (`(vertex, offset)` pairs) with their precomputed source-side climbs.
#[derive(Debug, Clone)]
struct GTreeSource {
    location: Location,
    seeds: Vec<(SourceState, f64)>,
}

#[derive(Debug, Clone)]
enum Backend<'a> {
    /// Row-major `num_queries × num_vertices` distance matrix.
    Fields {
        matrix: Vec<f64>,
        num_vertices: usize,
    },
    /// Prepared per-query-location G-tree states.
    GTree {
        tree: &'a GTree,
        sources: Vec<GTreeSource>,
    },
}

/// Distance fields / point-query states from every query location.
#[derive(Debug, Clone)]
pub struct QueryDistanceIndex<'a> {
    net: &'a RoadNetwork,
    query_locations: Vec<Location>,
    backend: Backend<'a>,
    bound: Option<f64>,
}

impl<'a> QueryDistanceIndex<'a> {
    /// Builds the index by running one (bounded) Dijkstra per query location.
    ///
    /// Passing `bound = Some(t)` prunes the searches at radius `t`; distances
    /// beyond the bound are reported as `f64::INFINITY`, which is sound for
    /// the Lemma-1 filter and for any threshold check with threshold `<= t`.
    pub fn build(net: &'a RoadNetwork, query_locations: &[Location], bound: Option<f64>) -> Self {
        let oracle = DistanceOracle::dijkstra();
        Self::build_with_oracle(net, &oracle, query_locations, bound)
    }

    /// Builds the index through an explicit [`DistanceOracle`].
    ///
    /// The G-tree backend ignores `bound` (point queries are exact and never
    /// sweep), so its distances are exact even past the bound; every
    /// threshold predicate agrees between the backends for thresholds
    /// `<= bound`.
    pub fn build_with_oracle(
        net: &'a RoadNetwork,
        oracle: &DistanceOracle<'a>,
        query_locations: &[Location],
        bound: Option<f64>,
    ) -> Self {
        let backend = match oracle {
            DistanceOracle::Dijkstra(pool) => Self::build_fields(net, pool, query_locations, bound),
            DistanceOracle::GTree(tree) => {
                let sources = query_locations
                    .iter()
                    .map(|loc| GTreeSource {
                        location: *loc,
                        seeds: location_seeds(net, loc)
                            .into_iter()
                            .filter(|&(_, off)| off.is_finite())
                            .filter_map(|(v, off)| tree.source_state(v).map(|s| (s, off)))
                            .collect(),
                    })
                    .collect();
                Backend::GTree { tree, sources }
            }
        };
        QueryDistanceIndex {
            net,
            query_locations: query_locations.to_vec(),
            backend,
            bound,
        }
    }

    fn build_fields(
        net: &RoadNetwork,
        pool: &ScratchPool,
        query_locations: &[Location],
        bound: Option<f64>,
    ) -> Backend<'static> {
        let n = net.num_vertices();
        let mut matrix = vec![f64::INFINITY; n * query_locations.len()];
        pool.with_scratch(|scratch| {
            for (i, loc) in query_locations.iter().enumerate() {
                let field = scratch.run(net, &location_seeds(net, loc), bound, None);
                matrix[i * n..(i + 1) * n].copy_from_slice(field);
            }
        });
        Backend::Fields {
            matrix,
            num_vertices: n,
        }
    }

    /// Number of query locations the index was built for.
    pub fn num_queries(&self) -> usize {
        self.query_locations.len()
    }

    /// The query locations themselves.
    pub fn query_locations(&self) -> &[Location] {
        &self.query_locations
    }

    /// The bound the index was built with, if any.
    pub fn bound(&self) -> Option<f64> {
        self.bound
    }

    /// Whether the index answers from the G-tree backend.
    pub fn is_gtree_backed(&self) -> bool {
        matches!(self.backend, Backend::GTree { .. })
    }

    /// Approximate memory footprint in bytes (used by the Fig. 11(d) memory
    /// accounting harness).
    pub fn memory_bytes(&self) -> usize {
        let backend = match &self.backend {
            Backend::Fields { matrix, .. } => matrix.len() * std::mem::size_of::<f64>(),
            Backend::GTree { sources, .. } => sources
                .iter()
                .flat_map(|s| s.seeds.iter())
                .map(|(state, _)| state.memory_bytes())
                .sum(),
        };
        backend + std::mem::size_of::<Self>()
    }

    /// Distance from query location `i` to an arbitrary location.
    fn distance_from_query(&self, i: usize, loc: &Location) -> f64 {
        match &self.backend {
            Backend::Fields {
                matrix,
                num_vertices,
            } => {
                let row = &matrix[i * num_vertices..(i + 1) * num_vertices];
                let via_vertices = distance_to_location(self.net, row, loc);
                via_vertices.min(along_edge_distance(&self.query_locations[i], loc))
            }
            Backend::GTree { tree, sources } => {
                let source = &sources[i];
                let target_seeds = location_seeds(self.net, loc);
                let mut best = along_edge_distance(&source.location, loc);
                for &(ref state, off_src) in &source.seeds {
                    for &(target, off_dst) in &target_seeds {
                        if !off_dst.is_finite() {
                            continue;
                        }
                        let cand = off_src + tree.dist_from_source(state, target) + off_dst;
                        if cand < best {
                            best = cand;
                        }
                    }
                }
                best
            }
        }
    }

    /// Query distance `D_Q` of an arbitrary location: the maximum over all
    /// query locations of the network distance to it.
    pub fn query_distance(&self, loc: &Location) -> f64 {
        (0..self.num_queries())
            .map(|i| self.distance_from_query(i, loc))
            .fold(0.0_f64, f64::max)
    }

    /// Query distance of a road vertex.
    pub fn query_distance_of_vertex(&self, v: u32) -> f64 {
        match &self.backend {
            Backend::Fields {
                matrix,
                num_vertices,
            } => (0..self.num_queries())
                .map(|i| matrix[i * num_vertices + v as usize])
                .fold(0.0_f64, f64::max),
            Backend::GTree { tree, sources } => sources
                .iter()
                .map(|source| {
                    source
                        .seeds
                        .iter()
                        .map(|(state, off)| off + tree.dist_from_source(state, v))
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(0.0_f64, f64::max),
        }
    }

    /// Query distance of a community given the locations of its members
    /// (`D_Q(H)` of Definition 2). Returns 0.0 for an empty member list.
    pub fn query_distance_of_members(&self, members: &[Location]) -> f64 {
        members
            .iter()
            .map(|loc| self.query_distance(loc))
            .fold(0.0_f64, f64::max)
    }

    /// Lemma-1 filter: for each user location, whether `D_Q(v) <= t`.
    ///
    /// When the index was built with a bound smaller than `t`, distances past
    /// the bound are unknown (∞) and the corresponding users are conservatively
    /// rejected; callers should build with `bound >= t` (the MAC search builds
    /// with exactly `t`).
    pub fn within_threshold(&self, user_locations: &[Location], t: f64) -> Vec<bool> {
        user_locations
            .iter()
            .map(|loc| self.query_distance(loc) <= t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;

    /// A 3x3 grid road network with unit weights.
    ///
    /// Vertex ids: row * 3 + col.
    fn grid3() -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((v, v + 1, 1.0));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3, 1.0));
                }
            }
        }
        RoadNetwork::from_edges(9, &edges)
    }

    #[test]
    fn query_distance_single_query() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        assert_eq!(idx.num_queries(), 1);
        assert!((idx.query_distance_of_vertex(8) - 4.0).abs() < 1e-12);
        assert!((idx.query_distance(&Location::vertex(4)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn query_distance_is_max_over_queries() {
        let net = grid3();
        // queries at opposite corners
        let idx =
            QueryDistanceIndex::build(&net, &[Location::vertex(0), Location::vertex(8)], None);
        // centre vertex is 2 away from both
        assert!((idx.query_distance_of_vertex(4) - 2.0).abs() < 1e-12);
        // corner 2 is 2 away from 0 but 2 away from 8? dist(2,8)=2, dist(2,0)=2
        assert!((idx.query_distance_of_vertex(2) - 2.0).abs() < 1e-12);
        // vertex 6: dist to 0 = 2, dist to 8 = 2
        assert!((idx.query_distance_of_vertex(6) - 2.0).abs() < 1e-12);
        // vertex 1: dist to 0 = 1, to 8 = 3 -> 3
        assert!((idx.query_distance_of_vertex(1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn within_threshold_filters_users() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], Some(2.0));
        let users = vec![
            Location::vertex(0),
            Location::vertex(4),
            Location::vertex(8),
        ];
        assert_eq!(idx.within_threshold(&users, 2.0), vec![true, true, false]);
    }

    #[test]
    fn query_distance_of_members_is_max() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        let members = vec![
            Location::vertex(1),
            Location::vertex(5),
            Location::vertex(8),
        ];
        assert!((idx.query_distance_of_members(&members) - 4.0).abs() < 1e-12);
        assert_eq!(idx.query_distance_of_members(&[]), 0.0);
    }

    #[test]
    fn paper_example_query_distances() {
        // Road network engineered so that dist(r7, r6) = 7 and
        // dist(r3, r6) = 9, matching the Section II examples
        // (DQ(v7) = 7, DQ({v2,v3,v6,v7}) = 9 for Q = {v2, v3, v6}).
        // Vertices here: 0..=6 stand for r1..=r7.
        let net = RoadNetwork::from_edges(
            7,
            &[
                (1, 2, 4.0), // r2 - r3
                (1, 5, 6.0), // r2 - r6
                (2, 5, 9.0), // r3 - r6
                (2, 6, 3.0), // r3 - r7
                (5, 6, 7.0), // r6 - r7
                (0, 1, 2.0), // r1 - r2
                (3, 2, 5.0), // r4 - r3
                (4, 5, 4.0), // r5 - r6
            ],
        );
        let q = [
            Location::vertex(1),
            Location::vertex(2),
            Location::vertex(5),
        ];
        let idx = QueryDistanceIndex::build(&net, &q, None);
        assert!((idx.query_distance_of_vertex(6) - 7.0).abs() < 1e-12);
        let h = [
            Location::vertex(1),
            Location::vertex(2),
            Location::vertex(5),
            Location::vertex(6),
        ];
        assert!((idx.query_distance_of_members(&h) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting_positive() {
        let net = grid3();
        let idx = QueryDistanceIndex::build(&net, &[Location::vertex(0)], None);
        assert!(idx.memory_bytes() >= 9 * std::mem::size_of::<f64>());
    }

    #[test]
    fn same_edge_locations_use_the_along_edge_path() {
        // A single heavy edge: two interior points are 1 apart along the edge
        // even though the endpoint detours cost 9 / 11.
        let net = RoadNetwork::from_edges(2, &[(0, 1, 10.0)]);
        let q = Location::OnEdge {
            u: 0,
            v: 1,
            offset: 4.0,
        };
        let member = Location::OnEdge {
            u: 0,
            v: 1,
            offset: 5.0,
        };
        let idx = QueryDistanceIndex::build(&net, &[q], None);
        assert!((idx.query_distance(&member) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gtree_backend_matches_dijkstra_backend() {
        use crate::gtree::GTree;
        let net = grid3();
        let tree = GTree::build_with_capacity(&net, 4);
        let q = [
            Location::vertex(0),
            Location::OnEdge {
                u: 4,
                v: 5,
                offset: 0.25,
            },
        ];
        let dij = QueryDistanceIndex::build(&net, &q, None);
        let oracle = DistanceOracle::GTree(&tree);
        let gt = QueryDistanceIndex::build_with_oracle(&net, &oracle, &q, None);
        assert!(gt.is_gtree_backed() && !dij.is_gtree_backed());
        for v in 0..9u32 {
            let a = dij.query_distance_of_vertex(v);
            let b = gt.query_distance_of_vertex(v);
            assert!((a - b).abs() < 1e-9, "vertex {v}: fields {a} gtree {b}");
        }
        let probes = [
            Location::vertex(7),
            Location::OnEdge {
                u: 1,
                v: 2,
                offset: 0.5,
            },
            Location::OnEdge {
                u: 4,
                v: 5,
                offset: 0.75,
            },
        ];
        for loc in &probes {
            let a = dij.query_distance(loc);
            let b = gt.query_distance(loc);
            assert!((a - b).abs() < 1e-9, "{loc:?}: fields {a} gtree {b}");
        }
    }
}

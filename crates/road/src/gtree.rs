//! A hierarchical graph-partition index over the road network, in the spirit
//! of the G-tree of Zhong et al. (TKDE 2015), which the paper uses to
//! accelerate the road-network range query of Lemma 1.
//!
//! The index recursively bisects the road network into nested regions. Every
//! leaf stores the pairwise shortest distances *within its region*; every
//! internal node stores the pairwise within-region distances between the
//! borders of its children, assembled bottom-up over a reduced "border graph".
//! Point-to-point queries combine the per-level matrices with a dynamic
//! program over the ancestor chain; taking the minimum over **all** common
//! ancestors (not only the LCA) makes the answer exact even when the true
//! shortest path leaves the LCA's region. Exactness against Dijkstra is
//! enforced by the property tests of this module.

use crate::dijkstra::SsspScratch;
use crate::network::{RoadNetwork, RoadVertexId};
use std::collections::HashMap;

/// Default maximum number of vertices per leaf region.
pub const DEFAULT_LEAF_CAPACITY: usize = 32;

#[derive(Debug, Clone)]
struct GTreeNode {
    parent: Option<usize>,
    children: Vec<usize>,
    /// Vertices of this node's region.
    vertices: Vec<RoadVertexId>,
    /// Vertices of the region with at least one road edge leaving the region.
    borders: Vec<RoadVertexId>,
    /// Matrix index space: all region vertices for leaves, the union of the
    /// children's borders for internal nodes.
    union_borders: Vec<RoadVertexId>,
    /// Position of a vertex inside `union_borders`.
    ub_index: HashMap<RoadVertexId, usize>,
    /// Row-major `|union_borders| x |union_borders|` within-region distances.
    matrix: Vec<f64>,
}

impl GTreeNode {
    fn matrix_at(&self, i: usize, j: usize) -> f64 {
        self.matrix[i * self.union_borders.len() + j]
    }
}

/// Hierarchical road-network distance index.
#[derive(Debug, Clone)]
pub struct GTree {
    nodes: Vec<GTreeNode>,
    leaf_of: Vec<usize>,
    root: usize,
    num_vertices: usize,
}

/// Precomputed source side of a point query: the ancestor chain of the
/// source's leaf and the distance vectors from the source to the borders of
/// every node on that chain.
///
/// Query-distance evaluation probes the same few source locations (the query
/// users) against many targets; sharing this state across targets halves the
/// per-query work and removes the per-call source-side allocations.
#[derive(Debug, Clone)]
pub struct SourceState {
    vertex: RoadVertexId,
    leaf: usize,
    /// Ancestor chain from the source's leaf (inclusive) to the root.
    path: Vec<usize>,
    /// `vecs[i]` = distances from the source to the borders of `path[i]`,
    /// computed within that node's region.
    vecs: Vec<Vec<f64>>,
    /// Position of each chain node within `path`.
    on_path: HashMap<usize, usize>,
}

impl SourceState {
    /// The source road vertex.
    pub fn vertex(&self) -> RoadVertexId {
        self.vertex
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.path.len() * std::mem::size_of::<usize>()
            + self
                .vecs
                .iter()
                .map(|v| v.len() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self.on_path.len() * 2 * std::mem::size_of::<usize>()
    }
}

/// Target seeds of a batched one-to-many evaluation, grouped by G-tree leaf.
///
/// Built once per query via [`GTree::group_targets`] and shared by every
/// source seed; `occupied` lets the walk skip subtrees containing no target.
#[derive(Debug, Clone)]
pub struct LeafTargets {
    /// `per_leaf[node]` = `(item, vertex, offset)` seeds in that leaf.
    per_leaf: Vec<Vec<(u32, RoadVertexId, f64)>>,
    /// `occupied[node]` = number of seeds in the node's subtree.
    occupied: Vec<u32>,
}

impl LeafTargets {
    /// Total number of grouped seeds.
    pub fn num_seeds(&self) -> usize {
        self.per_leaf.iter().map(|v| v.len()).sum()
    }
}

/// Reusable buffers for [`GTree::accumulate_source_distances`]: the per-node
/// entry vectors — the walk's large allocations — are recycled across source
/// seeds and queries. Small per-visit locals (border-index and cross/through
/// lookup tables) still allocate, because they stay live across the recursive
/// descent; pooling them per depth is a noted follow-up.
#[derive(Debug, Default)]
pub struct RangeScratch {
    /// `entry[node][i]` = exact distance from the current source to the node's
    /// `borders[i]` over paths whose final segment stays inside the node.
    entry: Vec<Vec<f64>>,
}

impl GTree {
    /// Builds the index with the default leaf capacity.
    pub fn build(net: &RoadNetwork) -> Self {
        Self::build_with_capacity(net, DEFAULT_LEAF_CAPACITY)
    }

    /// Builds the index with an explicit leaf capacity (minimum 4).
    pub fn build_with_capacity(net: &RoadNetwork, leaf_capacity: usize) -> Self {
        let leaf_capacity = leaf_capacity.max(4);
        let n = net.num_vertices();
        let mut tree = GTree {
            nodes: Vec::new(),
            leaf_of: vec![usize::MAX; n],
            root: 0,
            num_vertices: n,
        };
        let all: Vec<RoadVertexId> = (0..n as u32).collect();
        if n == 0 {
            tree.nodes.push(GTreeNode {
                parent: None,
                children: Vec::new(),
                vertices: Vec::new(),
                borders: Vec::new(),
                union_borders: Vec::new(),
                ub_index: HashMap::new(),
                matrix: Vec::new(),
            });
            return tree;
        }
        tree.root = tree.partition(net, all, None, leaf_capacity);
        tree.compute_borders(net);
        tree.compute_matrices(net);
        tree
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (a single leaf tree has height 1).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[GTreeNode], i: usize) -> usize {
            1 + nodes[i]
                .children
                .iter()
                .map(|&c| depth(nodes, c))
                .max()
                .unwrap_or(0)
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth(&self.nodes, self.root)
        }
    }

    /// Approximate memory footprint of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|node| {
                node.matrix.len() * std::mem::size_of::<f64>()
                    + (node.vertices.len() + node.borders.len() + node.union_borders.len())
                        * std::mem::size_of::<RoadVertexId>()
                    + node.ub_index.len() * 2 * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Exact shortest-path distance between two road vertices.
    pub fn dist(&self, u: RoadVertexId, v: RoadVertexId) -> f64 {
        match self.source_state(u) {
            Some(state) => self.dist_from_source(&state, v),
            None => f64::INFINITY,
        }
    }

    /// Precomputes the source-side climb for `u` so that many point queries
    /// from the same source (the query users of the MAC range filter) share
    /// the ancestor chain and border-distance vectors instead of recomputing
    /// them per target. Returns `None` for an out-of-range vertex.
    pub fn source_state(&self, u: RoadVertexId) -> Option<SourceState> {
        if u as usize >= self.num_vertices {
            return None;
        }
        let leaf = self.leaf_of[u as usize];
        let path = self.ancestor_chain(leaf);
        let vecs = self.climb(u, &path);
        let on_path = path.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Some(SourceState {
            vertex: u,
            leaf,
            path,
            vecs,
            on_path,
        })
    }

    /// Exact distance from a precomputed source state to `v` (equals
    /// `self.dist(state.vertex(), v)`).
    pub fn dist_from_source(&self, state: &SourceState, v: RoadVertexId) -> f64 {
        let u = state.vertex;
        if v as usize >= self.num_vertices {
            return f64::INFINITY;
        }
        if u == v {
            return 0.0;
        }
        let leaf_u = state.leaf;
        let leaf_v = self.leaf_of[v as usize];

        let mut best = f64::INFINITY;
        if leaf_u == leaf_v {
            let node = &self.nodes[leaf_u];
            let iu = node.ub_index[&u];
            let iv = node.ub_index[&v];
            best = node.matrix_at(iu, iv);
        }

        // Ancestor chains from leaf to root.
        let path_u = &state.path;
        let path_v = self.ancestor_chain(leaf_v);

        // Distance vectors from u (resp. v) to the borders of each node on its
        // ancestor chain, computed within that node's region.
        let a_vecs = &state.vecs;
        let b_vecs = self.climb(v, &path_v);

        // Combine at every common ancestor: the true path crosses the borders
        // of the two children of the lowest ancestor whose region it stays in.
        let set_u = &state.on_path;
        for (vi, &w) in path_v.iter().enumerate() {
            let Some(&ui) = set_u.get(&w) else { continue };
            // child of w on each side (the previous node on the chain);
            // when the common ancestor is the leaf itself this is the leaf.
            let cu = if ui == 0 { path_u[0] } else { path_u[ui - 1] };
            let cv = if vi == 0 { path_v[0] } else { path_v[vi - 1] };
            if ui == 0 && vi == 0 {
                // same leaf: already handled via the leaf matrix
                continue;
            }
            let wn = &self.nodes[w];
            let cu_node = &self.nodes[cu];
            let cv_node = &self.nodes[cv];
            let au = &a_vecs[ui.saturating_sub(if ui == 0 { 0 } else { 1 })];
            let bv = &b_vecs[vi.saturating_sub(if vi == 0 { 0 } else { 1 })];
            for (xi, &x) in cu_node.borders.iter().enumerate() {
                let ax = au[xi];
                if !ax.is_finite() {
                    continue;
                }
                let wx = wn.ub_index[&x];
                for (yi, &y) in cv_node.borders.iter().enumerate() {
                    let by = bv[yi];
                    if !by.is_finite() {
                        continue;
                    }
                    let wy = wn.ub_index[&y];
                    let cand = ax + wn.matrix_at(wx, wy) + by;
                    if cand < best {
                        best = cand;
                    }
                }
            }
        }
        best
    }

    /// Vertices grouped by leaf region (used by tests and diagnostics).
    pub fn leaf_regions(&self) -> Vec<Vec<RoadVertexId>> {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty())
            .map(|n| n.vertices.clone())
            .collect()
    }

    /// Groups target seeds `(item, vertex, offset)` by the leaf containing the
    /// vertex and records per-subtree occupancy, so that batched evaluation
    /// ([`accumulate_source_distances`](Self::accumulate_source_distances))
    /// can skip empty subtrees entirely. Seeds with out-of-range vertices are
    /// dropped.
    pub fn group_targets<I>(&self, seeds: I) -> LeafTargets
    where
        I: IntoIterator<Item = (u32, RoadVertexId, f64)>,
    {
        let mut per_leaf: Vec<Vec<(u32, RoadVertexId, f64)>> = vec![Vec::new(); self.nodes.len()];
        let mut occupied = vec![0u32; self.nodes.len()];
        for (item, v, off) in seeds {
            if v as usize >= self.num_vertices {
                continue;
            }
            let leaf = self.leaf_of[v as usize];
            per_leaf[leaf].push((item, v, off));
            occupied[leaf] += 1;
            let mut cur = leaf;
            while let Some(p) = self.nodes[cur].parent {
                occupied[p] += 1;
                cur = p;
            }
        }
        LeafTargets { per_leaf, occupied }
    }

    /// Leaf-batched one-to-many evaluation: for every target seed
    /// `(item, v, toff)` of `targets`, lowers `best[item]` to
    /// `soff + dist(u, v) + toff` when that candidate is smaller.
    ///
    /// Unlike per-item point queries ([`dist_from_source`](Self::dist_from_source)),
    /// this climbs the tree **once** for the source and then walks it top-down,
    /// carrying for each node the exact entry distances to its borders; every
    /// occupied leaf is evaluated with a single pass over its border rows of
    /// the leaf matrix. Subtrees whose minimum entry distance already exceeds
    /// `prune_at - soff` are skipped wholesale (their candidates can only be
    /// larger), which is the Lemma-1 accelerator: with `prune_at = t`, only the
    /// part of the hierarchy within range of the query is ever touched. Pass
    /// `f64::INFINITY` to disable pruning; candidates are exact in either case.
    pub fn accumulate_source_distances(
        &self,
        u: RoadVertexId,
        soff: f64,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        scratch: &mut RangeScratch,
    ) {
        if self.nodes.is_empty() || u as usize >= self.num_vertices {
            return;
        }
        debug_assert_eq!(targets.per_leaf.len(), self.nodes.len());
        let leaf_u = self.leaf_of[u as usize];
        let path = self.ancestor_chain(leaf_u);
        let a_vecs = self.climb(u, &path);
        scratch.entry.resize(self.nodes.len(), Vec::new());
        self.batched_visit(
            self.root, false, u, soff, &path, &a_vecs, leaf_u, targets, prune_at, best, scratch,
        );
    }

    /// One step of the top-down batched walk: `node` is visited with
    /// `scratch.entry[node]` filled (unless `node` is the root, flagged by
    /// `has_entry == false`) with the exact distances from `u` to the node's
    /// borders over paths whose final segment stays inside the node's region.
    #[allow(clippy::too_many_arguments)]
    fn batched_visit(
        &self,
        node: usize,
        has_entry: bool,
        u: RoadVertexId,
        soff: f64,
        path: &[usize],
        a_vecs: &[Vec<f64>],
        leaf_u: usize,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        scratch: &mut RangeScratch,
    ) {
        let n = &self.nodes[node];
        if n.children.is_empty() {
            // Leaf: one pass over the border rows of the leaf matrix per item.
            let border_idx: Vec<usize> = n.borders.iter().map(|b| n.ub_index[b]).collect();
            let iu = if node == leaf_u {
                Some(n.ub_index[&u])
            } else {
                None
            };
            for &(item, tv, toff) in &targets.per_leaf[node] {
                let iv = n.ub_index[&tv];
                let mut within = f64::INFINITY;
                if has_entry {
                    let entry = &scratch.entry[node];
                    for (bi, &bidx) in border_idx.iter().enumerate() {
                        let e = entry[bi];
                        if e.is_finite() {
                            within = within.min(e + n.matrix_at(bidx, iv));
                        }
                    }
                }
                if let Some(iu) = iu {
                    within = within.min(n.matrix_at(iu, iv));
                }
                let cand = soff + within + toff;
                if cand < best[item as usize] {
                    best[item as usize] = cand;
                }
            }
            return;
        }

        // Internal node: position on the source's ancestor chain (if any) and
        // the union-border indices needed to extend entry vectors downwards.
        let chain_pos = path.iter().position(|&p| p == node);
        let cross: Option<Vec<(usize, f64)>> = chain_pos.map(|i| {
            // `node == path[i]` with i >= 1 (a leaf never has children), so the
            // child on the chain is path[i - 1] and a_vecs[i - 1] holds the
            // distances from u to its borders, computed within its region.
            let cu = &self.nodes[path[i - 1]];
            cu.borders
                .iter()
                .zip(&a_vecs[i - 1])
                .filter(|&(_, &d)| d.is_finite())
                .map(|(&x, &d)| (n.ub_index[&x], d))
                .collect()
        });
        let through: Option<Vec<(usize, f64)>> = if has_entry {
            Some(
                n.borders
                    .iter()
                    .zip(&scratch.entry[node])
                    .filter(|&(_, &d)| d.is_finite())
                    .map(|(&b, &d)| (n.ub_index[&b], d))
                    .collect(),
            )
        } else {
            None
        };

        for &child in &n.children {
            if targets.occupied[child] == 0 {
                continue;
            }
            let mut min_entry = f64::INFINITY;
            let mut entry = std::mem::take(&mut scratch.entry[child]);
            entry.clear();
            for &b in &self.nodes[child].borders {
                let bi = n.ub_index[&b];
                let mut e = f64::INFINITY;
                if let Some(cross) = &cross {
                    for &(xi, d) in cross {
                        e = e.min(d + n.matrix_at(xi, bi));
                    }
                }
                if let Some(through) = &through {
                    for &(yi, d) in through {
                        e = e.min(d + n.matrix_at(yi, bi));
                    }
                }
                min_entry = min_entry.min(e);
                entry.push(e);
            }
            scratch.entry[child] = entry;
            // The source lies outside any subtree not on its ancestor chain,
            // so every path into `child` pays at least `min_entry`; target
            // offsets only add to that.
            let child_on_chain = path.contains(&child);
            if !child_on_chain && soff + min_entry > prune_at {
                continue;
            }
            self.batched_visit(
                child, true, u, soff, path, a_vecs, leaf_u, targets, prune_at, best, scratch,
            );
        }
    }

    fn ancestor_chain(&self, leaf: usize) -> Vec<usize> {
        let mut chain = vec![leaf];
        let mut cur = leaf;
        while let Some(p) = self.nodes[cur].parent {
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// `result[i]` = distances from `u` to the borders of `path[i]`, computed
    /// within the region of `path[i]`.
    fn climb(&self, u: RoadVertexId, path: &[usize]) -> Vec<Vec<f64>> {
        let mut result: Vec<Vec<f64>> = Vec::with_capacity(path.len());
        // Leaf level.
        let leaf = &self.nodes[path[0]];
        let iu = leaf.ub_index[&u];
        let leaf_dists: Vec<f64> = leaf
            .borders
            .iter()
            .map(|b| leaf.matrix_at(iu, leaf.ub_index[b]))
            .collect();
        result.push(leaf_dists);
        // Internal levels.
        for level in 1..path.len() {
            let node = &self.nodes[path[level]];
            let child = &self.nodes[path[level - 1]];
            let prev = &result[level - 1];
            let dists: Vec<f64> = node
                .borders
                .iter()
                .map(|&x| {
                    let xi = node.ub_index[&x];
                    let mut best = f64::INFINITY;
                    for (bi, &b) in child.borders.iter().enumerate() {
                        if !prev[bi].is_finite() {
                            continue;
                        }
                        let bidx = node.ub_index[&b];
                        let cand = prev[bi] + node.matrix_at(bidx, xi);
                        if cand < best {
                            best = cand;
                        }
                    }
                    best
                })
                .collect();
            result.push(dists);
        }
        result
    }

    /// Recursively partitions `vertices` into a subtree; returns the node id.
    fn partition(
        &mut self,
        net: &RoadNetwork,
        vertices: Vec<RoadVertexId>,
        parent: Option<usize>,
        leaf_capacity: usize,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(GTreeNode {
            parent,
            children: Vec::new(),
            vertices: vertices.clone(),
            borders: Vec::new(),
            union_borders: Vec::new(),
            ub_index: HashMap::new(),
            matrix: Vec::new(),
        });
        if vertices.len() <= leaf_capacity {
            for &v in &vertices {
                self.leaf_of[v as usize] = id;
            }
            return id;
        }
        let (left, right) = bisect(net, &vertices);
        let left_id = self.partition(net, left, Some(id), leaf_capacity);
        let right_id = self.partition(net, right, Some(id), leaf_capacity);
        self.nodes[id].children = vec![left_id, right_id];
        id
    }

    fn compute_borders(&mut self, net: &RoadNetwork) {
        let n = self.num_vertices;
        let mut in_region = vec![false; n];
        for id in 0..self.nodes.len() {
            for &v in &self.nodes[id].vertices {
                in_region[v as usize] = true;
            }
            let borders: Vec<RoadVertexId> = self.nodes[id]
                .vertices
                .iter()
                .copied()
                .filter(|&v| {
                    net.neighbors(v)
                        .iter()
                        .any(|&(u, _)| !in_region[u as usize])
                })
                .collect();
            for &v in &self.nodes[id].vertices {
                in_region[v as usize] = false;
            }
            self.nodes[id].borders = borders;
        }
    }

    fn compute_matrices(&mut self, net: &RoadNetwork) {
        let n = self.num_vertices;
        // Bottom-up order: children have larger ids than parents is NOT
        // guaranteed by construction order (parents are created before
        // children), so process in reverse creation order, which visits
        // children before parents.
        let order: Vec<usize> = (0..self.nodes.len()).rev().collect();
        let mut region_mask = vec![false; n];
        let mut scratch = SsspScratch::new();
        for &id in &order {
            if self.nodes[id].children.is_empty() {
                // Leaf: full pairwise within-region distances.
                let vertices = self.nodes[id].vertices.clone();
                for &v in &vertices {
                    region_mask[v as usize] = true;
                }
                let ub_index: HashMap<RoadVertexId, usize> =
                    vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                let size = vertices.len();
                let mut matrix = vec![f64::INFINITY; size * size];
                for (i, &v) in vertices.iter().enumerate() {
                    let dists = scratch.run(net, &[(v, 0.0)], None, Some(&region_mask));
                    for (j, &u) in vertices.iter().enumerate() {
                        matrix[i * size + j] = dists[u as usize];
                    }
                }
                for &v in &vertices {
                    region_mask[v as usize] = false;
                }
                let node = &mut self.nodes[id];
                node.union_borders = vertices;
                node.ub_index = ub_index;
                node.matrix = matrix;
            } else {
                // Internal node: reduced border graph over children's borders.
                let children = self.nodes[id].children.clone();
                let mut union_borders: Vec<RoadVertexId> = Vec::new();
                let mut child_of: HashMap<RoadVertexId, usize> = HashMap::new();
                for (ci, &c) in children.iter().enumerate() {
                    for &b in &self.nodes[c].borders {
                        if !child_of.contains_key(&b) {
                            union_borders.push(b);
                        }
                        child_of.insert(b, ci);
                    }
                }
                let ub_index: HashMap<RoadVertexId, usize> = union_borders
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i))
                    .collect();
                let size = union_borders.len();
                // adjacency of the reduced graph
                let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); size];
                // (a) intra-child shortcuts from the child's matrix
                for &c in &children {
                    let child = &self.nodes[c];
                    for (i, &bi) in child.borders.iter().enumerate() {
                        for &bj in child.borders.iter().skip(i + 1) {
                            let d = child.matrix_at(child.ub_index[&bi], child.ub_index[&bj]);
                            if d.is_finite() {
                                let a = ub_index[&bi];
                                let b = ub_index[&bj];
                                adj[a].push((b, d));
                                adj[b].push((a, d));
                            }
                        }
                    }
                }
                // (b) original road edges crossing between children
                for &b in &union_borders {
                    for &(u, w) in net.neighbors(b) {
                        if let (Some(&cb), Some(&cu)) = (child_of.get(&b), child_of.get(&u)) {
                            if cb != cu {
                                adj[ub_index[&b]].push((ub_index[&u], w));
                            }
                        }
                    }
                }
                // Dijkstra on the reduced graph from every union border.
                let mut matrix = vec![f64::INFINITY; size * size];
                for s in 0..size {
                    let row = reduced_dijkstra(&adj, s);
                    matrix[s * size..(s + 1) * size].copy_from_slice(&row);
                }
                let node = &mut self.nodes[id];
                node.union_borders = union_borders;
                node.ub_index = ub_index;
                node.matrix = matrix;
            }
        }
    }
}

/// Dijkstra over the small reduced border graph.
fn reduced_dijkstra(adj: &[Vec<(usize, f64)>], source: usize) -> Vec<f64> {
    use std::cmp::Reverse;
    let n = adj.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: std::collections::BinaryHeap<Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((key, v))) = heap.pop() {
        let d = f64::from_bits(key);
        if d > dist[v] {
            continue;
        }
        for &(u, w) in &adj[v] {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd.to_bits(), u)));
            }
        }
    }
    dist
}

/// Splits a vertex set into two balanced halves by growing BFS regions from
/// two far-apart seeds. Disconnected leftovers are appended to the smaller
/// half; a degenerate split falls back to halving the list.
fn bisect(net: &RoadNetwork, vertices: &[RoadVertexId]) -> (Vec<RoadVertexId>, Vec<RoadVertexId>) {
    use std::collections::VecDeque;
    let set: HashMap<RoadVertexId, ()> = vertices.iter().map(|&v| (v, ())).collect();
    let in_set = |v: RoadVertexId| set.contains_key(&v);

    // seed 1: BFS-farthest vertex from vertices[0]; seed 2: farthest from seed 1
    let farthest_from = |start: RoadVertexId| -> RoadVertexId {
        let mut seen: HashMap<RoadVertexId, ()> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(start, ());
        queue.push_back(start);
        let mut last = start;
        while let Some(v) = queue.pop_front() {
            last = v;
            for &(u, _) in net.neighbors(v) {
                if in_set(u) && !seen.contains_key(&u) {
                    seen.insert(u, ());
                    queue.push_back(u);
                }
            }
        }
        last
    };
    let s1 = farthest_from(vertices[0]);
    let s2 = farthest_from(s1);
    if s1 == s2 {
        let mid = vertices.len() / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }

    let mut owner: HashMap<RoadVertexId, u8> = HashMap::new();
    let mut q1 = VecDeque::new();
    let mut q2 = VecDeque::new();
    owner.insert(s1, 1);
    owner.insert(s2, 2);
    q1.push_back(s1);
    q2.push_back(s2);
    let half = vertices.len().div_ceil(2);
    let mut count1 = 1usize;
    loop {
        let mut progressed = false;
        if count1 < half {
            if let Some(v) = q1.pop_front() {
                progressed = true;
                for &(u, _) in net.neighbors(v) {
                    if in_set(u) && !owner.contains_key(&u) && count1 < half {
                        owner.insert(u, 1);
                        count1 += 1;
                        q1.push_back(u);
                    }
                }
            }
        }
        if let Some(v) = q2.pop_front() {
            progressed = true;
            for &(u, _) in net.neighbors(v) {
                if in_set(u) && !owner.contains_key(&u) {
                    owner.insert(u, 2);
                    q2.push_back(u);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &v in vertices {
        match owner.get(&v) {
            Some(1) => left.push(v),
            Some(2) => right.push(v),
            _ => {
                // unreachable leftovers (disconnected part): balance
                if left.len() <= right.len() {
                    left.push(v);
                } else {
                    right.push(v);
                }
            }
        }
    }
    if left.is_empty() || right.is_empty() {
        let mid = vertices.len() / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::sssp;
    use crate::network::RoadNetwork;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    #[test]
    fn single_leaf_tree_matches_dijkstra() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 16);
        assert_eq!(tree.num_nodes(), 1);
        let d0 = sssp(&net, 0);
        for v in 0..9u32 {
            assert!((tree.dist(0, v) - d0[v as usize]).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_level_tree_matches_dijkstra() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        assert!(tree.num_nodes() > 3);
        assert!(tree.height() >= 3);
        for s in [0u32, 7, 17, 35] {
            let d = sssp(&net, s);
            for v in 0..36u32 {
                assert!(
                    (tree.dist(s, v) - d[v as usize]).abs() < 1e-9,
                    "mismatch for {s}->{v}: gtree {} dijkstra {}",
                    tree.dist(s, v),
                    d[v as usize]
                );
            }
        }
    }

    #[test]
    fn leaf_regions_partition_vertices() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 5);
        let mut seen = [false; 25];
        for region in tree.leaf_regions() {
            assert!(region.len() <= 5);
            for v in region {
                assert!(!seen[v as usize], "vertex {v} in two leaves");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn disconnected_components_are_infinite() {
        let net = RoadNetwork::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let tree = GTree::build_with_capacity(&net, 4);
        assert!(tree.dist(0, 5).is_infinite());
        assert!((tree.dist(0, 2) - 2.0).abs() < 1e-9);
        assert!((tree.dist(3, 5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dist_identity_and_out_of_range() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 4);
        assert_eq!(tree.dist(4, 4), 0.0);
        assert!(tree.dist(0, 99).is_infinite());
    }

    #[test]
    fn memory_accounting_positive() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 4);
        assert!(tree.memory_bytes() > 0);
    }

    /// Runs the batched walk from one source over every vertex as a target.
    fn batched_from(tree: &GTree, n: usize, source: RoadVertexId, prune_at: f64) -> Vec<f64> {
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        assert_eq!(targets.num_seeds(), n);
        let mut best = vec![f64::INFINITY; n];
        let mut scratch = RangeScratch::default();
        tree.accumulate_source_distances(source, 0.0, &targets, prune_at, &mut best, &mut scratch);
        best
    }

    #[test]
    fn batched_walk_matches_point_queries_exactly() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        for s in [0u32, 7, 17, 35] {
            let best = batched_from(&tree, 36, s, f64::INFINITY);
            for v in 0..36u32 {
                let expect = tree.dist(s, v);
                assert!(
                    (best[v as usize] - expect).abs() < 1e-9,
                    "batched {s}->{v}: got {} expected {expect}",
                    best[v as usize]
                );
            }
        }
    }

    #[test]
    fn batched_walk_pruning_is_sound() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let t = 3.0;
        for s in [0u32, 17, 35] {
            let pruned = batched_from(&tree, 36, s, t);
            for v in 0..36u32 {
                let exact = tree.dist(s, v);
                if exact <= t {
                    assert!(
                        (pruned[v as usize] - exact).abs() < 1e-9,
                        "pruned walk lost an in-range target {s}->{v}"
                    );
                } else {
                    assert!(
                        pruned[v as usize] > t,
                        "pruned walk reported {} <= t for out-of-range {s}->{v}",
                        pruned[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn batched_walk_respects_offsets_and_lowers_only() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let targets = tree.group_targets([(0u32, 5u32, 0.25), (1, 10, 1.5)]);
        let mut best = vec![0.1, f64::INFINITY];
        let mut scratch = RangeScratch::default();
        tree.accumulate_source_distances(0, 0.5, &targets, f64::INFINITY, &mut best, &mut scratch);
        // item 0 already had a better candidate than 0.5 + dist + 0.25
        assert_eq!(best[0], 0.1);
        assert!((best[1] - (0.5 + tree.dist(0, 10) + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn batched_walk_on_disconnected_components() {
        let net = RoadNetwork::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let tree = GTree::build_with_capacity(&net, 4);
        let best = batched_from(&tree, 6, 0, f64::INFINITY);
        assert!((best[2] - 2.0).abs() < 1e-9);
        assert!(best[4].is_infinite() && best[5].is_infinite());
    }

    #[test]
    fn randomized_batched_agreement_with_point_queries() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(21);
        for round in 0..8 {
            let n = rng.random_range(20..90usize);
            let mut edges = Vec::new();
            for v in 0..n as u32 {
                edges.push((v, (v + 1) % n as u32, rng.random_range(1.0..5.0)));
            }
            for _ in 0..n {
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                edges.push((u, v, rng.random_range(1.0..10.0)));
            }
            let net = RoadNetwork::from_edges(n, &edges);
            let tree = GTree::build_with_capacity(&net, rng.random_range(4..12));
            let s = rng.random_range(0..n as u32);
            let best = batched_from(&tree, n, s, f64::INFINITY);
            for v in 0..n as u32 {
                let expect = tree.dist(s, v);
                assert!(
                    (best[v as usize] - expect).abs() < 1e-9,
                    "round {round}: batched {s}->{v} got {} expected {expect}",
                    best[v as usize]
                );
            }
        }
    }

    #[test]
    fn randomized_agreement_with_dijkstra() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60usize;
        let mut edges = Vec::new();
        // random connected-ish sparse graph: a ring plus chords
        for v in 0..n as u32 {
            edges.push((v, (v + 1) % n as u32, rng.random_range(1.0..5.0)));
        }
        for _ in 0..40 {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            edges.push((u, v, rng.random_range(1.0..10.0)));
        }
        let net = RoadNetwork::from_edges(n, &edges);
        let tree = GTree::build_with_capacity(&net, 8);
        for _ in 0..30 {
            let s = rng.random_range(0..n as u32);
            let t = rng.random_range(0..n as u32);
            let d = sssp(&net, s);
            assert!(
                (tree.dist(s, t) - d[t as usize]).abs() < 1e-9,
                "mismatch {s}->{t}: gtree {} dijkstra {}",
                tree.dist(s, t),
                d[t as usize]
            );
        }
    }
}

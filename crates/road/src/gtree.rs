//! A hierarchical graph-partition index over the road network, in the spirit
//! of the G-tree of Zhong et al. (TKDE 2015), which the paper uses to
//! accelerate the road-network range query of Lemma 1.
//!
//! The index partitions the road network into nested regions with a multiway
//! split (fanout [`DEFAULT_FANOUT`], built from repeated balanced bisection
//! rounds — fanout 2 reproduces the historical binary tree exactly, kept as
//! the test reference via [`GTree::build_binary_reference`]). Every leaf
//! stores the pairwise shortest distances *within its region*; every internal
//! node stores the pairwise within-region distances between the borders of
//! its children, assembled bottom-up over a reduced "border graph" whose
//! intra-child clique edges are **contracted** first: a child shortcut is
//! dropped whenever a strictly shorter two-hop witness through another border
//! of the same child already covers it, which keeps the reduced Dijkstras
//! exact while shrinking the quadratic clique to near-linear size on
//! grid-like cuts. Matrix fills run level-by-level on a scoped thread pool
//! with row-granular work stealing (deterministic output regardless of
//! thread count). Point-to-point queries combine the per-level matrices with
//! a dynamic program over the ancestor chain; taking the minimum over
//! **all** common ancestors (not only the LCA) makes the answer exact even
//! when the true shortest path leaves the LCA's region. Exactness against
//! Dijkstra is enforced by the property tests of this module.

use crate::budget::BudgetTicker;
use crate::dijkstra::SsspScratch;
use crate::network::{EdgeUpdate, RoadNetwork, RoadVertexId};
use std::collections::HashMap;
use std::sync::Arc;

/// Default maximum number of vertices per leaf region.
pub const DEFAULT_LEAF_CAPACITY: usize = 32;

/// Default partition fanout: each over-capacity region splits into up to this
/// many children per level (two balanced-bisection rounds). Powers of two
/// keep the rounds balanced; fanout 2 is the historical binary tree.
pub const DEFAULT_FANOUT: usize = 4;

/// Regions above `leaf_capacity * SPINE_FACTOR` vertices split binary even
/// under a larger fanout, so top-of-tree matrices stay one cut wide instead
/// of unioning the borders of `fanout` huge parts (see [`GTree::partition`]).
const SPINE_FACTOR: usize = 32;

/// Below this many total matrix rows a build level is filled serially — the
/// scoped-thread dispatch overhead outweighs the work.
const PARALLEL_ROW_THRESHOLD: usize = 256;

#[derive(Debug, Clone)]
struct GTreeNode {
    parent: Option<usize>,
    children: Vec<usize>,
    /// Vertices of this node's region.
    vertices: Vec<RoadVertexId>,
    /// Vertices of the region with at least one road edge leaving the region.
    borders: Vec<RoadVertexId>,
    /// Matrix index space: all region vertices for leaves, the union of the
    /// children's borders for internal nodes.
    union_borders: Vec<RoadVertexId>,
    /// Position of a vertex inside `union_borders`. Retained for construction
    /// and as the reference the precomputed index arrays are validated
    /// against; the query hot loops never touch it.
    ub_index: HashMap<RoadVertexId, usize>,
    /// `border_rows[i]` = position of `borders[i]` inside `union_borders`,
    /// precomputed at build time so matrix access is pure slice indexing.
    border_rows: Vec<usize>,
    /// `child_border_rows[k][i]` = position of child `k`'s `borders[i]`
    /// inside this node's `union_borders` (every child border is a union
    /// border by construction).
    child_border_rows: Vec<Vec<usize>>,
    /// Row-major `|union_borders| x |union_borders|` within-region distances.
    matrix: Vec<f64>,
    /// Update-path cache of each child's contracted border clique (edge list
    /// in union-border row coordinates, both directions). Populated lazily by
    /// the first incremental refresh and invalidated per child when that
    /// child's border-to-border distances change, so steady-state traffic
    /// batches skip re-contracting untouched children. Never read at build or
    /// query time.
    contracted_children: Vec<Option<Vec<(u32, u32, f64)>>>,
}

impl GTreeNode {
    fn matrix_at(&self, i: usize, j: usize) -> f64 {
        self.matrix[i * self.union_borders.len() + j]
    }
}

/// Hierarchical road-network distance index.
#[derive(Debug, Clone)]
pub struct GTree {
    nodes: Vec<GTreeNode>,
    leaf_of: Vec<usize>,
    /// `leaf_pos[v]` = position of vertex `v` inside its leaf's
    /// `union_borders` (leaf matrix row), precomputed so leaf evaluation
    /// never hashes.
    leaf_pos: Vec<u32>,
    root: usize,
    num_vertices: usize,
}

/// Precomputed source side of a point query: the ancestor chain of the
/// source's leaf and the distance vectors from the source to the borders of
/// every node on that chain.
///
/// Query-distance evaluation probes the same few source locations (the query
/// users) against many targets; sharing this state across targets halves the
/// per-query work and removes the per-call source-side allocations.
#[derive(Debug, Clone)]
pub struct SourceState {
    vertex: RoadVertexId,
    leaf: usize,
    /// Ancestor chain from the source's leaf (inclusive) to the root.
    path: Vec<usize>,
    /// `vecs[i]` = distances from the source to the borders of `path[i]`,
    /// computed within that node's region.
    vecs: Vec<Vec<f64>>,
    /// Position of each chain node within `path`.
    on_path: HashMap<usize, usize>,
}

impl SourceState {
    /// The source road vertex.
    pub fn vertex(&self) -> RoadVertexId {
        self.vertex
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.path.len() * std::mem::size_of::<usize>()
            + self
                .vecs
                .iter()
                .map(|v| v.len() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self.on_path.len() * 2 * std::mem::size_of::<usize>()
    }
}

/// Target seeds of a batched one-to-many evaluation, grouped by G-tree leaf.
///
/// Built once per query via [`GTree::group_targets`] and shared by every
/// source seed; `occupied` lets the walk skip subtrees containing no target.
/// Each grouped seed carries its **leaf matrix row** (the vertex's position in
/// the leaf's matrix index space, resolved at grouping time), so the leaf
/// evaluation inner loop indexes the distance matrix directly without any
/// hashing.
///
/// Per-leaf rows live behind [`Arc`]s so that cloning a grouping (the serving
/// engine snapshots one per epoch) shares every row, and an incremental edit
/// ([`GTree::add_target_seeds`] / [`GTree::remove_target_item`]) copies only
/// the touched leaves — a small user-churn delta no longer duplicates the
/// whole grouping.
#[derive(Debug, Clone)]
pub struct LeafTargets {
    /// `per_leaf[node]` = `(item, leaf matrix row, offset)` seeds in that leaf.
    per_leaf: Vec<Arc<Vec<(u32, u32, f64)>>>,
    /// `occupied[node]` = number of seeds in the node's subtree.
    occupied: Vec<u32>,
}

impl LeafTargets {
    /// Total number of grouped seeds.
    pub fn num_seeds(&self) -> usize {
        self.per_leaf.iter().map(|v| v.len()).sum()
    }
}

/// What [`GTree::apply_edge_updates`] recomputed: the dirty set starts at
/// the nodes whose region contains both endpoints of a reweighted edge (the
/// containing leaf when the endpoints share one, otherwise the leaves'
/// lowest common ancestor) and climbs toward the root only while a
/// recomputed matrix **actually changed** — everything else keeps its
/// matrices untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GTreeUpdateStats {
    /// Number of edge updates applied.
    pub updates: usize,
    /// Leaf nodes whose within-region matrix was recomputed.
    pub dirty_leaves: usize,
    /// Internal nodes whose border matrix was recomputed.
    pub dirty_internal: usize,
    /// Total matrix cells rewritten.
    pub recomputed_matrix_cells: usize,
    /// Total nodes in the tree (for dirty-fraction reporting).
    pub total_nodes: usize,
    /// Matrix rows refreshed by a reduced-graph Dijkstra (sources whose
    /// neighborhood actually changed, plus the unsafe patch candidates).
    pub row_dijkstras: usize,
    /// Matrix rows refreshed by the cheap delta patch instead of a Dijkstra.
    pub patched_rows: usize,
}

impl GTreeUpdateStats {
    /// Fraction of tree nodes that were recomputed.
    pub fn dirty_fraction(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            (self.dirty_leaves + self.dirty_internal) as f64 / self.total_nodes as f64
        }
    }
}

/// Reusable buffers for the batched walks
/// ([`GTree::accumulate_source_distances`] and
/// [`GTree::accumulate_multi_source_distances`]): the per-node entry columns —
/// the walk's large allocations — plus the small per-seed locals are all
/// recycled across walks and queries, so the hot path allocates nothing
/// beyond the per-query source climbs.
#[derive(Debug, Default)]
pub struct RangeScratch {
    /// `entry[node]` = flat `|borders| x |seeds|` matrix: exact distance from
    /// seed `s` to the node's `borders[i]` over paths whose final segment
    /// stays inside the node, at `entry[node][i * seeds + s]`.
    entry: Vec<Vec<f64>>,
    /// Per-seed minimum entry distance of the child being considered.
    seed_min: Vec<f64>,
    /// Per-seed distance accumulator for one leaf target.
    seed_dist: Vec<f64>,
}

/// One precomputed source seed of a multi-seed walk: the seed's ancestor
/// chain and climb vectors, plus which output column its candidates lower.
#[derive(Debug)]
struct SeedClimb {
    vertex: RoadVertexId,
    offset: f64,
    column: u32,
    /// Ancestor chain from the seed's leaf (inclusive) to the root.
    path: Vec<usize>,
    /// `vecs[i]` = distances from the seed to the borders of `path[i]`,
    /// computed within that node's region.
    vecs: Vec<Vec<f64>>,
}

impl GTree {
    /// Builds the index with the default leaf capacity and fanout.
    pub fn build(net: &RoadNetwork) -> Self {
        Self::build_with_capacity(net, DEFAULT_LEAF_CAPACITY)
    }

    /// Builds the index with an explicit leaf capacity (minimum 4) and the
    /// default fanout.
    pub fn build_with_capacity(net: &RoadNetwork, leaf_capacity: usize) -> Self {
        Self::build_with_params(net, leaf_capacity, DEFAULT_FANOUT)
    }

    /// Builds the historical binary-bisection tree (fanout 2). The multiway
    /// split degenerates to exactly the old recursive bisection — same node
    /// ordering, same regions, same matrices — so this is the reference the
    /// multiway build is asserted query-identical against in tests and
    /// benchmarks.
    pub fn build_binary_reference(net: &RoadNetwork, leaf_capacity: usize) -> Self {
        Self::build_with_params(net, leaf_capacity, 2)
    }

    /// Builds the index with an explicit leaf capacity (minimum 4) and
    /// partition fanout (clamped to `2..=64`; powers of two keep the
    /// bisection rounds balanced).
    pub fn build_with_params(net: &RoadNetwork, leaf_capacity: usize, fanout: usize) -> Self {
        let leaf_capacity = leaf_capacity.max(4);
        let fanout = fanout.clamp(2, 64);
        let n = net.num_vertices();
        let mut tree = GTree {
            nodes: Vec::new(),
            leaf_of: vec![usize::MAX; n],
            leaf_pos: vec![0; n],
            root: 0,
            num_vertices: n,
        };
        let all: Vec<RoadVertexId> = (0..n as u32).collect();
        if n == 0 {
            tree.nodes.push(GTreeNode {
                parent: None,
                children: Vec::new(),
                vertices: Vec::new(),
                borders: Vec::new(),
                union_borders: Vec::new(),
                ub_index: HashMap::new(),
                border_rows: Vec::new(),
                child_border_rows: Vec::new(),
                matrix: Vec::new(),
                contracted_children: Vec::new(),
            });
            return tree;
        }
        tree.root = tree.partition(net, all, None, leaf_capacity, fanout);
        tree.compute_borders(net);
        tree.compute_matrices(net);
        tree.precompute_index_rows();
        tree
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (a single leaf tree has height 1).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[GTreeNode], i: usize) -> usize {
            1 + nodes[i]
                .children
                .iter()
                .map(|&c| depth(nodes, c))
                .max()
                .unwrap_or(0)
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth(&self.nodes, self.root)
        }
    }

    /// Approximate memory footprint of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|node| {
                node.matrix.len() * std::mem::size_of::<f64>()
                    + (node.vertices.len() + node.borders.len() + node.union_borders.len())
                        * std::mem::size_of::<RoadVertexId>()
                    + node.ub_index.len() * 2 * std::mem::size_of::<usize>()
                    + (node.border_rows.len()
                        + node.child_border_rows.iter().map(Vec::len).sum::<usize>())
                        * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + self.leaf_pos.len() * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Entry-extension cells one walk touches at one internal node:
    /// `(|node borders| + |chain-child borders|) x Σ |child borders|`
    /// (zero for leaves).
    fn node_walk_cells(&self, id: usize) -> usize {
        let n = &self.nodes[id];
        let child_borders: usize = n
            .children
            .iter()
            .map(|&c| self.nodes[c].borders.len())
            .sum();
        let max_child = n
            .children
            .iter()
            .map(|&c| self.nodes[c].borders.len())
            .max()
            .unwrap_or(0);
        (n.borders.len() + max_child) * child_borders
    }

    /// Entry-extension cells of a full unpruned walk, per seed: the sum of
    /// the per-node walk cells over all internal nodes —
    /// an occupancy-independent upper bound and an `Auto` calibration input.
    pub fn walk_cells_total(&self) -> usize {
        (0..self.nodes.len())
            .map(|id| self.node_walk_cells(id))
            .sum()
    }

    /// Entry-extension cells touched at the top of the tree (the root's
    /// children) — every walk pays this regardless of occupancy, so it is
    /// the walk's fixed overhead floor; an `Auto` calibration input.
    pub fn walk_cells_root(&self) -> usize {
        self.node_walk_cells(self.root)
    }

    /// Root node id.
    pub fn root_id(&self) -> usize {
        self.root
    }

    /// Parent of a node (`None` for the root).
    pub fn parent_of(&self, id: usize) -> Option<usize> {
        self.nodes[id].parent
    }

    /// Children of a node (empty for leaves).
    pub fn children_of(&self, id: usize) -> &[usize] {
        &self.nodes[id].children
    }

    /// Region vertices of a node.
    pub fn vertices_of(&self, id: usize) -> &[RoadVertexId] {
        &self.nodes[id].vertices
    }

    /// Border vertices of a node (region vertices with an edge leaving the
    /// region).
    pub fn borders_of(&self, id: usize) -> &[RoadVertexId] {
        &self.nodes[id].borders
    }

    /// Matrix index space of a node: all region vertices for leaves, the
    /// union of the children's borders for internal nodes.
    pub fn union_borders_of(&self, id: usize) -> &[RoadVertexId] {
        &self.nodes[id].union_borders
    }

    /// Precomputed positions of [`borders_of`](Self::borders_of) inside
    /// [`union_borders_of`](Self::union_borders_of).
    pub fn border_rows_of(&self, id: usize) -> &[usize] {
        &self.nodes[id].border_rows
    }

    /// Precomputed positions of child `k`'s borders inside this node's
    /// union borders.
    pub fn child_border_rows_of(&self, id: usize, k: usize) -> &[usize] {
        &self.nodes[id].child_border_rows[k]
    }

    /// Position of a vertex inside a node's union borders, answered from the
    /// build-time hash map (the reference the precomputed arrays round-trip
    /// against in the structural property tests).
    pub fn ub_position_of(&self, id: usize, v: RoadVertexId) -> Option<usize> {
        self.nodes[id].ub_index.get(&v).copied()
    }

    /// Within-region distance between two union borders of a node.
    pub fn matrix_entry(&self, id: usize, i: usize, j: usize) -> f64 {
        self.nodes[id].matrix_at(i, j)
    }

    /// Leaf node containing a road vertex.
    pub fn leaf_id_of(&self, v: RoadVertexId) -> usize {
        self.leaf_of[v as usize]
    }

    /// Precomputed position of a vertex inside its leaf's matrix index space.
    pub fn leaf_position_of(&self, v: RoadVertexId) -> usize {
        self.leaf_pos[v as usize] as usize
    }

    /// Exact shortest-path distance between two road vertices.
    pub fn dist(&self, u: RoadVertexId, v: RoadVertexId) -> f64 {
        match self.source_state(u) {
            Some(state) => self.dist_from_source(&state, v),
            None => f64::INFINITY,
        }
    }

    /// Precomputes the source-side climb for `u` so that many point queries
    /// from the same source (the query users of the MAC range filter) share
    /// the ancestor chain and border-distance vectors instead of recomputing
    /// them per target. Returns `None` for an out-of-range vertex.
    pub fn source_state(&self, u: RoadVertexId) -> Option<SourceState> {
        if u as usize >= self.num_vertices {
            return None;
        }
        let leaf = self.leaf_of[u as usize];
        let path = self.ancestor_chain(leaf);
        let vecs = self.climb(u, &path);
        let on_path = path.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Some(SourceState {
            vertex: u,
            leaf,
            path,
            vecs,
            on_path,
        })
    }

    /// Exact distance from a precomputed source state to `v` (equals
    /// `self.dist(state.vertex(), v)`).
    pub fn dist_from_source(&self, state: &SourceState, v: RoadVertexId) -> f64 {
        let u = state.vertex;
        if v as usize >= self.num_vertices {
            return f64::INFINITY;
        }
        if u == v {
            return 0.0;
        }
        let leaf_u = state.leaf;
        let leaf_v = self.leaf_of[v as usize];

        let mut best = f64::INFINITY;
        if leaf_u == leaf_v {
            let node = &self.nodes[leaf_u];
            let iu = self.leaf_pos[u as usize] as usize;
            let iv = self.leaf_pos[v as usize] as usize;
            best = node.matrix_at(iu, iv);
        }

        // Ancestor chains from leaf to root.
        let path_u = &state.path;
        let path_v = self.ancestor_chain(leaf_v);

        // Distance vectors from u (resp. v) to the borders of each node on its
        // ancestor chain, computed within that node's region.
        let a_vecs = &state.vecs;
        let b_vecs = self.climb(v, &path_v);

        // Combine at every common ancestor: the true path crosses the borders
        // of the two children of the lowest ancestor whose region it stays in.
        // A leaf of one chain can only appear on the other chain when the two
        // leaves coincide (handled above), so both chain positions are >= 1
        // in the active branch and the chain children are real children of
        // `w`, addressable through the precomputed border-row arrays.
        let set_u = &state.on_path;
        for (vi, &w) in path_v.iter().enumerate() {
            let Some(&ui) = set_u.get(&w) else { continue };
            if ui == 0 || vi == 0 {
                // same leaf: already handled via the leaf matrix
                continue;
            }
            let cu = path_u[ui - 1];
            let cv = path_v[vi - 1];
            let wn = &self.nodes[w];
            let ub = wn.union_borders.len();
            let cu_pos = wn
                .children
                .iter()
                .position(|&c| c == cu)
                .expect("chain child of u");
            let cv_pos = wn
                .children
                .iter()
                .position(|&c| c == cv)
                .expect("chain child of v");
            let au = &a_vecs[ui - 1];
            let bv = &b_vecs[vi - 1];
            for (&wx, &ax) in wn.child_border_rows[cu_pos].iter().zip(au) {
                if !ax.is_finite() {
                    continue;
                }
                let mrow = &wn.matrix[wx * ub..(wx + 1) * ub];
                for (&wy, &by) in wn.child_border_rows[cv_pos].iter().zip(bv) {
                    let cand = ax + mrow[wy] + by;
                    if cand < best {
                        best = cand;
                    }
                }
            }
        }
        best
    }

    /// Vertices grouped by leaf region (used by tests and diagnostics).
    pub fn leaf_regions(&self) -> Vec<Vec<RoadVertexId>> {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty())
            .map(|n| n.vertices.clone())
            .collect()
    }

    /// Groups target seeds `(item, vertex, offset)` by the leaf containing the
    /// vertex and records per-subtree occupancy, so that batched evaluation
    /// ([`accumulate_source_distances`](Self::accumulate_source_distances))
    /// can skip empty subtrees entirely. The vertex is resolved to its leaf
    /// matrix row here, once, so the leaf evaluation never hashes. Seeds with
    /// out-of-range vertices are dropped.
    pub fn group_targets<I>(&self, seeds: I) -> LeafTargets
    where
        I: IntoIterator<Item = (u32, RoadVertexId, f64)>,
    {
        let mut targets = LeafTargets {
            // Per-element construction: `vec![Arc::new(..); n]` would clone
            // one shared Arc, making every later edit copy-on-write eagerly.
            per_leaf: (0..self.nodes.len())
                .map(|_| Arc::new(Vec::new()))
                .collect(),
            occupied: vec![0u32; self.nodes.len()],
        };
        self.add_target_seeds(&mut targets, seeds);
        targets
    }

    /// Adds target seeds to an existing grouping (the incremental counterpart
    /// of [`group_targets`](Self::group_targets), same semantics per seed):
    /// each seed lands in its vertex's leaf with its precomputed leaf matrix
    /// row, and the subtree occupancy counts along the leaf-to-root path are
    /// raised. Seeds with out-of-range vertices are dropped.
    pub fn add_target_seeds<I>(&self, targets: &mut LeafTargets, seeds: I)
    where
        I: IntoIterator<Item = (u32, RoadVertexId, f64)>,
    {
        for (item, v, off) in seeds {
            if v as usize >= self.num_vertices {
                continue;
            }
            let leaf = self.leaf_of[v as usize];
            Arc::make_mut(&mut targets.per_leaf[leaf]).push((item, self.leaf_pos[v as usize], off));
            targets.occupied[leaf] += 1;
            let mut cur = leaf;
            while let Some(p) = self.nodes[cur].parent {
                targets.occupied[p] += 1;
                cur = p;
            }
        }
    }

    /// Removes **every** grouped seed of `item` from the leaves containing
    /// `seed_vertices` (an item's seeds live only in the leaves of its
    /// location's endpoints, so passing those endpoints clears the item), and
    /// lowers the occupancy counts along the affected leaf-to-root paths.
    /// Returns the number of seeds removed.
    pub fn remove_target_item(
        &self,
        targets: &mut LeafTargets,
        item: u32,
        seed_vertices: &[RoadVertexId],
    ) -> usize {
        let mut total = 0usize;
        // Dedup the vertices' leaves so a same-leaf pair (the common case: a
        // location's two endpoints) is cleared — and decremented — once.
        let mut cleared: Vec<usize> = Vec::with_capacity(seed_vertices.len().min(2));
        for &v in seed_vertices {
            if v as usize >= self.num_vertices {
                continue;
            }
            let leaf = self.leaf_of[v as usize];
            if cleared.contains(&leaf) {
                continue;
            }
            cleared.push(leaf);
            // Only touch the Arc when the item is actually present, so clones
            // of untouched leaves stay shared.
            let before = targets.per_leaf[leaf].len();
            if !targets.per_leaf[leaf].iter().any(|&(it, _, _)| it == item) {
                continue;
            }
            Arc::make_mut(&mut targets.per_leaf[leaf]).retain(|&(it, _, _)| it != item);
            let removed = (before - targets.per_leaf[leaf].len()) as u32;
            if removed > 0 {
                targets.occupied[leaf] -= removed;
                let mut cur = leaf;
                while let Some(p) = self.nodes[cur].parent {
                    targets.occupied[p] -= removed;
                    cur = p;
                }
                total += removed as usize;
            }
        }
        total
    }

    /// Incrementally refreshes the distance matrices after a batch of edge
    /// **reweights**, instead of rebuilding the tree.
    ///
    /// `net` must be the updated road network: identical topology to the one
    /// the tree was built from (the partition hierarchy, border sets, and
    /// leaf assignment depend only on the adjacency structure, so they remain
    /// valid), with the new weights already applied
    /// ([`RoadNetwork::apply_edge_updates`]).
    ///
    /// A reweighted edge `(u, v)` can only change the matrices of nodes whose
    /// region contains **both** endpoints: the shared leaf when
    /// `leaf(u) == leaf(v)`, otherwise the lowest common ancestor of the two
    /// leaves (where the edge appears as a cross-child edge of the reduced
    /// border graph). From there the change propagates upward **only while it
    /// is observable**: a node's matrix depends on exactly its children's
    /// matrices and the cross-child edge weights at its own level, so a
    /// parent is recomputed only when a reweighted edge lives at its level or
    /// a child's recomputed matrix actually changed (recomputation is
    /// deterministic, so "changed" is an exact slice comparison). A reweight
    /// that leaves the local border-to-border distances intact — the common
    /// case for modest traffic factors on non-critical segments — stops dead
    /// instead of dragging the top-of-tree reduced-graph Dijkstras along.
    ///
    /// Recomputed internal nodes are refreshed **delta-aware**
    /// (`refresh_internal_matrix`): only
    /// sources whose reduced-graph neighborhood actually changed — borders of
    /// changed children and endpoints of level-local reweights — pay a fresh
    /// Dijkstra; the remaining rows are patched from the old matrix plus the
    /// fresh rows whenever that is provably exact, so traffic batches stop
    /// paying the full top-of-tree cost. Everything else is untouched;
    /// out-of-range endpoints are ignored (the paired [`RoadNetwork`]
    /// mutation already rejected them).
    pub fn apply_edge_updates(
        &mut self,
        net: &RoadNetwork,
        updates: &[EdgeUpdate],
    ) -> GTreeUpdateStats {
        let mut stats = GTreeUpdateStats {
            updates: updates.len(),
            total_nodes: self.nodes.len(),
            ..GTreeUpdateStats::default()
        };
        if self.nodes.is_empty() || self.num_vertices == 0 {
            return stats;
        }
        debug_assert_eq!(net.num_vertices(), self.num_vertices);
        // `source_dirty[id]`: a reweighted edge lives at this node's level.
        // `level_touched[id]`: the endpoints of those cross-child edges (both
        // are union borders of `id`), seeding the changed-source set.
        let mut source_dirty = vec![false; self.nodes.len()];
        let mut level_touched: HashMap<usize, Vec<RoadVertexId>> = HashMap::new();
        for upd in updates {
            if upd.u as usize >= self.num_vertices || upd.v as usize >= self.num_vertices {
                continue;
            }
            let lu = self.leaf_of[upd.u as usize];
            let lv = self.leaf_of[upd.v as usize];
            let from = if lu == lv {
                lu
            } else {
                self.lowest_common_ancestor(lu, lv)
            };
            source_dirty[from] = true;
            if lu != lv {
                level_touched
                    .entry(from)
                    .or_default()
                    .extend([upd.u, upd.v]);
            }
        }
        // Reverse creation order visits children before parents, so every
        // recomputed internal matrix reads already-refreshed child matrices
        // and the children's changed-border lists are final before the parent
        // asks. `changed[id]` = `Some(borders whose border-to-border rows
        // changed)` once a node's matrix changed; a change confined to
        // non-border entries (empty list) stops propagating, because parents
        // only observe the border submatrix.
        let mut changed: Vec<Option<Vec<RoadVertexId>>> = vec![None; self.nodes.len()];
        let mut region_mask = vec![false; self.num_vertices];
        let mut scratch = SsspScratch::new();
        let no_touched: Vec<RoadVertexId> = Vec::new();
        for id in (0..self.nodes.len()).rev() {
            let recompute = source_dirty[id]
                || self.nodes[id]
                    .children
                    .iter()
                    .any(|&c| changed[c].as_ref().is_some_and(|l| !l.is_empty()));
            if !recompute {
                continue;
            }
            if self.nodes[id].children.is_empty() {
                let old_sub = self.border_submatrix(id);
                let chg = self.fill_leaf_matrix(net, id, &mut region_mask, &mut scratch);
                changed[id] = chg.then(|| self.changed_borders_since(id, &old_sub));
                stats.dirty_leaves += 1;
                stats.recomputed_matrix_cells += self.nodes[id].matrix.len();
                stats.row_dijkstras += self.nodes[id].union_borders.len();
            } else {
                let touched = level_touched
                    .get(&id)
                    .map_or(no_touched.as_slice(), Vec::as_slice);
                let (report, dijkstra_rows, patched_rows) =
                    self.refresh_internal_matrix(net, id, &changed, touched);
                changed[id] = report;
                stats.dirty_internal += 1;
                let size = self.nodes[id].union_borders.len();
                stats.recomputed_matrix_cells += (dijkstra_rows + patched_rows) * size;
                stats.row_dijkstras += dijkstra_rows;
                stats.patched_rows += patched_rows;
            }
        }
        stats
    }

    /// Lowest common ancestor of two nodes (`O(height²)` scan — the chains
    /// are logarithmic and updates are rare next to queries).
    fn lowest_common_ancestor(&self, a: usize, b: usize) -> usize {
        let chain_a = self.ancestor_chain(a);
        let mut cur = b;
        loop {
            if chain_a.contains(&cur) {
                return cur;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return self.root,
            }
        }
    }

    /// Leaf-batched one-to-many evaluation from a **single** source seed: for
    /// every target seed `(item, v, toff)` of `targets`, lowers `best[item]`
    /// to `soff + dist(u, v) + toff` when that candidate is smaller.
    ///
    /// This is the PR-2 per-seed walk, now a thin wrapper over the multi-seed
    /// machinery ([`accumulate_multi_source_distances`](Self::accumulate_multi_source_distances))
    /// with one seed and one output column. It is kept as the unit the
    /// per-seed `GTreeLeafBatched` strategy (and its benchmarks) build on.
    pub fn accumulate_source_distances(
        &self,
        u: RoadVertexId,
        soff: f64,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        scratch: &mut RangeScratch,
    ) {
        self.accumulate_multi_source_distances(
            &[(u, soff, 0)],
            1,
            targets,
            prune_at,
            best,
            scratch,
        );
    }

    /// Budgeted [`accumulate_source_distances`](Self::accumulate_source_distances):
    /// charges the ticker as the walk proceeds (one unit per evaluated leaf
    /// target row and per visited child) and aborts cooperatively on
    /// exhaustion. Returns `true` when the walk completed; on `false` the
    /// lowered `best` entries are valid upper bounds but the evaluation is
    /// incomplete, so the caller must treat the run as failed. The scratch
    /// stays reusable either way.
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_source_distances_budgeted(
        &self,
        u: RoadVertexId,
        soff: f64,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        scratch: &mut RangeScratch,
        ticker: &mut BudgetTicker,
    ) -> bool {
        self.multi_source_walk(
            &[(u, soff, 0)],
            1,
            targets,
            prune_at,
            best,
            None,
            Some(ticker),
            scratch,
        )
    }

    /// Multi-seed leaf-batched evaluation: folds **all** source seeds
    /// `(u, soff, column)` into a single top-down walk. For every target seed
    /// `(item, v, toff)` of `targets` and every source seed, lowers
    /// `best[item * num_columns + column]` to `soff + dist(u, v) + toff` when
    /// that candidate is smaller (`best` is an item-major matrix with one
    /// column per query location; seeds of the same location share a column).
    ///
    /// Each node of the walk carries a flat `|borders| x |seeds|` matrix of
    /// per-seed entry distances; a subtree is pruned only when **every**
    /// seed's lower bound exceeds `prune_at` (a seed whose leaf lies inside
    /// the subtree is never pruned), and each occupied leaf is evaluated once
    /// against all seed columns. All matrix accesses go through the
    /// precomputed border-index arrays — the inner loops perform zero hash
    /// lookups. Pass `f64::INFINITY` to disable pruning; candidates are exact
    /// in either case.
    pub fn accumulate_multi_source_distances(
        &self,
        seeds: &[(RoadVertexId, f64, u32)],
        num_columns: usize,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        scratch: &mut RangeScratch,
    ) {
        self.multi_source_walk(
            seeds,
            num_columns,
            targets,
            prune_at,
            best,
            None,
            None,
            scratch,
        );
    }

    /// Multi-seed walk with the Lemma-1 **intersection computed in-walk**:
    /// `best` must be pre-seeded per `(item, column)` (typically with the
    /// along-edge shortcut distances) and `within[item]` is maintained as
    /// "every column of the item's row is `<= t`". Rows only ever decrease,
    /// so the flag is recomputed whenever a leaf lowers a row and converges
    /// to the exact intersection predicate; items in pruned subtrees keep
    /// the flag derived from their pre-seeded row.
    #[allow(clippy::too_many_arguments)]
    pub fn multi_source_within(
        &self,
        seeds: &[(RoadVertexId, f64, u32)],
        num_columns: usize,
        targets: &LeafTargets,
        t: f64,
        best: &mut [f64],
        within: &mut [bool],
        scratch: &mut RangeScratch,
    ) {
        debug_assert_eq!(best.len(), within.len() * num_columns);
        for (i, w) in within.iter_mut().enumerate() {
            *w = best[i * num_columns..(i + 1) * num_columns]
                .iter()
                .all(|&d| d <= t);
        }
        self.multi_source_walk(
            seeds,
            num_columns,
            targets,
            t,
            best,
            Some(within),
            None,
            scratch,
        );
    }

    /// Budgeted [`multi_source_within`](Self::multi_source_within): identical
    /// semantics, but the walk charges `ticker` as it goes (one unit per
    /// evaluated leaf target row and per visited child) and aborts
    /// cooperatively on exhaustion. Returns `true` when the walk completed;
    /// on `false` the `best`/`within` state reflects only part of the
    /// evaluation and the caller must treat the run as failed. The scratch
    /// stays reusable either way.
    #[allow(clippy::too_many_arguments)]
    pub fn multi_source_within_budgeted(
        &self,
        seeds: &[(RoadVertexId, f64, u32)],
        num_columns: usize,
        targets: &LeafTargets,
        t: f64,
        best: &mut [f64],
        within: &mut [bool],
        scratch: &mut RangeScratch,
        ticker: &mut BudgetTicker,
    ) -> bool {
        debug_assert_eq!(best.len(), within.len() * num_columns);
        for (i, w) in within.iter_mut().enumerate() {
            *w = best[i * num_columns..(i + 1) * num_columns]
                .iter()
                .all(|&d| d <= t);
        }
        self.multi_source_walk(
            seeds,
            num_columns,
            targets,
            t,
            best,
            Some(within),
            Some(ticker),
            scratch,
        )
    }

    /// Shared driver of the multi-seed entry points: precomputes one
    /// [`SeedClimb`] per in-range seed and starts the recursive walk.
    /// Returns `true` when the walk ran to completion, `false` when the
    /// optional budget ticker exhausted mid-walk.
    #[allow(clippy::too_many_arguments)]
    fn multi_source_walk(
        &self,
        seeds: &[(RoadVertexId, f64, u32)],
        num_columns: usize,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        mut within: Option<&mut [bool]>,
        mut ticker: Option<&mut BudgetTicker>,
        scratch: &mut RangeScratch,
    ) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        debug_assert_eq!(targets.per_leaf.len(), self.nodes.len());
        let climbs: Vec<SeedClimb> = seeds
            .iter()
            .filter(|&&(u, _, col)| {
                (u as usize) < self.num_vertices && (col as usize) < num_columns
            })
            .map(|&(u, offset, column)| {
                let path = self.ancestor_chain(self.leaf_of[u as usize]);
                let vecs = self.climb(u, &path);
                SeedClimb {
                    vertex: u,
                    offset,
                    column,
                    path,
                    vecs,
                }
            })
            .collect();
        if climbs.is_empty() {
            return true;
        }
        scratch.entry.resize(self.nodes.len(), Vec::new());
        self.multi_visit(
            self.root,
            0,
            false,
            &climbs,
            num_columns,
            targets,
            prune_at,
            best,
            &mut within,
            &mut ticker,
            scratch,
        )
    }

    /// One step of the top-down multi-seed walk: `node` is visited at `depth`
    /// (root = 0) with `scratch.entry[node]` holding the flat
    /// `|borders| x |seeds|` entry-distance matrix (unless `node` is the
    /// root, flagged by `has_entry == false`). A seed's chain passes through
    /// `node` iff `path[len - 1 - depth] == node` — checked by slice
    /// indexing, no per-node hash set.
    ///
    /// Charges the optional budget ticker one unit per evaluated leaf target
    /// row and per visited child; returns `false` (after restoring the
    /// node's entry matrix into the scratch) when the budget exhausts.
    #[allow(clippy::too_many_arguments)]
    fn multi_visit(
        &self,
        node: usize,
        depth: usize,
        has_entry: bool,
        climbs: &[SeedClimb],
        num_columns: usize,
        targets: &LeafTargets,
        prune_at: f64,
        best: &mut [f64],
        within: &mut Option<&mut [bool]>,
        ticker: &mut Option<&mut BudgetTicker>,
        scratch: &mut RangeScratch,
    ) -> bool {
        let s_count = climbs.len();
        let n = &self.nodes[node];
        let ub = n.union_borders.len();
        if n.children.is_empty() {
            // Leaf: one pass over the border rows of the leaf matrix lowers
            // every seed's accumulator for each target; candidates then land
            // in their seed's output column. Infinite entries flow through
            // the arithmetic harmlessly (inf + x = inf), so the loops carry
            // no finiteness branches.
            let RangeScratch {
                entry, seed_dist, ..
            } = scratch;
            let node_entry = &entry[node];
            for &(item, trow, toff) in targets.per_leaf[node].iter() {
                if let Some(t) = ticker.as_deref_mut() {
                    if !t.charge(1) {
                        return false;
                    }
                }
                let trow = trow as usize;
                seed_dist.clear();
                seed_dist.resize(s_count, f64::INFINITY);
                if has_entry {
                    for (bi, &brow) in n.border_rows.iter().enumerate() {
                        let m = n.matrix[brow * ub + trow];
                        for (sd, &e) in seed_dist
                            .iter_mut()
                            .zip(&node_entry[bi * s_count..(bi + 1) * s_count])
                        {
                            let cand = e + m;
                            if cand < *sd {
                                *sd = cand;
                            }
                        }
                    }
                }
                for (sd, climb) in seed_dist.iter_mut().zip(climbs) {
                    if climb.path[0] == node {
                        // The seed lives in this leaf: the direct
                        // within-region row competes with border entries.
                        let urow = self.leaf_pos[climb.vertex as usize] as usize;
                        let direct = n.matrix[urow * ub + trow];
                        if direct < *sd {
                            *sd = direct;
                        }
                    }
                }
                let row = &mut best[item as usize * num_columns..][..num_columns];
                let mut lowered = false;
                for (sd, climb) in seed_dist.iter().zip(climbs) {
                    let cand = climb.offset + sd + toff;
                    let slot = &mut row[climb.column as usize];
                    if cand < *slot {
                        *slot = cand;
                        lowered = true;
                    }
                }
                if lowered {
                    if let Some(w) = within.as_deref_mut() {
                        w[item as usize] = row.iter().all(|&d| d <= prune_at);
                    }
                }
            }
            return true;
        }

        // Internal node: extend the entry matrix into each occupied child.
        // `node_entry` is taken out of the scratch so the child buffer can be
        // filled while reading it; both go back before returning — including
        // on a budget abort, so the scratch survives interrupted walks.
        let node_entry = std::mem::take(&mut scratch.entry[node]);
        let mut completed = true;
        for (k, &child) in n.children.iter().enumerate() {
            if targets.occupied[child] == 0 {
                continue;
            }
            let crows = &n.child_border_rows[k];
            let cb = crows.len();
            let mut entry = std::mem::take(&mut scratch.entry[child]);
            entry.clear();
            entry.resize(cb * s_count, f64::INFINITY);
            // (a) through this node's own borders (top-down entries).
            if has_entry {
                for (j, &jrow) in n.border_rows.iter().enumerate() {
                    let erow = &node_entry[j * s_count..(j + 1) * s_count];
                    for (bi, &brow) in crows.iter().enumerate() {
                        let m = n.matrix[jrow * ub + brow];
                        for (slot, &e) in
                            entry[bi * s_count..(bi + 1) * s_count].iter_mut().zip(erow)
                        {
                            let cand = e + m;
                            if cand < *slot {
                                *slot = cand;
                            }
                        }
                    }
                }
            }
            // (b) cross from each seed whose ancestor chain passes through
            // this node: its climb vector over the chain child's borders.
            for (s, climb) in climbs.iter().enumerate() {
                let plen = climb.path.len();
                if plen <= depth || climb.path[plen - 1 - depth] != node {
                    continue;
                }
                // `node` has children, so it is not the seed's leaf and the
                // chain continues one level down.
                let cc = climb.path[plen - 2 - depth];
                let ccpos = n
                    .children
                    .iter()
                    .position(|&c| c == cc)
                    .expect("chain child is a child of its parent");
                let avec = &climb.vecs[plen - 2 - depth];
                for (&xrow, &d) in n.child_border_rows[ccpos].iter().zip(avec) {
                    if !d.is_finite() {
                        continue;
                    }
                    for (bi, &brow) in crows.iter().enumerate() {
                        let cand = d + n.matrix[xrow * ub + brow];
                        let slot = &mut entry[bi * s_count + s];
                        if cand < *slot {
                            *slot = cand;
                        }
                    }
                }
            }
            // Prune only when EVERY seed is both outside the child's subtree
            // and too far to enter it within `prune_at`: a seed inside the
            // subtree reaches its targets without crossing the borders, and
            // any other seed pays at least its minimum entry distance.
            scratch.seed_min.clear();
            scratch.seed_min.resize(s_count, f64::INFINITY);
            for bi in 0..cb {
                for (mn, &e) in scratch
                    .seed_min
                    .iter_mut()
                    .zip(&entry[bi * s_count..(bi + 1) * s_count])
                {
                    if e < *mn {
                        *mn = e;
                    }
                }
            }
            let visit = climbs.iter().zip(&scratch.seed_min).any(|(climb, &mn)| {
                let plen = climb.path.len();
                let inside = plen > depth + 1 && climb.path[plen - 2 - depth] == child;
                inside || climb.offset + mn <= prune_at
            });
            scratch.entry[child] = entry;
            if visit {
                if let Some(t) = ticker.as_deref_mut() {
                    if !t.charge(1) {
                        completed = false;
                        break;
                    }
                }
                if !self.multi_visit(
                    child,
                    depth + 1,
                    true,
                    climbs,
                    num_columns,
                    targets,
                    prune_at,
                    best,
                    within,
                    ticker,
                    scratch,
                ) {
                    completed = false;
                    break;
                }
            }
        }
        scratch.entry[node] = node_entry;
        completed
    }

    fn ancestor_chain(&self, leaf: usize) -> Vec<usize> {
        let mut chain = vec![leaf];
        let mut cur = leaf;
        while let Some(p) = self.nodes[cur].parent {
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// `result[i]` = distances from `u` to the borders of `path[i]`, computed
    /// within the region of `path[i]`.
    fn climb(&self, u: RoadVertexId, path: &[usize]) -> Vec<Vec<f64>> {
        let mut result: Vec<Vec<f64>> = Vec::with_capacity(path.len());
        // Leaf level.
        let leaf = &self.nodes[path[0]];
        let iu = self.leaf_pos[u as usize] as usize;
        let lub = leaf.union_borders.len();
        let leaf_row = &leaf.matrix[iu * lub..(iu + 1) * lub];
        let leaf_dists: Vec<f64> = leaf
            .border_rows
            .iter()
            .map(|&brow| leaf_row[brow])
            .collect();
        result.push(leaf_dists);
        // Internal levels.
        for level in 1..path.len() {
            let node = &self.nodes[path[level]];
            let cpos = node
                .children
                .iter()
                .position(|&c| c == path[level - 1])
                .expect("chain child is a child of its parent");
            let crows = &node.child_border_rows[cpos];
            let ub = node.union_borders.len();
            let prev = &result[level - 1];
            let dists: Vec<f64> = node
                .border_rows
                .iter()
                .map(|&xrow| {
                    let mut best = f64::INFINITY;
                    for (&brow, &d) in crows.iter().zip(prev) {
                        let cand = d + node.matrix[brow * ub + xrow];
                        if cand < best {
                            best = cand;
                        }
                    }
                    best
                })
                .collect();
            result.push(dists);
        }
        result
    }

    /// Recursively partitions `vertices` into a subtree; returns the node id.
    ///
    /// An over-capacity region splits into up to `fanout` parts by repeated
    /// balanced-bisection rounds: every round bisects each part that is still
    /// over the leaf capacity (a part small enough to be a leaf is carried
    /// through unsplit, never handed to `bisect`, whose degenerate fallback
    /// could empty it). With `fanout == 2` a single round runs and the tree
    /// is exactly the historical binary bisection — same node order, same
    /// regions.
    ///
    /// Regions larger than `leaf_capacity * SPINE_FACTOR` split binary
    /// regardless of the requested fanout (the "spine"): a fanout-4 top node
    /// over a continental network unions the borders of four huge quadrants
    /// into one matrix whose fill and incremental refresh dominate everything
    /// else (the 40k-grid root carries ~1.5k borders at fanout 4 but ~400 on
    /// a binary spine). Keeping the top of the tree binary caps per-node
    /// matrix sizes at roughly one cut's worth of borders while the bulk of
    /// the tree — everything at metro scale and below — still gets the
    /// shallow multiway shape.
    fn partition(
        &mut self,
        net: &RoadNetwork,
        vertices: Vec<RoadVertexId>,
        parent: Option<usize>,
        leaf_capacity: usize,
        fanout: usize,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(GTreeNode {
            parent,
            children: Vec::new(),
            vertices: vertices.clone(),
            borders: Vec::new(),
            union_borders: Vec::new(),
            ub_index: HashMap::new(),
            border_rows: Vec::new(),
            child_border_rows: Vec::new(),
            matrix: Vec::new(),
            contracted_children: Vec::new(),
        });
        if vertices.len() <= leaf_capacity {
            for &v in &vertices {
                self.leaf_of[v as usize] = id;
            }
            return id;
        }
        let region_len = vertices.len();
        let eff_fanout = if fanout > 2 && region_len > leaf_capacity.saturating_mul(SPINE_FACTOR) {
            2
        } else {
            fanout
        };
        let mut parts = vec![vertices];
        while parts.len() * 2 <= eff_fanout {
            let mut next = Vec::with_capacity(parts.len() * 2);
            let mut split_any = false;
            for part in parts {
                if part.len() <= leaf_capacity {
                    next.push(part);
                } else {
                    let (left, right) = bisect(net, &part);
                    next.push(left);
                    next.push(right);
                    split_any = true;
                }
            }
            parts = next;
            if !split_any {
                break;
            }
        }
        let children: Vec<usize> = parts
            .into_iter()
            .map(|part| self.partition(net, part, Some(id), leaf_capacity, fanout))
            .collect();
        self.nodes[id].children = children;
        id
    }

    fn compute_borders(&mut self, net: &RoadNetwork) {
        let n = self.num_vertices;
        let mut in_region = vec![false; n];
        for id in 0..self.nodes.len() {
            for &v in &self.nodes[id].vertices {
                in_region[v as usize] = true;
            }
            let borders: Vec<RoadVertexId> = self.nodes[id]
                .vertices
                .iter()
                .copied()
                .filter(|&v| {
                    net.neighbors(v)
                        .iter()
                        .any(|&(u, _)| !in_region[u as usize])
                })
                .collect();
            for &v in &self.nodes[id].vertices {
                in_region[v as usize] = false;
            }
            self.nodes[id].borders = borders;
        }
    }

    fn compute_matrices(&mut self, net: &RoadNetwork) {
        // Parents are created before their children, so one increasing-id
        // pass settles every node's depth. Levels are processed bottom-up: an
        // internal matrix reads only its children's borders and matrices
        // (one level deeper, already final), so all matrices of a level can
        // be filled concurrently.
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0usize;
        for id in 0..self.nodes.len() {
            if let Some(p) = self.nodes[id].parent {
                depth[id] = depth[p] + 1;
                max_depth = max_depth.max(depth[id]);
            }
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
        for (id, &d) in depth.iter().enumerate() {
            levels[d].push(id);
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        for level in levels.iter().rev() {
            // Index spaces first (serial, cheap): leaves index their whole
            // region, internal nodes the first-seen union of their children's
            // borders (disjoint across children, which partition the region).
            for &id in level {
                if self.nodes[id].children.is_empty() {
                    let vertices = self.nodes[id].vertices.clone();
                    let ub_index: HashMap<RoadVertexId, usize> =
                        vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                    let node = &mut self.nodes[id];
                    node.union_borders = vertices;
                    node.ub_index = ub_index;
                } else {
                    let children = self.nodes[id].children.clone();
                    let mut union_borders: Vec<RoadVertexId> = Vec::new();
                    let mut seen: HashMap<RoadVertexId, ()> = HashMap::new();
                    for &c in &children {
                        for &b in &self.nodes[c].borders {
                            if seen.insert(b, ()).is_none() {
                                union_borders.push(b);
                            }
                        }
                    }
                    let ub_index: HashMap<RoadVertexId, usize> = union_borders
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i))
                        .collect();
                    let node = &mut self.nodes[id];
                    node.union_borders = union_borders;
                    node.ub_index = ub_index;
                }
            }
            // Contract the reduced border graphs, then fill every matrix row
            // of the level on the worker pool.
            let trace = std::env::var_os("GTREE_TRACE").is_some();
            let t0 = std::time::Instant::now();
            let fills: Vec<NodeFill> = level
                .iter()
                .map(|&id| NodeFill {
                    id,
                    reduced: if self.nodes[id].children.is_empty() {
                        None
                    } else {
                        Some(self.build_reduced_graph(net, id))
                    },
                })
                .collect();
            let t_contract = t0.elapsed();
            let matrices = self.fill_level_rows(net, &fills, workers);
            if trace {
                let rows: usize = fills
                    .iter()
                    .map(|f| self.nodes[f.id].union_borders.len())
                    .sum();
                let max_size = fills
                    .iter()
                    .map(|f| self.nodes[f.id].union_borders.len())
                    .max()
                    .unwrap_or(0);
                let edges: usize = fills
                    .iter()
                    .filter_map(|f| f.reduced.as_ref().map(|r| r.targets.len()))
                    .sum();
                eprintln!(
                    "level: {} nodes, {} rows, max_size {}, reduced_edges {}, contract {:?}, fill {:?}",
                    fills.len(),
                    rows,
                    max_size,
                    edges,
                    t_contract,
                    t0.elapsed() - t_contract
                );
            }
            for (fill, matrix) in fills.iter().zip(matrices) {
                self.nodes[fill.id].matrix = matrix;
            }
        }
    }

    /// Fills the matrices of one build level. Row tasks (one masked or
    /// reduced Dijkstra each) are flattened across all nodes of the level and
    /// claimed from an atomic counter by scoped worker threads, so a single
    /// huge node (the root) still spreads across every core. Each row is
    /// computed independently from immutable inputs, so the result is
    /// deterministic regardless of thread count; small levels (and
    /// single-core hosts) run the identical computation serially.
    fn fill_level_rows(
        &self,
        net: &RoadNetwork,
        fills: &[NodeFill],
        workers: usize,
    ) -> Vec<Vec<f64>> {
        let sizes: Vec<usize> = fills
            .iter()
            .map(|f| self.nodes[f.id].union_borders.len())
            .collect();
        let mut row_base = vec![0usize; fills.len() + 1];
        for (i, &s) in sizes.iter().enumerate() {
            row_base[i + 1] = row_base[i] + s;
        }
        let total_rows = row_base[fills.len()];
        let mut matrices: Vec<Vec<f64>> =
            sizes.iter().map(|&s| vec![f64::INFINITY; s * s]).collect();
        if workers <= 1 || total_rows < PARALLEL_ROW_THRESHOLD {
            let mut worker = FillWorker::new(net.num_vertices());
            for (fi, matrix) in matrices.iter_mut().enumerate() {
                let size = sizes[fi];
                for row in 0..size {
                    let out = self.compute_matrix_row(net, &fills[fi], row, &mut worker);
                    matrix[row * size..(row + 1) * size].copy_from_slice(&out);
                }
            }
            return matrices;
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let computed: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worker = FillWorker::new(net.num_vertices());
                        let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= total_rows {
                                break;
                            }
                            let fi = row_base.partition_point(|&b| b <= g) - 1;
                            let row = g - row_base[fi];
                            out.push((
                                g,
                                self.compute_matrix_row(net, &fills[fi], row, &mut worker),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("matrix fill worker panicked"))
                .collect()
        });
        for chunk in computed {
            for (g, row) in chunk {
                let fi = row_base.partition_point(|&b| b <= g) - 1;
                let r = g - row_base[fi];
                let size = sizes[fi];
                matrices[fi][r * size..(r + 1) * size].copy_from_slice(&row);
            }
        }
        matrices
    }

    /// Computes one matrix row of a node being filled: a masked within-region
    /// Dijkstra for leaves, a reduced-graph Dijkstra for internal nodes.
    fn compute_matrix_row(
        &self,
        net: &RoadNetwork,
        fill: &NodeFill,
        row: usize,
        worker: &mut FillWorker,
    ) -> Vec<f64> {
        let node = &self.nodes[fill.id];
        match &fill.reduced {
            Some(reduced) => reduced_dijkstra_row(reduced, row, &mut worker.dist, &mut worker.heap),
            None => {
                let ub = &node.union_borders;
                let FillWorker {
                    sssp, region_mask, ..
                } = worker;
                for &v in ub {
                    region_mask[v as usize] = true;
                }
                let dists = sssp.run(net, &[(ub[row], 0.0)], None, Some(region_mask));
                let out: Vec<f64> = ub.iter().map(|&u| dists[u as usize]).collect();
                for &v in ub {
                    region_mask[v as usize] = false;
                }
                out
            }
        }
    }

    /// Assembles the contracted reduced border graph of an internal node from
    /// the children's **current** matrices (intra-child shortcuts) and the
    /// current weights of the road edges crossing between children.
    ///
    /// Each child's border clique is contracted before it enters the graph: a
    /// shortcut `(a, b)` is dropped when some other border `x` of the same
    /// child gives `d(a,x) + d(x,b) <= d(a,b)` with **both legs strictly
    /// shorter** than `d(a,b)`. Strictness makes the soundness argument
    /// inductive over edge weight (every dropped edge is covered by
    /// kept-or-covered strictly shorter edges), and because clique distances
    /// are exact within-child shortest paths — so any witness sum is also a
    /// valid path bound the full clique contains — the contracted graph has
    /// **identical** shortest-path values to the full clique in exact f64
    /// terms, while grid-like cuts shrink from `|borders|²` edges to
    /// near-linear.
    fn build_reduced_graph(&self, net: &RoadNetwork, id: usize) -> ReducedGraph {
        let node = &self.nodes[id];
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        for k in 0..node.children.len() {
            self.contract_child_clique(id, k, &mut edges);
        }
        self.push_cross_child_edges(net, id, &mut edges);
        assemble_reduced(node.union_borders.len(), &edges)
    }

    /// Update-path variant of [`build_reduced_graph`](Self::build_reduced_graph)
    /// that reuses each child's cached contracted clique unless that child's
    /// border-to-border distances changed this batch (`changed[child]` holds
    /// the borders whose rows changed; `Some(non-empty)` invalidates the
    /// cache). Cross-child road edges are always rescanned — they are cheap
    /// and carry the level-local reweights.
    fn reduced_graph_for_update(
        &mut self,
        net: &RoadNetwork,
        id: usize,
        changed: &[Option<Vec<RoadVertexId>>],
    ) -> ReducedGraph {
        let num_children = self.nodes[id].children.len();
        if self.nodes[id].contracted_children.len() != num_children {
            self.nodes[id].contracted_children = vec![None; num_children];
        }
        for k in 0..num_children {
            let child = self.nodes[id].children[k];
            let stale = changed[child].as_ref().is_some_and(|l| !l.is_empty());
            if stale || self.nodes[id].contracted_children[k].is_none() {
                let mut clique = Vec::new();
                self.contract_child_clique(id, k, &mut clique);
                self.nodes[id].contracted_children[k] = Some(clique);
            }
        }
        let node = &self.nodes[id];
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        for cached in node.contracted_children.iter().flatten() {
            edges.extend_from_slice(cached);
        }
        self.push_cross_child_edges(net, id, &mut edges);
        assemble_reduced(self.nodes[id].union_borders.len(), &edges)
    }

    /// Contracts child `k`'s border clique and appends the surviving
    /// shortcuts (both directions, union-border row coordinates) to `edges`.
    fn contract_child_clique(&self, id: usize, k: usize, edges: &mut Vec<(u32, u32, f64)>) {
        let node = &self.nodes[id];
        let child = &self.nodes[node.children[k]];
        let nb = child.borders.len();
        if nb < 2 {
            return;
        }
        // Gather the child's border-to-border distances once.
        let rows: Vec<usize> = child.borders.iter().map(|b| child.ub_index[b]).collect();
        let mut bm: Vec<f64> = Vec::with_capacity(nb * nb);
        for &ri in &rows {
            for &rj in &rows {
                bm.push(child.matrix_at(ri, rj));
            }
        }
        let mut order: Vec<u32> = Vec::new();
        for i in 0..nb {
            // Witnesses sorted nearest-first from `i`: the scan stops at
            // the first candidate at least as far as the edge itself.
            let row = &bm[i * nb..(i + 1) * nb];
            order.clear();
            order.extend(0..nb as u32);
            order.sort_by(|&x, &y| {
                row[x as usize]
                    .partial_cmp(&row[y as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for j in (i + 1)..nb {
                let dij = row[j];
                if !dij.is_finite() {
                    continue;
                }
                let mut covered = false;
                for &x in &order {
                    let dix = row[x as usize];
                    if dix >= dij {
                        break;
                    }
                    let dxj = bm[x as usize * nb + j];
                    if dxj < dij && dix + dxj <= dij {
                        covered = true;
                        break;
                    }
                }
                if !covered {
                    let a = node.ub_index[&child.borders[i]] as u32;
                    let b = node.ub_index[&child.borders[j]] as u32;
                    edges.push((a, b, dij));
                    edges.push((b, a, dij));
                }
            }
        }
    }

    /// Appends the road edges crossing between children of `id` (both
    /// directions arise from scanning each endpoint's neighbor list; cross
    /// endpoints are borders of their children, hence union borders).
    fn push_cross_child_edges(
        &self,
        net: &RoadNetwork,
        id: usize,
        edges: &mut Vec<(u32, u32, f64)>,
    ) {
        let node = &self.nodes[id];
        let mut child_of: HashMap<RoadVertexId, usize> = HashMap::new();
        for (ci, &c) in node.children.iter().enumerate() {
            for &b in &self.nodes[c].borders {
                child_of.insert(b, ci);
            }
        }
        for &b in &node.union_borders {
            for &(u, w) in net.neighbors(b) {
                if let (Some(&cb), Some(&cu)) = (child_of.get(&b), child_of.get(&u)) {
                    if cb != cu {
                        edges.push((node.ub_index[&b] as u32, node.ub_index[&u] as u32, w));
                    }
                }
            }
        }
    }

    /// (Re)computes a leaf's full pairwise within-region distance matrix from
    /// the current network weights. The node's index space (`union_borders` =
    /// region vertices) must already be set; only `matrix` is written.
    /// Returns whether the matrix actually changed (recomputation is
    /// deterministic, so unchanged inputs reproduce the matrix exactly).
    fn fill_leaf_matrix(
        &mut self,
        net: &RoadNetwork,
        id: usize,
        region_mask: &mut [bool],
        scratch: &mut SsspScratch,
    ) -> bool {
        let vertices = self.nodes[id].union_borders.clone();
        for &v in &vertices {
            region_mask[v as usize] = true;
        }
        let size = vertices.len();
        let mut matrix = vec![f64::INFINITY; size * size];
        for (i, &v) in vertices.iter().enumerate() {
            let dists = scratch.run(net, &[(v, 0.0)], None, Some(region_mask));
            for (j, &u) in vertices.iter().enumerate() {
                matrix[i * size + j] = dists[u as usize];
            }
        }
        for &v in &vertices {
            region_mask[v as usize] = false;
        }
        let changed = self.nodes[id].matrix != matrix;
        self.nodes[id].matrix = matrix;
        changed
    }

    /// Extracts a node's current border-to-border submatrix (row-major over
    /// `border_rows`) — the only part of its matrix a parent's reduced graph
    /// can observe.
    fn border_submatrix(&self, id: usize) -> Vec<f64> {
        let node = &self.nodes[id];
        let size = node.union_borders.len();
        let rows = &node.border_rows;
        let mut sub = Vec::with_capacity(rows.len() * rows.len());
        for &i in rows {
            for &j in rows {
                sub.push(node.matrix[i * size + j]);
            }
        }
        sub
    }

    /// Borders of `id` whose border-to-border distances differ from the
    /// snapshot `old_sub` **beyond ulp noise**. These are the only borders a
    /// parent refresh must treat as changed. The comparison must be
    /// tolerance-based, not exact: a refresh re-contracts changed children,
    /// and contraction changes the summation association of path weights, so
    /// an unchanged true distance can come back a few ulps off — an exact
    /// `!=` would mark it changed and let the changed set amplify
    /// geometrically up the tree until every update degenerates to a full
    /// rebuild. The margin matches the patch-rule margins, so per-batch drift
    /// stays orders of magnitude below the 1e-9 tolerances the invariant
    /// suite checks.
    fn changed_borders_since(&self, id: usize, old_sub: &[f64]) -> Vec<RoadVertexId> {
        let node = &self.nodes[id];
        let nb = node.borders.len();
        let new_sub = self.border_submatrix(id);
        (0..nb)
            .filter(|&i| {
                old_sub[i * nb..(i + 1) * nb]
                    .iter()
                    .zip(&new_sub[i * nb..(i + 1) * nb])
                    .any(|(&a, &b)| significantly_different(a, b))
            })
            .map(|i| node.borders[i])
            .collect()
    }

    /// Delta-aware refresh of an internal node's matrix for
    /// [`apply_edge_updates`](Self::apply_edge_updates): only sources whose
    /// reduced-graph neighborhood actually changed are re-Dijkstra'd.
    ///
    /// `changed[child]` lists a refreshed child's borders whose
    /// border-to-border rows changed this batch (`None` = untouched);
    /// `touched` lists the endpoints of cross-child edges reweighted at this
    /// node's level. Together they induce the changed set `C` of union-border
    /// rows: every reduced-graph edge whose weight (or existence, via
    /// re-contraction) may have changed has **both** endpoints in `C` —
    /// a changed intra-child shortcut `(a, b)` means the child's
    /// border-to-border distance `d(a, b)` changed, which marks both border
    /// rows (the submatrix diff is symmetric). Rows in `C` are recomputed
    /// with a reduced Dijkstra on the new graph (re-contracting only the
    /// changed children, via the per-child clique cache). Any other source
    /// `s` is **patched** when every pair `(s, t)` outside `C` is provably
    /// exact: writing `A` for the (unknown but unchanged) best path avoiding
    /// `C`, `new(s,t) = min(A, B_new)` with `B_new` the best new detour
    /// through `C` (computable from the fresh rows by symmetry — the reduced
    /// graph is undirected), and `min(old(s,t), B_new)` equals that whenever
    /// `old(s,t) < B_old` (the old path avoided `C`, so `A = old`) **or**
    /// `B_new <= old(s,t)` (the detour got cheap enough to dominate `A >=
    /// old`). Both comparisons carry an epsilon margin so f64 association
    /// ties fall to the re-Dijkstra side. Returns the node's changed-border
    /// list (`None` if the matrix is unchanged) plus
    /// `(dijkstra_rows, patched_rows)`.
    fn refresh_internal_matrix(
        &mut self,
        net: &RoadNetwork,
        id: usize,
        changed: &[Option<Vec<RoadVertexId>>],
        touched: &[RoadVertexId],
    ) -> (Option<Vec<RoadVertexId>>, usize, usize) {
        let size = self.nodes[id].union_borders.len();
        if size == 0 {
            return (None, 0, 0);
        }
        let mut in_c = vec![false; size];
        {
            let node = &self.nodes[id];
            for &c in &node.children {
                if let Some(list) = &changed[c] {
                    for b in list {
                        in_c[node.ub_index[b]] = true;
                    }
                }
            }
            for &v in touched {
                if let Some(&row) = node.ub_index.get(&v) {
                    in_c[row] = true;
                }
            }
        }
        let c_rows: Vec<usize> = (0..size).filter(|&r| in_c[r]).collect();
        if c_rows.is_empty() {
            // Children changed only outside their border submatrices, and no
            // level-local reweight: this matrix cannot have changed.
            return (None, 0, 0);
        }
        let old_sub = self.border_submatrix(id);
        let reduced = self.reduced_graph_for_update(net, id, changed);
        let mut dist = Vec::new();
        let mut heap = std::collections::BinaryHeap::new();
        if c_rows.len() * 2 >= size {
            // Dense change: patching cannot beat recomputing everything.
            let old = std::mem::take(&mut self.nodes[id].matrix);
            let mut matrix = vec![f64::INFINITY; size * size];
            for s in 0..size {
                let row = reduced_dijkstra_row(&reduced, s, &mut dist, &mut heap);
                matrix[s * size..(s + 1) * size].copy_from_slice(&row);
            }
            let node_changed = old != matrix;
            self.nodes[id].matrix = matrix;
            let report = node_changed.then(|| self.changed_borders_since(id, &old_sub));
            return (report, size, 0);
        }
        let old = std::mem::take(&mut self.nodes[id].matrix);
        let mut matrix = vec![f64::INFINITY; size * size];
        // Fresh rows for every changed source; row `c` doubles as the new
        // `new(s, c)` column by symmetry.
        for &c in &c_rows {
            let row = reduced_dijkstra_row(&reduced, c, &mut dist, &mut heap);
            matrix[c * size..(c + 1) * size].copy_from_slice(&row);
        }
        let mut dijkstra_rows = c_rows.len();
        let mut patched_rows = 0usize;
        let mut b_old = vec![f64::INFINITY; size];
        let mut b_new = vec![f64::INFINITY; size];
        for s in 0..size {
            if in_c[s] {
                continue;
            }
            b_old.iter_mut().for_each(|x| *x = f64::INFINITY);
            b_new.iter_mut().for_each(|x| *x = f64::INFINITY);
            let old_row = &old[s * size..(s + 1) * size];
            for &c in &c_rows {
                let osc = old_row[c];
                if osc.is_finite() {
                    let old_c = &old[c * size..(c + 1) * size];
                    for (slot, &oct) in b_old.iter_mut().zip(old_c) {
                        let cand = osc + oct;
                        if cand < *slot {
                            *slot = cand;
                        }
                    }
                }
                let new_c = &matrix[c * size..(c + 1) * size];
                let nsc = new_c[s];
                if nsc.is_finite() {
                    for (slot, &nct) in b_new.iter_mut().zip(new_c) {
                        let cand = nsc + nct;
                        if cand < *slot {
                            *slot = cand;
                        }
                    }
                }
            }
            // An infinite detour bound is exact (reweights never change
            // reachability, so `old == A` there); finite bounds must clear
            // the margin that absorbs f64 association ties. The second
            // clause is what keeps patching effective: a shortest path that
            // merely touches `C` without using a changed edge keeps
            // `B_new == old`, and `min(A, B_new) = B_new` then holds because
            // `A >= old` always.
            let safe = (0..size).all(|t| {
                if in_c[t] {
                    return true;
                }
                let bo = b_old[t];
                if bo.is_infinite() {
                    return true;
                }
                let m = 1e-12 * bo.abs().max(1.0);
                old_row[t] < bo - m || b_new[t] <= old_row[t] + m
            });
            if safe {
                for t in 0..size {
                    let v = if in_c[t] {
                        matrix[t * size + s]
                    } else {
                        old_row[t].min(b_new[t])
                    };
                    matrix[s * size + t] = v;
                }
                patched_rows += 1;
            } else {
                let row = reduced_dijkstra_row(&reduced, s, &mut dist, &mut heap);
                matrix[s * size..(s + 1) * size].copy_from_slice(&row);
                dijkstra_rows += 1;
            }
        }
        let node_changed = old != matrix;
        self.nodes[id].matrix = matrix;
        let report = node_changed.then(|| self.changed_borders_since(id, &old_sub));
        if std::env::var_os("GTREE_TRACE").is_some() {
            eprintln!(
                "refresh node {id}: size {size}, |C| {}, dijkstras {dijkstra_rows}, patched {patched_rows}, changed_borders {:?}",
                c_rows.len(),
                report.as_ref().map(Vec::len)
            );
        }
        (report, dijkstra_rows, patched_rows)
    }
    /// Fills the precomputed index arrays (`border_rows`, `child_border_rows`,
    /// `leaf_pos`) from the `ub_index` maps after the matrices are built, so
    /// every query hot loop is pure slice indexing with zero hashing.
    fn precompute_index_rows(&mut self) {
        for id in 0..self.nodes.len() {
            let border_rows: Vec<usize> = self.nodes[id]
                .borders
                .iter()
                .map(|b| self.nodes[id].ub_index[b])
                .collect();
            let child_border_rows: Vec<Vec<usize>> = self.nodes[id]
                .children
                .clone()
                .iter()
                .map(|&c| {
                    self.nodes[c]
                        .borders
                        .iter()
                        .map(|b| self.nodes[id].ub_index[b])
                        .collect()
                })
                .collect();
            if self.nodes[id].children.is_empty() {
                for (i, &v) in self.nodes[id].union_borders.iter().enumerate() {
                    self.leaf_pos[v as usize] = i as u32;
                }
            }
            let node = &mut self.nodes[id];
            node.border_rows = border_rows;
            node.child_border_rows = child_border_rows;
        }
    }
}

/// One node of a build level queued for its matrix fill: leaves (`reduced ==
/// None`) run masked within-region Dijkstras, internal nodes run reduced
/// Dijkstras over their contracted border graph.
#[derive(Debug)]
struct NodeFill {
    id: usize,
    reduced: Option<ReducedGraph>,
}

/// A contracted reduced border graph in CSR form. Vertex ids are union-border
/// rows of the owning node; edges are the surviving intra-child shortcuts
/// plus the road edges crossing between children.
#[derive(Debug)]
struct ReducedGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

/// Whether two distance values differ beyond f64 association noise (the
/// relative margin matches the incremental patch rule's epsilon).
fn significantly_different(a: f64, b: f64) -> bool {
    if a == b {
        return false;
    }
    if !a.is_finite() || !b.is_finite() {
        return true;
    }
    (a - b).abs() > 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// Counting-sorts a directed edge list into CSR form over `size` vertices.
fn assemble_reduced(size: usize, edges: &[(u32, u32, f64)]) -> ReducedGraph {
    let mut offsets = vec![0u32; size + 1];
    for &(a, _, _) in edges {
        offsets[a as usize + 1] += 1;
    }
    for i in 0..size {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..size].to_vec();
    let mut targets = vec![0u32; edges.len()];
    let mut weights = vec![0.0f64; edges.len()];
    for &(a, b, w) in edges {
        let slot = cursor[a as usize] as usize;
        targets[slot] = b;
        weights[slot] = w;
        cursor[a as usize] += 1;
    }
    ReducedGraph {
        offsets,
        targets,
        weights,
    }
}

/// Per-thread scratch of the (possibly parallel) matrix fill.
#[derive(Debug)]
struct FillWorker {
    sssp: SsspScratch,
    region_mask: Vec<bool>,
    dist: Vec<f64>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
}

impl FillWorker {
    fn new(num_vertices: usize) -> Self {
        FillWorker {
            sssp: SsspScratch::new(),
            region_mask: vec![false; num_vertices],
            dist: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
        }
    }
}

/// Dijkstra over a contracted reduced border graph; returns the full
/// distance row from `source`. The scratch buffers are recycled per call.
fn reduced_dijkstra_row(
    g: &ReducedGraph,
    source: usize,
    dist: &mut Vec<f64>,
    heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
) -> Vec<f64> {
    use std::cmp::Reverse;
    let n = g.offsets.len() - 1;
    dist.clear();
    dist.resize(n, f64::INFINITY);
    heap.clear();
    dist[source] = 0.0;
    heap.push(Reverse((0, source as u32)));
    while let Some(Reverse((key, v))) = heap.pop() {
        let d = f64::from_bits(key);
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        for e in g.offsets[v] as usize..g.offsets[v + 1] as usize {
            let u = g.targets[e] as usize;
            let nd = d + g.weights[e];
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd.to_bits(), u as u32)));
            }
        }
    }
    dist.clone()
}

/// Splits a vertex set into two balanced halves while minimizing the number
/// of cut edges — and therefore the border count at every level of the tree.
///
/// Distance-based splitting (two-sided BFS growth, bisector orderings) falls
/// apart on road networks with long-range shortcut edges: hop distances turn
/// small-world and the "geometric" halves scatter into dozens of fragments,
/// leaving almost every vertex a border. Cut minimization sidesteps the
/// metric entirely. One half is grown greedily from a far-apart seed, always
/// absorbing the frontier vertex whose move reduces the running cut the most
/// (greedy graph growing, the seed heuristic used by multilevel
/// partitioners), then two Fiduccia–Mattheyses-style sweeps move
/// positive-gain boundary vertices across the cut under a small balance
/// slack. Ties are broken by vertex id everywhere, so the split is
/// deterministic. Disconnected parts are handled by re-seeding the growth
/// when a component is exhausted; a degenerate split falls back to halving
/// the list.
fn bisect(net: &RoadNetwork, vertices: &[RoadVertexId]) -> (Vec<RoadVertexId>, Vec<RoadVertexId>) {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, VecDeque};
    let n = vertices.len();
    if n < 2 {
        let mid = n / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }
    let mut idx: HashMap<RoadVertexId, u32> = HashMap::with_capacity(n);
    for (i, &v) in vertices.iter().enumerate() {
        idx.insert(v, i as u32);
    }
    // Per-vertex degree restricted to the part (edges leaving the part are
    // borders regardless of the split, so they never enter a gain).
    let deg_part: Vec<i32> = vertices
        .iter()
        .map(|&v| {
            net.neighbors(v)
                .iter()
                .filter(|&&(u, _)| idx.contains_key(&u))
                .count() as i32
        })
        .collect();

    // BFS-farthest vertex from `from` (a periphery vertex, so the grown half
    // does not enclose the seed's component center).
    let far_from = |from: usize| -> usize {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(vertices[from]);
        let mut last = from as u32;
        while let Some(v) = queue.pop_front() {
            last = idx[&v];
            for &(u, _) in net.neighbors(v) {
                if let Some(&ui) = idx.get(&u) {
                    if !seen[ui as usize] {
                        seen[ui as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        last as usize
    };

    let half = n / 2;
    let slack = (n / 16).max(1);
    let min_side = half.saturating_sub(slack).max(1);
    let max_side = (half + slack).min(n - 1);
    let gain_of = |deg_in: i32, deg: i32| 2 * deg_in - deg;

    // One full growth + refinement attempt from a given seed; returns the
    // half-set assignment, its size, and the resulting cut edge count.
    let attempt = |seed: usize| -> (Vec<bool>, usize, i64) {
        // Greedy growth: absorb the frontier vertex with the maximal gain
        // `(neighbors already in A) - (neighbors still outside)` =
        // 2·deg_in - deg. The heap is lazy (stale entries are re-checked
        // against the current gain); ties prefer the smaller vertex id for
        // determinism.
        let mut in_a = vec![false; n];
        let mut deg_in_a = vec![0i32; n];
        let mut heap: BinaryHeap<(i32, Reverse<u32>)> = BinaryHeap::new();
        heap.push((gain_of(0, deg_part[seed]), Reverse(seed as u32)));
        let mut a_count = 0usize;
        let mut next_reseed = 0usize;
        while a_count < half {
            let vi = match heap.pop() {
                Some((g, Reverse(vi))) => {
                    let vi = vi as usize;
                    if in_a[vi] || g != gain_of(deg_in_a[vi], deg_part[vi]) {
                        continue; // stale or already absorbed
                    }
                    vi
                }
                None => {
                    // Component exhausted: re-seed from the first unassigned
                    // vertex (deterministic; `next_reseed` only moves
                    // forward).
                    while next_reseed < n && in_a[next_reseed] {
                        next_reseed += 1;
                    }
                    if next_reseed >= n {
                        break;
                    }
                    next_reseed
                }
            };
            in_a[vi] = true;
            a_count += 1;
            for &(u, _) in net.neighbors(vertices[vi]) {
                if let Some(&ui) = idx.get(&u) {
                    let ui = ui as usize;
                    deg_in_a[ui] += 1;
                    if !in_a[ui] {
                        heap.push((gain_of(deg_in_a[ui], deg_part[ui]), Reverse(ui as u32)));
                    }
                }
            }
        }

        // Fiduccia–Mattheyses refinement with rollback: each pass moves the
        // best-gain unlocked vertex (negative gains included, so the pass can
        // climb out of local minima), locks it, and finally rolls back to the
        // best prefix of the move sequence. Passes repeat until one fails to
        // improve the cut.
        for _pass in 0..8 {
            let mut locked = vec![false; n];
            // Move gain for the vertex's CURRENT side; (gain, id)-keyed lazy
            // heaps, one per side so balance limits can force a side.
            let move_gain = |vi: usize, in_a: &[bool], deg_in_a: &[i32]| {
                if in_a[vi] {
                    deg_part[vi] - 2 * deg_in_a[vi]
                } else {
                    2 * deg_in_a[vi] - deg_part[vi]
                }
            };
            let mut heap_a: BinaryHeap<(i32, Reverse<u32>)> = BinaryHeap::new();
            let mut heap_b: BinaryHeap<(i32, Reverse<u32>)> = BinaryHeap::new();
            for vi in 0..n {
                let entry = (move_gain(vi, &in_a, &deg_in_a), Reverse(vi as u32));
                if in_a[vi] {
                    heap_a.push(entry);
                } else {
                    heap_b.push(entry);
                }
            }
            let mut moves: Vec<usize> = Vec::new();
            let mut gain_sum = 0i64;
            let mut best_sum = 0i64;
            let mut best_prefix = 0usize;
            loop {
                // Drop stale tops, then pick the better feasible side (ties
                // prefer the side whose move restores balance, then A).
                let clean = |heap: &mut BinaryHeap<(i32, Reverse<u32>)>,
                             want_a: bool,
                             in_a: &[bool],
                             deg_in_a: &[i32],
                             locked: &[bool]| {
                    while let Some(&(g, Reverse(v))) = heap.peek() {
                        let vi = v as usize;
                        if !locked[vi]
                            && in_a[vi] == want_a
                            && g == if want_a {
                                deg_part[vi] - 2 * deg_in_a[vi]
                            } else {
                                2 * deg_in_a[vi] - deg_part[vi]
                            }
                        {
                            return Some((g, vi));
                        }
                        heap.pop();
                    }
                    None
                };
                let from_a = if a_count > min_side {
                    clean(&mut heap_a, true, &in_a, &deg_in_a, &locked)
                } else {
                    None
                };
                let from_b = if a_count < max_side {
                    clean(&mut heap_b, false, &in_a, &deg_in_a, &locked)
                } else {
                    None
                };
                let (gain, vi) = match (from_a, from_b) {
                    (Some((ga, va)), Some((gb, vb))) => {
                        if ga > gb || (ga == gb && a_count > half) {
                            heap_a.pop();
                            (ga, va)
                        } else {
                            heap_b.pop();
                            (gb, vb)
                        }
                    }
                    (Some((ga, va)), None) => {
                        heap_a.pop();
                        (ga, va)
                    }
                    (None, Some((gb, vb))) => {
                        heap_b.pop();
                        (gb, vb)
                    }
                    (None, None) => break,
                };
                let delta = if in_a[vi] { -1i32 } else { 1 };
                in_a[vi] = !in_a[vi];
                a_count = (a_count as i64 + delta as i64) as usize;
                locked[vi] = true;
                for &(u, _) in net.neighbors(vertices[vi]) {
                    if let Some(&ui) = idx.get(&u) {
                        let ui = ui as usize;
                        deg_in_a[ui] += delta;
                        if !locked[ui] {
                            let entry = (move_gain(ui, &in_a, &deg_in_a), Reverse(ui as u32));
                            if in_a[ui] {
                                heap_a.push(entry);
                            } else {
                                heap_b.push(entry);
                            }
                        }
                    }
                }
                moves.push(vi);
                gain_sum += gain as i64;
                if gain_sum > best_sum {
                    best_sum = gain_sum;
                    best_prefix = moves.len();
                }
            }
            // Roll back everything after the best prefix.
            for &vi in moves[best_prefix..].iter().rev() {
                let delta = if in_a[vi] { -1i32 } else { 1 };
                in_a[vi] = !in_a[vi];
                a_count = (a_count as i64 + delta as i64) as usize;
                for &(u, _) in net.neighbors(vertices[vi]) {
                    if let Some(&ui) = idx.get(&u) {
                        deg_in_a[ui as usize] += delta;
                    }
                }
            }
            if best_sum == 0 {
                break;
            }
        }

        let cut: i64 = (0..n)
            .filter(|&vi| in_a[vi])
            .map(|vi| (deg_part[vi] - deg_in_a[vi]) as i64)
            .sum();
        (in_a, a_count, cut)
    };

    // Large parts are worth several growth seeds — the cut they produce is
    // paid again on every matrix row above them. Small parts take one.
    let seeds: Vec<usize> = if n > 2048 {
        let mut s = vec![far_from(0), far_from(n / 3), far_from(2 * n / 3)];
        s.dedup();
        s
    } else {
        vec![far_from(0)]
    };
    let (in_a, a_count, _) = seeds
        .into_iter()
        .map(attempt)
        .min_by_key(|&(_, _, cut)| cut)
        .unwrap();

    let mut left = Vec::with_capacity(a_count);
    let mut right = Vec::with_capacity(n - a_count);
    for (i, &v) in vertices.iter().enumerate() {
        if in_a[i] {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    if left.is_empty() || right.is_empty() {
        let mid = n / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::sssp;
    use crate::network::RoadNetwork;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    #[test]
    fn single_leaf_tree_matches_dijkstra() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 16);
        assert_eq!(tree.num_nodes(), 1);
        let d0 = sssp(&net, 0);
        for v in 0..9u32 {
            assert!((tree.dist(0, v) - d0[v as usize]).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_level_tree_matches_dijkstra() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        assert!(tree.num_nodes() > 3);
        assert!(tree.height() >= 3);
        for s in [0u32, 7, 17, 35] {
            let d = sssp(&net, s);
            for v in 0..36u32 {
                assert!(
                    (tree.dist(s, v) - d[v as usize]).abs() < 1e-9,
                    "mismatch for {s}->{v}: gtree {} dijkstra {}",
                    tree.dist(s, v),
                    d[v as usize]
                );
            }
        }
    }

    #[test]
    fn leaf_regions_partition_vertices() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 5);
        let mut seen = [false; 25];
        for region in tree.leaf_regions() {
            assert!(region.len() <= 5);
            for v in region {
                assert!(!seen[v as usize], "vertex {v} in two leaves");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn disconnected_components_are_infinite() {
        let net = RoadNetwork::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let tree = GTree::build_with_capacity(&net, 4);
        assert!(tree.dist(0, 5).is_infinite());
        assert!((tree.dist(0, 2) - 2.0).abs() < 1e-9);
        assert!((tree.dist(3, 5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dist_identity_and_out_of_range() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 4);
        assert_eq!(tree.dist(4, 4), 0.0);
        assert!(tree.dist(0, 99).is_infinite());
    }

    #[test]
    fn memory_accounting_positive() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 4);
        assert!(tree.memory_bytes() > 0);
    }

    /// `build_with_params(net, cap, 2)` IS the binary-bisection reference:
    /// the multiway loop with fanout 2 performs exactly one bisection per
    /// node. The multiway tree must answer every point query identically.
    #[test]
    fn multiway_build_matches_binary_reference() {
        let net = grid(9, 9);
        let binary = GTree::build_binary_reference(&net, 6);
        for fanout in [4usize, 8] {
            let multi = GTree::build_with_params(&net, 6, fanout);
            assert!(
                multi.height() < binary.height(),
                "fanout {fanout} tree should be shallower than binary ({} vs {})",
                multi.height(),
                binary.height()
            );
            for s in [0u32, 13, 40, 77] {
                for v in 0..81u32 {
                    let a = binary.dist(s, v);
                    let b = multi.dist(s, v);
                    assert!(
                        a == b || (a - b).abs() < 1e-9,
                        "fanout {fanout} diverged from binary at {s}->{v}: {b} vs {a}"
                    );
                }
            }
        }
    }

    /// A single cross-child reweight deep in a large tree must be served by
    /// the delta-aware path: most top-node rows are patched from the old
    /// matrix rather than re-Dijkstra'd, and the result still matches a
    /// from-scratch build exactly.
    #[test]
    fn delta_aware_update_patches_top_rows() {
        let rows = 12u32;
        let cols = 12u32;
        let net = grid(rows, cols);
        let mut tree = GTree::build_with_capacity(&net, 8);
        assert!(tree.height() >= 3, "need a deep tree for this test");
        // Reweight one edge; rebuild the network with the new weight.
        let mut edges: Vec<(u32, u32, f64)> = net.edges().collect();
        let (u, v, _) = edges[edges.len() / 2];
        let idx = edges.len() / 2;
        edges[idx].2 = 9.5;
        let updated = RoadNetwork::from_edges(net.num_vertices(), &edges);
        let stats = tree.apply_edge_updates(&updated, &[EdgeUpdate::new(u, v, 9.5)]);
        assert!(stats.dirty_leaves + stats.dirty_internal >= 1);
        if stats.dirty_internal > 0 {
            // The refreshed internal nodes must not have re-Dijkstra'd every
            // row: the patched path kicked in somewhere.
            let full_rows: usize = (0..tree.num_nodes())
                .filter(|&id| !tree.children_of(id).is_empty())
                .map(|id| tree.union_borders_of(id).len())
                .sum();
            assert!(
                stats.row_dijkstras < full_rows,
                "delta update re-Dijkstra'd all {full_rows} internal rows"
            );
        }
        let fresh = GTree::build_with_capacity(&updated, 8);
        assert_eq!(tree.num_nodes(), fresh.num_nodes());
        for id in 0..tree.num_nodes() {
            let ub = tree.union_borders_of(id).len();
            for i in 0..ub {
                for j in 0..ub {
                    let a = tree.matrix_entry(id, i, j);
                    let b = fresh.matrix_entry(id, i, j);
                    assert!(
                        a == b || (a - b).abs() < 1e-9,
                        "node {id} diverged from fresh build at ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Runs the batched walk from one source over every vertex as a target.
    fn batched_from(tree: &GTree, n: usize, source: RoadVertexId, prune_at: f64) -> Vec<f64> {
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        assert_eq!(targets.num_seeds(), n);
        let mut best = vec![f64::INFINITY; n];
        let mut scratch = RangeScratch::default();
        tree.accumulate_source_distances(source, 0.0, &targets, prune_at, &mut best, &mut scratch);
        best
    }

    #[test]
    fn batched_walk_matches_point_queries_exactly() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        for s in [0u32, 7, 17, 35] {
            let best = batched_from(&tree, 36, s, f64::INFINITY);
            for v in 0..36u32 {
                let expect = tree.dist(s, v);
                assert!(
                    (best[v as usize] - expect).abs() < 1e-9,
                    "batched {s}->{v}: got {} expected {expect}",
                    best[v as usize]
                );
            }
        }
    }

    #[test]
    fn batched_walk_pruning_is_sound() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let t = 3.0;
        for s in [0u32, 17, 35] {
            let pruned = batched_from(&tree, 36, s, t);
            for v in 0..36u32 {
                let exact = tree.dist(s, v);
                if exact <= t {
                    assert!(
                        (pruned[v as usize] - exact).abs() < 1e-9,
                        "pruned walk lost an in-range target {s}->{v}"
                    );
                } else {
                    assert!(
                        pruned[v as usize] > t,
                        "pruned walk reported {} <= t for out-of-range {s}->{v}",
                        pruned[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn batched_walk_respects_offsets_and_lowers_only() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let targets = tree.group_targets([(0u32, 5u32, 0.25), (1, 10, 1.5)]);
        let mut best = vec![0.1, f64::INFINITY];
        let mut scratch = RangeScratch::default();
        tree.accumulate_source_distances(0, 0.5, &targets, f64::INFINITY, &mut best, &mut scratch);
        // item 0 already had a better candidate than 0.5 + dist + 0.25
        assert_eq!(best[0], 0.1);
        assert!((best[1] - (0.5 + tree.dist(0, 10) + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn batched_walk_on_disconnected_components() {
        let net = RoadNetwork::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let tree = GTree::build_with_capacity(&net, 4);
        let best = batched_from(&tree, 6, 0, f64::INFINITY);
        assert!((best[2] - 2.0).abs() < 1e-9);
        assert!(best[4].is_infinite() && best[5].is_infinite());
    }

    #[test]
    fn randomized_batched_agreement_with_point_queries() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(21);
        for round in 0..8 {
            let n = rng.random_range(20..90usize);
            let mut edges = Vec::new();
            for v in 0..n as u32 {
                edges.push((v, (v + 1) % n as u32, rng.random_range(1.0..5.0)));
            }
            for _ in 0..n {
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                edges.push((u, v, rng.random_range(1.0..10.0)));
            }
            let net = RoadNetwork::from_edges(n, &edges);
            let tree = GTree::build_with_capacity(&net, rng.random_range(4..12));
            let s = rng.random_range(0..n as u32);
            let best = batched_from(&tree, n, s, f64::INFINITY);
            for v in 0..n as u32 {
                let expect = tree.dist(s, v);
                assert!(
                    (best[v as usize] - expect).abs() < 1e-9,
                    "round {round}: batched {s}->{v} got {} expected {expect}",
                    best[v as usize]
                );
            }
        }
    }

    #[test]
    fn multi_seed_walk_matches_per_seed_walks() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let n = 36usize;
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        // Three seeds in distinct columns, with offsets.
        let seeds = [(0u32, 0.25, 0u32), (17, 0.0, 1), (35, 1.5, 2)];
        let cols = 3usize;
        let mut multi = vec![f64::INFINITY; n * cols];
        let mut scratch = RangeScratch::default();
        tree.accumulate_multi_source_distances(
            &seeds,
            cols,
            &targets,
            f64::INFINITY,
            &mut multi,
            &mut scratch,
        );
        for (u, soff, col) in seeds {
            let mut single = vec![f64::INFINITY; n];
            tree.accumulate_source_distances(
                u,
                soff,
                &targets,
                f64::INFINITY,
                &mut single,
                &mut scratch,
            );
            for item in 0..n {
                assert!(
                    (multi[item * cols + col as usize] - single[item]).abs() < 1e-9,
                    "seed {u} col {col} item {item}: multi {} single {}",
                    multi[item * cols + col as usize],
                    single[item]
                );
            }
        }
    }

    #[test]
    fn multi_seed_shared_column_takes_the_minimum() {
        // Two seeds feeding one column model the two endpoints of an on-edge
        // query location: the column must hold the min over both seeds.
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 5);
        let n = 25usize;
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        let seeds = [(3u32, 0.5, 0u32), (23, 0.25, 0)];
        let mut multi = vec![f64::INFINITY; n];
        let mut scratch = RangeScratch::default();
        tree.accumulate_multi_source_distances(
            &seeds,
            1,
            &targets,
            f64::INFINITY,
            &mut multi,
            &mut scratch,
        );
        for v in 0..n as u32 {
            let expect = (0.5 + tree.dist(3, v)).min(0.25 + tree.dist(23, v));
            assert!(
                (multi[v as usize] - expect).abs() < 1e-9,
                "item {v}: got {} expected {expect}",
                multi[v as usize]
            );
        }
    }

    #[test]
    fn multi_seed_pruning_is_sound_per_column() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let n = 36usize;
        let t = 3.0;
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        let seeds = [(0u32, 0.0, 0u32), (35, 0.0, 1)];
        let mut multi = vec![f64::INFINITY; n * 2];
        let mut scratch = RangeScratch::default();
        tree.accumulate_multi_source_distances(&seeds, 2, &targets, t, &mut multi, &mut scratch);
        for v in 0..n as u32 {
            for (col, s) in [(0usize, 0u32), (1, 35)] {
                let exact = tree.dist(s, v);
                let got = multi[v as usize * 2 + col];
                if exact <= t {
                    assert!(
                        (got - exact).abs() < 1e-9,
                        "pruned multi-seed walk lost in-range {s}->{v}"
                    );
                } else {
                    assert!(got > t, "multi-seed walk reported {got} <= t for {s}->{v}");
                }
            }
        }
    }

    #[test]
    fn multi_source_within_intersects_columns_in_walk() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let n = 36usize;
        let t = 4.0;
        let targets = tree.group_targets((0..n as u32).map(|v| (v, v, 0.0)));
        let seeds = [(0u32, 0.0, 0u32), (35, 0.0, 1)];
        let mut best = vec![f64::INFINITY; n * 2];
        let mut within = vec![false; n];
        let mut scratch = RangeScratch::default();
        tree.multi_source_within(&seeds, 2, &targets, t, &mut best, &mut within, &mut scratch);
        for v in 0..n as u32 {
            let expect = tree.dist(0, v) <= t && tree.dist(35, v) <= t;
            assert_eq!(within[v as usize], expect, "within mismatch for target {v}");
        }
    }

    #[test]
    fn multi_source_within_keeps_preseeded_rows_for_pruned_targets() {
        // Target 5 is far from both seeds, but its row is pre-seeded within
        // range (modelling the along-edge shortcut): the walk must keep it.
        let net = RoadNetwork::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let tree = GTree::build_with_capacity(&net, 4);
        let targets = tree.group_targets([(0u32, 2u32, 0.0), (1, 5, 0.0)]);
        let seeds = [(0u32, 0.0, 0u32)];
        let mut best = vec![f64::INFINITY; 2];
        best[1] = 0.5; // pre-seeded shortcut for item 1
        let mut within = vec![false; 2];
        let mut scratch = RangeScratch::default();
        tree.multi_source_within(
            &seeds,
            1,
            &targets,
            2.0,
            &mut best,
            &mut within,
            &mut scratch,
        );
        assert!(within[0], "item 0 is two hops from the seed");
        assert!(within[1], "pre-seeded row must survive pruning");
        assert_eq!(best[1], 0.5);
    }

    #[test]
    fn precomputed_rows_round_trip_through_ub_index() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        for id in 0..tree.num_nodes() {
            for (i, &b) in tree.borders_of(id).iter().enumerate() {
                assert_eq!(
                    tree.border_rows_of(id)[i],
                    tree.ub_position_of(id, b).unwrap()
                );
            }
            for (k, &c) in tree.children_of(id).iter().enumerate() {
                for (i, &b) in tree.borders_of(c).iter().enumerate() {
                    assert_eq!(
                        tree.child_border_rows_of(id, k)[i],
                        tree.ub_position_of(id, b).unwrap()
                    );
                }
            }
        }
        for v in 0..36u32 {
            let leaf = tree.leaf_id_of(v);
            assert_eq!(tree.union_borders_of(leaf)[tree.leaf_position_of(v)], v);
        }
    }

    #[test]
    fn incremental_reweight_matches_dijkstra_and_fresh_build() {
        use crate::network::EdgeUpdate;
        let mut edges = Vec::new();
        for r in 0..6u32 {
            for c in 0..6u32 {
                let v = r * 6 + c;
                if c + 1 < 6 {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < 6 {
                    edges.push((v, v + 6, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        let net0 = RoadNetwork::from_edges(36, &edges);
        let mut tree = GTree::build_with_capacity(&net0, 6);
        // Two rounds: an intra-leaf-ish local edge, then a batch spanning the
        // whole grid (distinct leaves -> LCA paths), then verify.
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::new(0, 1, 9.0)],
            vec![
                EdgeUpdate::new(14, 15, 0.1),
                EdgeUpdate::new(20, 26, 5.0),
                EdgeUpdate::new(0, 1, 0.5),
            ],
        ];
        for (bi, batch) in batches.iter().enumerate() {
            for upd in batch {
                let pos = edges
                    .iter()
                    .position(|&(a, b, _)| (a, b) == (upd.u, upd.v) || (a, b) == (upd.v, upd.u))
                    .unwrap();
                edges[pos].2 = upd.weight;
            }
            let net = RoadNetwork::from_edges(36, &edges);
            let stats = tree.apply_edge_updates(&net, batch);
            assert!(stats.dirty_leaves + stats.dirty_internal > 0);
            assert!(stats.dirty_leaves + stats.dirty_internal <= stats.total_nodes);
            let fresh = GTree::build_with_capacity(&net, 6);
            assert_eq!(tree.num_nodes(), fresh.num_nodes());
            for s in 0..36u32 {
                let d = sssp(&net, s);
                for v in 0..36u32 {
                    assert!(
                        (tree.dist(s, v) - d[v as usize]).abs() < 1e-9,
                        "updated tree wrong for {s}->{v}: {} vs {}",
                        tree.dist(s, v),
                        d[v as usize]
                    );
                }
            }
            for id in 0..tree.num_nodes() {
                for i in 0..tree.union_borders_of(id).len() {
                    for j in 0..tree.union_borders_of(id).len() {
                        let a = tree.matrix_entry(id, i, j);
                        let b = fresh.matrix_entry(id, i, j);
                        assert!(
                            a == b || (a - b).abs() < 1e-9,
                            "batch {bi} node {id} matrix diverged from fresh build at ({i},{j}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_update_leaves_untouched_nodes_alone() {
        use crate::network::EdgeUpdate;
        // Two disconnected chains land in separate subtrees: reweighting an
        // edge of one must not recompute the other's leaves.
        let net0 = RoadNetwork::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
            ],
        );
        let mut tree = GTree::build_with_capacity(&net0, 4);
        let mut net = net0.clone();
        net.set_edge_weight(0, 1, 3.0).unwrap();
        let stats = tree.apply_edge_updates(&net, &[EdgeUpdate::new(0, 1, 3.0)]);
        // Endpoints share a leaf: exactly one dirty leaf plus its ancestors.
        assert_eq!(stats.dirty_leaves, 1);
        assert!((tree.dist(0, 3) - 5.0).abs() < 1e-9);
        assert!((tree.dist(4, 7) - 3.0).abs() < 1e-9);
        assert!(tree.dist(0, 7).is_infinite());
    }

    #[test]
    fn target_seed_add_remove_round_trip() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 5);
        let mut targets = tree.group_targets((0..25u32).map(|v| (v, v, 0.0)));
        let reference = tree.group_targets((0..25u32).map(|v| (v, v, 0.0)));
        // Move item 7 from vertex 7 to vertex 22 (remove + add), then back.
        let removed = tree.remove_target_item(&mut targets, 7, &[7]);
        assert_eq!(removed, 1);
        tree.add_target_seeds(&mut targets, [(7u32, 22u32, 0.25)]);
        let moved =
            tree.group_targets(
                (0..25u32).map(|v| if v == 7 { (v, 22, 0.25) } else { (v, v, 0.0) }),
            );
        assert_eq!(targets.num_seeds(), moved.num_seeds());
        assert_eq!(targets.occupied, moved.occupied);
        tree.remove_target_item(&mut targets, 7, &[22]);
        tree.add_target_seeds(&mut targets, [(7u32, 7u32, 0.0)]);
        assert_eq!(targets.num_seeds(), reference.num_seeds());
        assert_eq!(targets.occupied, reference.occupied);
        for leaf in 0..tree.num_nodes() {
            let mut a = targets.per_leaf[leaf].to_vec();
            let mut b = reference.per_leaf[leaf].to_vec();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "leaf {leaf} seeds diverged after round trip");
        }
        // Removing a two-seed on-edge item whose seeds share a leaf must not
        // double-decrement occupancy.
        let mut t2 = tree.group_targets([(0u32, 1u32, 0.5), (0, 2, 0.5), (1, 24, 0.0)]);
        let removed = tree.remove_target_item(&mut t2, 0, &[1, 2]);
        assert_eq!(removed, 2);
        assert_eq!(t2.num_seeds(), 1);
        let only = tree.group_targets([(1u32, 24u32, 0.0)]);
        assert_eq!(t2.occupied, only.occupied);
    }

    #[test]
    fn updated_tree_serves_batched_walks() {
        use crate::network::EdgeUpdate;
        let net0 = grid(6, 6);
        let mut tree = GTree::build_with_capacity(&net0, 6);
        let mut net = net0.clone();
        net.set_edge_weight(17, 23, 0.05).unwrap();
        net.set_edge_weight(0, 6, 4.0).unwrap();
        tree.apply_edge_updates(
            &net,
            &[EdgeUpdate::new(17, 23, 0.05), EdgeUpdate::new(0, 6, 4.0)],
        );
        let targets = tree.group_targets((0..36u32).map(|v| (v, v, 0.0)));
        let mut best = vec![f64::INFINITY; 36];
        let mut scratch = RangeScratch::default();
        tree.accumulate_source_distances(17, 0.0, &targets, 3.0, &mut best, &mut scratch);
        let d = sssp(&net, 17);
        for v in 0..36u32 {
            let exact = d[v as usize];
            if exact <= 3.0 {
                assert!(
                    (best[v as usize] - exact).abs() < 1e-9,
                    "walk on updated tree lost in-range 17->{v}"
                );
            } else {
                assert!(best[v as usize] > 3.0);
            }
        }
    }

    #[test]
    fn randomized_agreement_with_dijkstra() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60usize;
        let mut edges = Vec::new();
        // random connected-ish sparse graph: a ring plus chords
        for v in 0..n as u32 {
            edges.push((v, (v + 1) % n as u32, rng.random_range(1.0..5.0)));
        }
        for _ in 0..40 {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            edges.push((u, v, rng.random_range(1.0..10.0)));
        }
        let net = RoadNetwork::from_edges(n, &edges);
        let tree = GTree::build_with_capacity(&net, 8);
        for _ in 0..30 {
            let s = rng.random_range(0..n as u32);
            let t = rng.random_range(0..n as u32);
            let d = sssp(&net, s);
            assert!(
                (tree.dist(s, t) - d[t as usize]).abs() < 1e-9,
                "mismatch {s}->{t}: gtree {} dijkstra {}",
                tree.dist(s, t),
                d[t as usize]
            );
        }
    }
}

//! The Lemma-1 range filter as a first-class layer.
//!
//! The MAC search opens with a set question, not a point question: *which
//! users are within query distance `t`*? Earlier revisions answered it by
//! probing the [`DistanceOracle`] once per user, which wastes the structure of
//! the problem — the filter evaluates **one** small query set against **all**
//! user locations. [`RangeFilter`] makes that set operation the unit of
//! dispatch, with three interchangeable strategies:
//!
//! * [`RangeFilter::DijkstraSweep`] — one t-bounded multi-source sweep per
//!   query location over the road graph; the strongest baseline at laptop
//!   scale, linear in the edges within radius `t`.
//! * [`RangeFilter::GTreePoint`] — the per-user G-tree point oracle of PR 1,
//!   kept selectable for equivalence testing and for the regime the paper
//!   measures (few users, continent-scale road networks).
//! * [`RangeFilter::GTreeLeafBatched`] — the leaf-batched G-tree evaluation:
//!   one climb per query seed, entry vectors pushed top-down, subtrees beyond
//!   `t` pruned wholesale, and every occupied leaf evaluated with a single
//!   pass over its border rows ([`GTree::accumulate_source_distances`]).
//!
//! All three are exact and must return identical user sets; the integration
//! property tests (`tests/range_filter_equivalence.rs`) enforce this.

use crate::gtree::{GTree, RangeScratch};
use crate::network::{Location, RoadNetwork};
use crate::oracle::{along_edge_distance, location_seeds, DistanceOracle};
use crate::querydist::QueryDistanceIndex;

/// Which range-filter strategy a query should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeFilterChoice {
    /// Let the network pick. Currently resolves to the bounded Dijkstra
    /// sweep — the measured fastest at every generatable dataset scale
    /// (`BENCH_PR2.json`): its cost is the radius-t ball, which stays tiny on
    /// laptop-scale road networks. The G-tree strategies remain explicitly
    /// selectable for the paper's continent-scale regime, where sweeping the
    /// ball is the expensive part.
    #[default]
    Auto,
    /// Always run one t-bounded Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user G-tree point queries; falls back to Dijkstra without an index.
    GTreePoint,
    /// Leaf-batched G-tree evaluation; falls back to Dijkstra without an index.
    GTreeLeafBatched,
}

/// An exact "users within t" filter (Lemma 1) over the road network.
#[derive(Debug)]
pub enum RangeFilter<'a> {
    /// One bounded multi-source Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user point queries against a prebuilt G-tree.
    GTreePoint(&'a GTree),
    /// Leaf-batched evaluation against a prebuilt G-tree.
    GTreeLeafBatched(&'a GTree),
}

impl<'a> RangeFilter<'a> {
    /// Short label for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RangeFilter::DijkstraSweep => "dijkstra-sweep",
            RangeFilter::GTreePoint(_) => "gtree-point",
            RangeFilter::GTreeLeafBatched(_) => "gtree-leaf-batched",
        }
    }

    /// Lemma-1 set filter: `result[v]` is `true` iff user `v` is within
    /// network distance `t` of **every** query location (`D_Q(v) <= t`).
    pub fn users_within(
        &self,
        net: &RoadNetwork,
        query_locations: &[Location],
        t: f64,
        user_locations: &[Location],
    ) -> Vec<bool> {
        match self {
            RangeFilter::DijkstraSweep => {
                let qdi = QueryDistanceIndex::build(net, query_locations, Some(t));
                qdi.within_threshold(user_locations, t)
            }
            RangeFilter::GTreePoint(tree) => {
                let oracle = DistanceOracle::GTree(tree);
                let qdi =
                    QueryDistanceIndex::build_with_oracle(net, &oracle, query_locations, Some(t));
                qdi.within_threshold(user_locations, t)
            }
            RangeFilter::GTreeLeafBatched(tree) => {
                leaf_batched_within(tree, net, query_locations, t, user_locations)
            }
        }
    }
}

/// The leaf-batched strategy: group the user seeds by leaf once, then run one
/// pruned top-down walk per query seed, intersecting the per-query-location
/// threshold predicates.
fn leaf_batched_within(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
) -> Vec<bool> {
    let n = user_locations.len();
    let mut within = vec![true; n];
    if n == 0 {
        return within;
    }
    let targets = tree.group_targets(user_locations.iter().enumerate().flat_map(|(i, loc)| {
        location_seeds(net, loc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
            .map(move |(v, off)| (i as u32, v, off))
    }));
    let mut scratch = RangeScratch::default();
    let mut best = vec![f64::INFINITY; n];
    for qloc in query_locations {
        // Seed each user with the along-edge shortcut (exact when both points
        // share an edge; INFINITY otherwise), then lower through the tree.
        for (b, uloc) in best.iter_mut().zip(user_locations) {
            *b = along_edge_distance(qloc, uloc);
        }
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            tree.accumulate_source_distances(sv, soff, &targets, t, &mut best, &mut scratch);
        }
        for (w, &d) in within.iter_mut().zip(&best) {
            if d > t {
                *w = false;
            }
        }
    }
    within
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    fn all_filters(tree: &GTree) -> [RangeFilter<'_>; 3] {
        [
            RangeFilter::DijkstraSweep,
            RangeFilter::GTreePoint(tree),
            RangeFilter::GTreeLeafBatched(tree),
        ]
    }

    #[test]
    fn strategies_agree_on_vertex_users() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 6);
        let users: Vec<Location> = (0..25u32).map(Location::vertex).collect();
        let q = [Location::vertex(0), Location::vertex(12)];
        for t in [0.0, 1.0, 2.5, 4.0, 100.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn strategies_agree_on_edge_users_and_edge_queries() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let users = vec![
            Location::vertex(0),
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 0.25,
            },
            Location::OnEdge {
                u: 4,
                v: 5,
                offset: 0.75,
            },
            Location::vertex(15),
        ];
        let q = [Location::OnEdge {
            u: 0,
            v: 1,
            offset: 0.5,
        }];
        for t in [0.2, 0.25, 1.0, 3.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 4);
        for filter in all_filters(&tree) {
            assert!(filter
                .users_within(&net, &[Location::vertex(0)], 1.0, &[])
                .is_empty());
        }
    }
}

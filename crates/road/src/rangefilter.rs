//! The Lemma-1 range filter as a first-class layer.
//!
//! The MAC search opens with a set question, not a point question: *which
//! users are within query distance `t`*? Earlier revisions answered it by
//! probing the [`DistanceOracle`] once per user, which wastes the structure of
//! the problem — the filter evaluates **one** small query set against **all**
//! user locations. [`RangeFilter`] makes that set operation the unit of
//! dispatch, with four interchangeable strategies:
//!
//! * [`RangeFilter::DijkstraSweep`] — one t-bounded multi-source sweep per
//!   query location over the road graph; the strongest baseline at laptop
//!   scale, linear in the edges within radius `t`.
//! * [`RangeFilter::GTreePoint`] — the per-user G-tree point oracle of PR 1,
//!   kept selectable for equivalence testing and for the regime the paper
//!   measures (few users, continent-scale road networks).
//! * [`RangeFilter::GTreeLeafBatched`] — the PR-2 per-seed leaf-batched
//!   G-tree evaluation: one pruned top-down walk **per query seed**, merged
//!   per query location ([`GTree::accumulate_source_distances`]).
//! * [`RangeFilter::GTreeMultiSeedBatched`] — the multi-seed walk: **all**
//!   query seeds fold into a single top-down pass with per-seed entry
//!   columns; a subtree is pruned only when every seed is out of range, each
//!   occupied leaf is evaluated once against all columns, and the Lemma-1
//!   intersection is maintained in-walk
//!   ([`GTree::multi_source_within`]).
//!
//! All four are exact and must return identical user sets; the integration
//! property tests (`tests/range_filter_equivalence.rs`) enforce this.
//! [`resolve_auto`] turns `Auto` into a concrete strategy from the measured
//! sweep/batched crossover.

use crate::budget::BudgetTicker;
use crate::dijkstra::{distance_to_location, SsspScratch};
use crate::gtree::{GTree, LeafTargets, RangeScratch};
use crate::network::{Location, RoadNetwork, RoadVertexId};
use crate::oracle::{along_edge_distance, location_seeds, DistanceOracle};
use crate::querydist::QueryDistanceIndex;

/// Which range-filter strategy a query should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeFilterChoice {
    /// Let the network pick from the measured crossover ([`resolve_auto`]):
    /// the bounded Dijkstra sweep when the radius-t ball is small (every
    /// laptop-scale preset), the multi-seed batched G-tree walk when an
    /// index exists and the estimated ball dwarfs the indexed work
    /// (`BENCH_PR3.json` records the crossover measurements).
    #[default]
    Auto,
    /// Always run one t-bounded Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user G-tree point queries; falls back to Dijkstra without an index.
    GTreePoint,
    /// Per-seed leaf-batched G-tree evaluation (the PR-2 path); falls back to
    /// Dijkstra without an index.
    GTreeLeafBatched,
    /// Multi-seed leaf-batched G-tree evaluation — one walk for all query
    /// seeds; falls back to Dijkstra without an index.
    GTreeMultiSeedBatched,
}

impl RangeFilterChoice {
    /// Short label for benchmark and diagnostic output; resolved strategies
    /// share the vocabulary of [`RangeFilter::name`].
    pub fn name(&self) -> &'static str {
        match self {
            RangeFilterChoice::Auto => "auto",
            RangeFilterChoice::DijkstraSweep => "dijkstra-sweep",
            RangeFilterChoice::GTreePoint => "gtree-point",
            RangeFilterChoice::GTreeLeafBatched => "gtree-leaf-batched",
            RangeFilterChoice::GTreeMultiSeedBatched => "gtree-multi-seed-batched",
        }
    }
}

/// Reusable buffers for repeated range-filter evaluations.
///
/// A fresh [`RangeFilter::users_within`] call allocates the buffers its
/// strategy needs every time — a `|V_road|`-sized Dijkstra distance field (or
/// a `|Q| × |V_road|` matrix on the sweep path of the legacy
/// `QueryDistanceIndex`), the G-tree walk's entry-column matrices, and the
/// per-user best-distance rows. A `FilterScratch` owns all of them and is
/// handed to [`RangeFilter::users_within_with`], so a serving loop that
/// issues many queries against one network reaches an allocation-free steady
/// state once the buffers have grown to the network size.
#[derive(Debug, Default)]
pub struct FilterScratch {
    /// Bounded-sweep Dijkstra state (distance field + heap + touched list).
    sssp: SsspScratch,
    /// G-tree walk state (entry-column matrices + per-seed locals).
    range: RangeScratch,
    /// Item-major best-distance matrix of the batched walks.
    best: Vec<f64>,
    /// Flattened `(vertex, offset, column)` source seeds of a walk.
    seeds: Vec<(RoadVertexId, f64, u32)>,
}

impl FilterScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        FilterScratch::default()
    }
}

/// An exact "users within t" filter (Lemma 1) over the road network.
#[derive(Debug)]
pub enum RangeFilter<'a> {
    /// One bounded multi-source Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user point queries against a prebuilt G-tree.
    GTreePoint(&'a GTree),
    /// Per-seed leaf-batched evaluation against a prebuilt G-tree.
    GTreeLeafBatched(&'a GTree),
    /// Multi-seed leaf-batched evaluation against a prebuilt G-tree.
    GTreeMultiSeedBatched(&'a GTree),
}

impl<'a> RangeFilter<'a> {
    /// Short label for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RangeFilter::DijkstraSweep => "dijkstra-sweep",
            RangeFilter::GTreePoint(_) => "gtree-point",
            RangeFilter::GTreeLeafBatched(_) => "gtree-leaf-batched",
            RangeFilter::GTreeMultiSeedBatched(_) => "gtree-multi-seed-batched",
        }
    }

    /// Lemma-1 set filter: `result[v]` is `true` iff user `v` is within
    /// network distance `t` of **every** query location (`D_Q(v) <= t`).
    ///
    /// Allocates fresh working buffers per call; serving loops should hold a
    /// [`FilterScratch`] and call
    /// [`users_within_with`](Self::users_within_with) instead.
    pub fn users_within(
        &self,
        net: &RoadNetwork,
        query_locations: &[Location],
        t: f64,
        user_locations: &[Location],
    ) -> Vec<bool> {
        let mut scratch = FilterScratch::new();
        let mut out = Vec::new();
        self.users_within_with(
            net,
            query_locations,
            t,
            user_locations,
            None,
            &mut scratch,
            &mut out,
        );
        out
    }

    /// Lemma-1 set filter writing into `out`, reusing `scratch` buffers across
    /// calls (see [`FilterScratch`]) — identical results to
    /// [`users_within`](Self::users_within).
    ///
    /// `targets` optionally supplies the user seeds already grouped by G-tree
    /// leaf ([`group_user_targets`]); the grouping depends only on the tree
    /// and the user locations, so a prepared engine computes it once per
    /// network instead of once per query. It is ignored by the non-batched
    /// strategies, and the batched strategies group on the fly when `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn users_within_with(
        &self,
        net: &RoadNetwork,
        query_locations: &[Location],
        t: f64,
        user_locations: &[Location],
        targets: Option<&LeafTargets>,
        scratch: &mut FilterScratch,
        out: &mut Vec<bool>,
    ) {
        let n = user_locations.len();
        out.clear();
        out.resize(n, true);
        if n == 0 {
            return;
        }
        match self {
            RangeFilter::DijkstraSweep => {
                // One t-bounded sweep per query location, evaluated straight
                // off the scratch's distance field — no |Q| x |V| matrix.
                for qloc in query_locations {
                    let field = scratch
                        .sssp
                        .run(net, &location_seeds(net, qloc), Some(t), None);
                    for (w, uloc) in out.iter_mut().zip(user_locations) {
                        if *w {
                            let d = distance_to_location(net, field, uloc)
                                .min(along_edge_distance(qloc, uloc));
                            if d > t {
                                *w = false;
                            }
                        }
                    }
                }
            }
            RangeFilter::GTreePoint(tree) => {
                // The per-user point path is kept for equivalence testing and
                // the legacy oracle knob; its per-query source climbs are
                // small and not worth pooling.
                let oracle = DistanceOracle::GTree(tree);
                let qdi =
                    QueryDistanceIndex::build_with_oracle(net, &oracle, query_locations, Some(t));
                for (w, loc) in out.iter_mut().zip(user_locations) {
                    *w = qdi.query_distance(loc) <= t;
                }
            }
            RangeFilter::GTreeLeafBatched(tree) => {
                let owned;
                let targets = match targets {
                    Some(targets) => targets,
                    None => {
                        owned = group_user_targets(tree, net, user_locations);
                        &owned
                    }
                };
                leaf_batched_within(
                    tree,
                    net,
                    query_locations,
                    t,
                    user_locations,
                    targets,
                    scratch,
                    out,
                );
            }
            RangeFilter::GTreeMultiSeedBatched(tree) => {
                let owned;
                let targets = match targets {
                    Some(targets) => targets,
                    None => {
                        owned = group_user_targets(tree, net, user_locations);
                        &owned
                    }
                };
                multi_seed_batched_within(
                    tree,
                    net,
                    query_locations,
                    t,
                    user_locations,
                    targets,
                    scratch,
                    out,
                );
            }
        }
    }

    /// Budgeted [`users_within_with`](Self::users_within_with): identical
    /// results when it completes, but every strategy charges `ticker` as it
    /// goes (settled Dijkstra vertices, walked G-tree cells, evaluated users)
    /// and aborts cooperatively on exhaustion. Returns `true` when the filter
    /// ran to completion; on `false` the contents of `out` are unspecified
    /// and the caller must treat the query as budget-exhausted. The scratch
    /// stays reusable either way.
    #[allow(clippy::too_many_arguments)]
    pub fn users_within_with_budget(
        &self,
        net: &RoadNetwork,
        query_locations: &[Location],
        t: f64,
        user_locations: &[Location],
        targets: Option<&LeafTargets>,
        scratch: &mut FilterScratch,
        out: &mut Vec<bool>,
        ticker: &mut BudgetTicker,
    ) -> bool {
        let n = user_locations.len();
        out.clear();
        out.resize(n, true);
        if n == 0 {
            return ticker.charge(1);
        }
        match self {
            RangeFilter::DijkstraSweep => {
                for qloc in query_locations {
                    if !scratch.sssp.run_budgeted(
                        net,
                        &location_seeds(net, qloc),
                        Some(t),
                        None,
                        ticker,
                    ) {
                        return false;
                    }
                    // The per-user evaluation is one pass over the distance
                    // field; charge it as a lump at the loop boundary.
                    if !ticker.charge(n as u64) {
                        return false;
                    }
                    let field = scratch.sssp.dist();
                    for (w, uloc) in out.iter_mut().zip(user_locations) {
                        if *w {
                            let d = distance_to_location(net, field, uloc)
                                .min(along_edge_distance(qloc, uloc));
                            if d > t {
                                *w = false;
                            }
                        }
                    }
                }
                true
            }
            RangeFilter::GTreePoint(tree) => {
                let oracle = DistanceOracle::GTree(tree);
                let qdi =
                    QueryDistanceIndex::build_with_oracle(net, &oracle, query_locations, Some(t));
                for (w, loc) in out.iter_mut().zip(user_locations) {
                    if !ticker.charge(1) {
                        return false;
                    }
                    *w = qdi.query_distance(loc) <= t;
                }
                true
            }
            RangeFilter::GTreeLeafBatched(tree) => {
                let owned;
                let targets = match targets {
                    Some(targets) => targets,
                    None => {
                        owned = group_user_targets(tree, net, user_locations);
                        &owned
                    }
                };
                leaf_batched_within_budgeted(
                    tree,
                    net,
                    query_locations,
                    t,
                    user_locations,
                    targets,
                    scratch,
                    out,
                    ticker,
                )
            }
            RangeFilter::GTreeMultiSeedBatched(tree) => {
                let owned;
                let targets = match targets {
                    Some(targets) => targets,
                    None => {
                        owned = group_user_targets(tree, net, user_locations);
                        &owned
                    }
                };
                multi_seed_batched_within_budgeted(
                    tree,
                    net,
                    query_locations,
                    t,
                    user_locations,
                    targets,
                    scratch,
                    out,
                    ticker,
                )
            }
        }
    }
}

/// Groups the user seeds by G-tree leaf (shared by both batched strategies):
/// an on-edge user contributes a seed at each endpoint. The grouping depends
/// only on the tree and the user locations — a prepared engine builds it once
/// per network and passes it to every
/// [`RangeFilter::users_within_with`] call.
pub fn group_user_targets(
    tree: &GTree,
    net: &RoadNetwork,
    user_locations: &[Location],
) -> LeafTargets {
    tree.group_targets(user_locations.iter().enumerate().flat_map(|(i, loc)| {
        location_seeds(net, loc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
            .map(move |(v, off)| (i as u32, v, off))
    }))
}

/// Removes the grouped seeds of one user from a [`group_user_targets`]
/// grouping, given the location the user held when the grouping was built
/// (its endpoints name the leaves holding the user's rows). Returns the
/// number of seeds removed. Incremental counterpart of rebuilding the
/// grouping after a user departs or moves.
pub fn remove_user_target(
    tree: &GTree,
    net: &RoadNetwork,
    targets: &mut LeafTargets,
    user: u32,
    old_location: &Location,
) -> usize {
    let seeds = location_seeds(net, old_location);
    let vertices: Vec<crate::network::RoadVertexId> = seeds.into_iter().map(|(v, _)| v).collect();
    tree.remove_target_item(targets, user, &vertices)
}

/// Adds one user's seeds at `location` to a [`group_user_targets`] grouping
/// (same per-seed semantics: an on-edge user contributes a seed at each
/// endpoint with the current partial-edge offsets). Incremental counterpart
/// of rebuilding the grouping after a user arrives or moves — and the
/// refresh path after an edge reweight changes an on-edge user's
/// far-endpoint offset (remove, then re-add at the same location).
pub fn add_user_target(
    tree: &GTree,
    net: &RoadNetwork,
    targets: &mut LeafTargets,
    user: u32,
    location: &Location,
) {
    tree.add_target_seeds(
        targets,
        location_seeds(net, location)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
            .map(|(v, off)| (user, v, off)),
    );
}

/// The PR-2 per-seed leaf-batched strategy: one pruned top-down walk per
/// query seed over the pre-grouped user targets, intersecting the
/// per-query-location threshold predicates in this merge loop. Kept as the
/// baseline the multi-seed walk is measured against.
#[allow(clippy::too_many_arguments)]
fn leaf_batched_within(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
    targets: &LeafTargets,
    scratch: &mut FilterScratch,
    within: &mut [bool],
) {
    let n = user_locations.len();
    let best = &mut scratch.best;
    best.clear();
    best.resize(n, f64::INFINITY);
    for qloc in query_locations {
        // Seed each user with the along-edge shortcut (exact when both points
        // share an edge; INFINITY otherwise), then lower through the tree.
        for (b, uloc) in best.iter_mut().zip(user_locations) {
            *b = along_edge_distance(qloc, uloc);
        }
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            tree.accumulate_source_distances(sv, soff, targets, t, best, &mut scratch.range);
        }
        for (w, &d) in within.iter_mut().zip(best.iter()) {
            if d > t {
                *w = false;
            }
        }
    }
}

/// Budgeted [`leaf_batched_within`]: the per-seed walks run through
/// [`GTree::accumulate_source_distances_budgeted`] and the per-user merge
/// loops are charged as lumps. Returns `false` on exhaustion, leaving
/// `within` partially updated (the caller discards it).
#[allow(clippy::too_many_arguments)]
fn leaf_batched_within_budgeted(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
    targets: &LeafTargets,
    scratch: &mut FilterScratch,
    within: &mut [bool],
    ticker: &mut BudgetTicker,
) -> bool {
    let n = user_locations.len();
    let best = &mut scratch.best;
    best.clear();
    best.resize(n, f64::INFINITY);
    for qloc in query_locations {
        if !ticker.charge(n as u64) {
            return false;
        }
        for (b, uloc) in best.iter_mut().zip(user_locations) {
            *b = along_edge_distance(qloc, uloc);
        }
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            if !tree.accumulate_source_distances_budgeted(
                sv,
                soff,
                targets,
                t,
                best,
                &mut scratch.range,
                ticker,
            ) {
                return false;
            }
        }
        for (w, &d) in within.iter_mut().zip(best.iter()) {
            if d > t {
                *w = false;
            }
        }
    }
    true
}

/// The multi-seed strategy: all query seeds fold into **one** top-down walk
/// with per-seed entry columns (seeds of the same query location share an
/// output column), and the Lemma-1 intersection is maintained in-walk by
/// [`GTree::multi_source_within`]. The per-user rows are pre-seeded with the
/// along-edge shortcuts, so users in pruned subtrees keep their exact
/// same-edge memberships.
#[allow(clippy::too_many_arguments)]
fn multi_seed_batched_within(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
    targets: &LeafTargets,
    scratch: &mut FilterScratch,
    within: &mut [bool],
) {
    let n = user_locations.len();
    let cols = query_locations.len();
    if cols == 0 {
        return;
    }
    let seeds = &mut scratch.seeds;
    seeds.clear();
    for (q, qloc) in query_locations.iter().enumerate() {
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            seeds.push((sv, soff, q as u32));
        }
    }
    let best = &mut scratch.best;
    best.clear();
    best.resize(n * cols, f64::INFINITY);
    for (i, uloc) in user_locations.iter().enumerate() {
        for (q, qloc) in query_locations.iter().enumerate() {
            best[i * cols + q] = along_edge_distance(qloc, uloc);
        }
    }
    tree.multi_source_within(seeds, cols, targets, t, best, within, &mut scratch.range);
}

/// Budgeted [`multi_seed_batched_within`]: the pre-seeding pass is charged as
/// a lump and the walk runs through [`GTree::multi_source_within_budgeted`].
/// Returns `false` on exhaustion, leaving `within` partially updated (the
/// caller discards it).
#[allow(clippy::too_many_arguments)]
fn multi_seed_batched_within_budgeted(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
    targets: &LeafTargets,
    scratch: &mut FilterScratch,
    within: &mut [bool],
    ticker: &mut BudgetTicker,
) -> bool {
    let n = user_locations.len();
    let cols = query_locations.len();
    if cols == 0 {
        return ticker.charge(1);
    }
    if !ticker.charge((n * cols) as u64) {
        return false;
    }
    let seeds = &mut scratch.seeds;
    seeds.clear();
    for (q, qloc) in query_locations.iter().enumerate() {
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            seeds.push((sv, soff, q as u32));
        }
    }
    let best = &mut scratch.best;
    best.clear();
    best.resize(n * cols, f64::INFINITY);
    for (i, uloc) in user_locations.iter().enumerate() {
        for (q, qloc) in query_locations.iter().enumerate() {
            best[i * cols + q] = along_edge_distance(qloc, uloc);
        }
    }
    tree.multi_source_within_budgeted(
        seeds,
        cols,
        targets,
        t,
        best,
        within,
        &mut scratch.range,
        ticker,
    )
}

/// Sweep-vs-batched conversion factor of [`resolve_auto`]'s cost model,
/// calibrated from the `BENCH_PR3.json` crossover measurements: one modeled
/// sweep relaxation (a heap operation plus an edge scan) costs about as much
/// as this many batched matrix-cell touches (the measured unit costs were
/// ~10 ns per batched cell and ~40 ns per modeled sweep relaxation on the
/// recorder machine). Lowering the constant makes `Auto` keep the sweep
/// longer. This is the *analytic fallback*; a prepared engine measures the
/// constant per network at build time (see [`AutoCalibration`]).
pub const AUTO_SWEEP_CELL_COST: f64 = 16.0;

/// Bounds for a measured [`AutoCalibration::sweep_cell_cost`]: a ratio
/// outside this range means the probe timings were dominated by noise (a
/// sub-microsecond measurement on a tiny network), so callers clamp into it.
pub const AUTO_SWEEP_CELL_COST_BOUNDS: (f64, f64) = (0.5, 512.0);

/// Per-network calibration of the `Auto` range-filter resolution.
///
/// The cost model of [`resolve_auto`] compares modeled sweep relaxations
/// against modeled batched matrix-cell touches; the one free parameter is the
/// conversion factor between the two units. The analytic default
/// ([`AUTO_SWEEP_CELL_COST`]) was fitted on one recorder machine — a prepared
/// engine instead *measures* it on the actual network and hardware at build
/// time: one timed t-bounded sweep and one timed multi-seed walk over the
/// same probe query, each divided by its modeled unit count, give the
/// measured cost of a sweep relaxation in batched-cell units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoCalibration {
    /// Measured (or analytic-default) cost of one sweep relaxation in
    /// batched-cell units. Higher values make `Auto` abandon the sweep
    /// earlier.
    pub sweep_cell_cost: f64,
}

impl Default for AutoCalibration {
    fn default() -> Self {
        AutoCalibration {
            sweep_cell_cost: AUTO_SWEEP_CELL_COST,
        }
    }
}

impl AutoCalibration {
    /// Builds a calibration from one timed sweep and one timed multi-seed
    /// walk over the same probe configuration, whose modeled unit counts are
    /// `sweep_relaxations` / `batched_cells` (from [`auto_cost_estimates`]).
    /// Falls back to the analytic default when either measurement is too
    /// small to trust (noise floor) and clamps the ratio into
    /// [`AUTO_SWEEP_CELL_COST_BOUNDS`].
    pub fn from_probe(
        sweep_seconds: f64,
        sweep_relaxations: f64,
        walk_seconds: f64,
        batched_cells: f64,
    ) -> Self {
        const NOISE_FLOOR_SECONDS: f64 = 1e-6;
        if !(sweep_seconds.is_finite() && walk_seconds.is_finite())
            || sweep_seconds < NOISE_FLOOR_SECONDS
            || walk_seconds < NOISE_FLOOR_SECONDS
            || sweep_relaxations <= 0.0
            || batched_cells <= 0.0
        {
            return AutoCalibration::default();
        }
        let sweep_unit = sweep_seconds / sweep_relaxations;
        let walk_unit = walk_seconds / batched_cells;
        let (lo, hi) = AUTO_SWEEP_CELL_COST_BOUNDS;
        AutoCalibration {
            sweep_cell_cost: (sweep_unit / walk_unit).clamp(lo, hi),
        }
    }

    /// Whether this calibration differs from the analytic default (i.e. a
    /// probe measurement was accepted).
    pub fn is_measured(&self) -> bool {
        self.sweep_cell_cost != AUTO_SWEEP_CELL_COST
    }
}

/// Calibrated `Auto` resolution for the Lemma-1 range filter.
///
/// The sweep's cost is the radius-`t` ball: every vertex within distance `t`
/// of a query location is settled once per location, so it grows with `t`
/// and is independent of the index. The multi-seed batched walk instead pays
/// in distance-matrix cells: the entry-column extensions over the occupied
/// part of the hierarchy (at most one pass over the matrices, whatever `t`
/// is) plus one border-row pass per user seed — independent of how many
/// road vertices the ball covers. `Auto` estimates both in common units:
///
/// * ball estimate — `t` over a sampled average edge weight gives the ball
///   radius in hops; the ball then grows quadratically (`~2·hops²`,
///   grid-like fill) but no faster than `2·hops` times the network's
///   separator width, probed as the G-tree root cut (corridor-like networks
///   have tiny cuts and near-linear growth), capped at `|V|`;
/// * sweep estimate — `|Q| · ball · avg_degree` edge relaxations, each worth
///   [`AUTO_SWEEP_CELL_COST`] matrix cells;
/// * batched estimate — per seed, the walk's fixed floor (the root-level
///   entry extension, paid regardless of occupancy) plus the
///   occupancy-scaled share of all entry extensions, plus each user seed's
///   leaf border rows for all `|Q|` columns.
///
/// The crossover measurements (`BENCH_PR3.json`) show what this model
/// encodes: on grid-like road networks the walk's fixed floor grows with
/// the same `√|V|` cut that makes the ball expensive, so the sweep wins at
/// every generatable scale and `Auto` keeps it; on small-separator
/// (corridor/highway-like) networks the floor collapses and the batched
/// walk wins as soon as the ball is large, so `Auto` switches. A network
/// without an index always resolves to the sweep. The regression tests pin
/// both directions so heuristic edits cannot silently flip laptop-scale
/// queries off the sweep.
pub fn resolve_auto(
    net: &RoadNetwork,
    tree: Option<&GTree>,
    num_query_locations: usize,
    t: f64,
    num_users: usize,
) -> RangeFilterChoice {
    resolve_auto_calibrated(
        net,
        tree,
        num_query_locations,
        t,
        num_users,
        &AutoCalibration::default(),
    )
}

/// [`resolve_auto`] with an explicit (typically measured) [`AutoCalibration`]
/// instead of the analytic default constant.
pub fn resolve_auto_calibrated(
    net: &RoadNetwork,
    tree: Option<&GTree>,
    num_query_locations: usize,
    t: f64,
    num_users: usize,
    calibration: &AutoCalibration,
) -> RangeFilterChoice {
    let Some(tree) = tree else {
        return RangeFilterChoice::DijkstraSweep;
    };
    let Some((sweep_relaxations, batched_cells)) =
        auto_cost_estimates(net, tree, num_query_locations, t, num_users)
    else {
        return RangeFilterChoice::DijkstraSweep;
    };
    if sweep_relaxations * calibration.sweep_cell_cost > batched_cells {
        RangeFilterChoice::GTreeMultiSeedBatched
    } else {
        RangeFilterChoice::DijkstraSweep
    }
}

/// The raw unit counts of the `Auto` cost model for one configuration:
/// `(modeled sweep edge-relaxations, modeled batched matrix-cell touches)`.
/// The two are in *different* units — [`AutoCalibration::sweep_cell_cost`]
/// converts between them. Returns `None` for degenerate configurations
/// (empty network / query / user set, or no usable edge-weight sample),
/// where `Auto` always resolves to the sweep.
pub fn auto_cost_estimates(
    net: &RoadNetwork,
    tree: &GTree,
    num_query_locations: usize,
    t: f64,
    num_users: usize,
) -> Option<(f64, f64)> {
    let n = net.num_vertices();
    if n == 0 || num_query_locations == 0 || num_users == 0 {
        return None;
    }
    let avg_w = sampled_avg_edge_weight(net);
    if !avg_w.is_finite() || avg_w <= 0.0 {
        return None;
    }
    let hops = t / avg_w;
    // Separator-width probe: the widest child cut at the G-tree root.
    let sep = tree
        .children_of(tree.root_id())
        .iter()
        .map(|&c| tree.borders_of(c).len())
        .max()
        .unwrap_or(2)
        .max(2) as f64;
    let est_ball = (2.0 * hops * hops + 4.0 * hops + 1.0)
        .min(2.0 * hops * sep)
        .min(n as f64)
        .max(1.0);
    let q = num_query_locations as f64;
    // Each query location contributes up to two on-edge seeds to the walk.
    let seeds = 2.0 * q;
    let sweep_relaxations = q * est_ball * net.avg_degree().max(2.0);
    let leaves = tree.num_leaves().max(1) as f64;
    let avg_leaf = n as f64 / leaves;
    // The walk's t-pruning skips occupied subtrees beyond the ball, so only
    // the users inside the estimated ball drive its occupancy cost.
    let users_eff = num_users as f64 * (est_ball / n as f64).min(1.0);
    let occ_frac = (users_eff / leaves).min(1.0);
    let batched_cells = seeds
        * (tree.walk_cells_root() as f64
            + occ_frac * tree.walk_cells_total() as f64
            + 2.0 * users_eff * avg_leaf.sqrt());
    Some((sweep_relaxations, batched_cells))
}

/// Average edge weight over a deterministic sample of the network's edges
/// (the first 1024 in canonical order) — enough signal to turn `t` into an
/// expected hop radius without an O(m) scan per query. Public so the
/// engine's calibration probe derives its probe threshold from the *same*
/// sample the cost model uses for its hop estimate.
pub fn sampled_avg_edge_weight(net: &RoadNetwork) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (_, _, w) in net.edges().take(1024) {
        sum += w;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExhaustionCause;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    fn all_filters(tree: &GTree) -> [RangeFilter<'_>; 4] {
        [
            RangeFilter::DijkstraSweep,
            RangeFilter::GTreePoint(tree),
            RangeFilter::GTreeLeafBatched(tree),
            RangeFilter::GTreeMultiSeedBatched(tree),
        ]
    }

    #[test]
    fn strategies_agree_on_vertex_users() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 6);
        let users: Vec<Location> = (0..25u32).map(Location::vertex).collect();
        let q = [Location::vertex(0), Location::vertex(12)];
        for t in [0.0, 1.0, 2.5, 4.0, 100.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn strategies_agree_on_edge_users_and_edge_queries() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let users = vec![
            Location::vertex(0),
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 0.25,
            },
            Location::OnEdge {
                u: 4,
                v: 5,
                offset: 0.75,
            },
            Location::vertex(15),
        ];
        let q = [Location::OnEdge {
            u: 0,
            v: 1,
            offset: 0.5,
        }];
        for t in [0.2, 0.25, 1.0, 3.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 4);
        for filter in all_filters(&tree) {
            assert!(filter
                .users_within(&net, &[Location::vertex(0)], 1.0, &[])
                .is_empty());
        }
    }

    #[test]
    fn scratch_reuse_and_pregrouped_targets_match_fresh_calls() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let users: Vec<Location> = (0..36u32).map(Location::vertex).collect();
        let targets = group_user_targets(&tree, &net, &users);
        let mut scratch = FilterScratch::new();
        let mut out = Vec::new();
        // Interleave strategies, thresholds, and query sets through ONE
        // scratch: every call must match a fresh users_within call.
        for t in [0.0, 1.5, 3.0, 100.0] {
            for q in [
                vec![Location::vertex(0)],
                vec![Location::vertex(0), Location::vertex(35)],
                vec![Location::OnEdge {
                    u: 14,
                    v: 15,
                    offset: 0.5,
                }],
            ] {
                for filter in all_filters(&tree) {
                    let fresh = filter.users_within(&net, &q, t, &users);
                    filter.users_within_with(
                        &net,
                        &q,
                        t,
                        &users,
                        Some(&targets),
                        &mut scratch,
                        &mut out,
                    );
                    assert_eq!(out, fresh, "{} diverges with reused scratch", filter.name());
                    filter.users_within_with(&net, &q, t, &users, None, &mut scratch, &mut out);
                    assert_eq!(out, fresh, "{} diverges without targets", filter.name());
                }
            }
        }
    }

    #[test]
    fn incrementally_maintained_targets_match_regrouping() {
        use crate::network::EdgeUpdate;
        let net0 = grid(6, 6);
        let mut tree = GTree::build_with_capacity(&net0, 6);
        let mut users: Vec<Location> = (0..36u32).map(Location::vertex).collect();
        users[3] = Location::OnEdge {
            u: 3,
            v: 4,
            offset: 0.25,
        };
        let mut targets = group_user_targets(&tree, &net0, &users);

        // Reweight the edge under user 3 and refresh its rows, then move two
        // users; the maintained grouping must serve filter results identical
        // to a from-scratch regrouping at every step.
        let mut net = net0.clone();
        net.set_edge_weight(3, 4, 2.0).unwrap();
        tree.apply_edge_updates(&net, &[EdgeUpdate::new(3, 4, 2.0)]);
        let old = users[3];
        remove_user_target(&tree, &net, &mut targets, 3, &old);
        add_user_target(&tree, &net, &mut targets, 3, &old);

        let moves = [
            (3u32, Location::vertex(30)),
            (
                10,
                Location::OnEdge {
                    u: 14,
                    v: 15,
                    offset: 0.5,
                },
            ),
        ];
        for &(user, loc) in &moves {
            let old = users[user as usize];
            remove_user_target(&tree, &net, &mut targets, user, &old);
            add_user_target(&tree, &net, &mut targets, user, &loc);
            users[user as usize] = loc;
        }

        let regrouped = group_user_targets(&tree, &net, &users);
        assert_eq!(targets.num_seeds(), regrouped.num_seeds());
        let q = [Location::vertex(0), Location::vertex(21)];
        let mut scratch = FilterScratch::new();
        let mut via_maintained = Vec::new();
        let mut via_regrouped = Vec::new();
        for t in [0.5, 2.0, 4.0, 100.0] {
            for filter in [
                RangeFilter::GTreeLeafBatched(&tree),
                RangeFilter::GTreeMultiSeedBatched(&tree),
            ] {
                filter.users_within_with(
                    &net,
                    &q,
                    t,
                    &users,
                    Some(&targets),
                    &mut scratch,
                    &mut via_maintained,
                );
                filter.users_within_with(
                    &net,
                    &q,
                    t,
                    &users,
                    Some(&regrouped),
                    &mut scratch,
                    &mut via_regrouped,
                );
                assert_eq!(
                    via_maintained,
                    via_regrouped,
                    "{} diverges on maintained targets at t = {t}",
                    filter.name()
                );
                let sweep = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
                assert_eq!(
                    via_maintained,
                    sweep,
                    "{} diverges from the sweep at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn budgeted_filters_match_unbudgeted_and_abort_on_tiny_limits() {
        let net = grid(6, 6);
        let tree = GTree::build_with_capacity(&net, 6);
        let users: Vec<Location> = (0..36u32).map(Location::vertex).collect();
        let targets = group_user_targets(&tree, &net, &users);
        let q = [Location::vertex(0), Location::vertex(21)];
        let mut scratch = FilterScratch::new();
        let mut out = Vec::new();
        for t in [0.0, 1.5, 3.0, 100.0] {
            for filter in all_filters(&tree) {
                let fresh = filter.users_within(&net, &q, t, &users);
                // A generous budget completes with identical results.
                let mut ticker = BudgetTicker::new(None, Some(u64::MAX), None);
                assert!(
                    filter.users_within_with_budget(
                        &net,
                        &q,
                        t,
                        &users,
                        Some(&targets),
                        &mut scratch,
                        &mut out,
                        &mut ticker,
                    ),
                    "{} exhausted a generous budget",
                    filter.name()
                );
                assert!(ticker.spent() > 0, "{} never charged", filter.name());
                assert_eq!(out, fresh, "{} diverges under budget", filter.name());
                // A one-unit budget aborts; the scratch must stay reusable.
                let mut tiny = BudgetTicker::new(None, Some(1), None);
                assert!(!filter.users_within_with_budget(
                    &net,
                    &q,
                    t,
                    &users,
                    Some(&targets),
                    &mut scratch,
                    &mut out,
                    &mut tiny,
                ));
                assert_eq!(tiny.cause(), Some(ExhaustionCause::WorkLimit));
                let mut again = BudgetTicker::new(None, Some(u64::MAX), None);
                assert!(filter.users_within_with_budget(
                    &net,
                    &q,
                    t,
                    &users,
                    Some(&targets),
                    &mut scratch,
                    &mut out,
                    &mut again,
                ));
                assert_eq!(out, fresh, "{} scratch corrupted by abort", filter.name());
            }
        }
    }

    #[test]
    fn calibration_from_probe_clamps_and_rejects_noise() {
        // Trustworthy probe: ratio = (1e-3/1e4) / (1e-3/1e5) = 10.
        let cal = AutoCalibration::from_probe(1e-3, 1e4, 1e-3, 1e5);
        assert!((cal.sweep_cell_cost - 10.0).abs() < 1e-9);
        assert!(cal.is_measured());
        // Sub-noise-floor measurements fall back to the analytic default.
        let noisy = AutoCalibration::from_probe(1e-8, 1e4, 1e-3, 1e5);
        assert_eq!(noisy.sweep_cell_cost, AUTO_SWEEP_CELL_COST);
        assert!(!noisy.is_measured());
        // Extreme ratios clamp into the trusted bounds.
        let huge = AutoCalibration::from_probe(1.0, 1.0, 1e-3, 1e6);
        assert_eq!(huge.sweep_cell_cost, AUTO_SWEEP_CELL_COST_BOUNDS.1);
        let tiny = AutoCalibration::from_probe(1e-3, 1e9, 1.0, 1.0);
        assert_eq!(tiny.sweep_cell_cost, AUTO_SWEEP_CELL_COST_BOUNDS.0);
    }

    #[test]
    fn calibrated_resolution_shifts_the_crossover() {
        // A corridor where the default calibration picks the batched walk:
        // an implausibly cheap sweep unit must flip the decision back, and
        // the estimates must be finite and positive.
        let net = corridor(20_000);
        let tree = GTree::build(&net);
        let (sweep_units, batched_units) =
            auto_cost_estimates(&net, &tree, 4, 1_000.0, 64).expect("non-degenerate configuration");
        assert!(sweep_units > 0.0 && batched_units > 0.0);
        assert_eq!(
            resolve_auto(&net, Some(&tree), 4, 1_000.0, 64),
            RangeFilterChoice::GTreeMultiSeedBatched
        );
        // The decision flips exactly at the measured unit-cost ratio.
        let crossover = batched_units / sweep_units;
        let sweep_cheaper = AutoCalibration {
            sweep_cell_cost: crossover * 0.99,
        };
        assert_eq!(
            resolve_auto_calibrated(&net, Some(&tree), 4, 1_000.0, 64, &sweep_cheaper),
            RangeFilterChoice::DijkstraSweep,
            "a cheap-enough measured sweep must keep the sweep"
        );
        let sweep_dearer = AutoCalibration {
            sweep_cell_cost: crossover * 1.01,
        };
        assert_eq!(
            resolve_auto_calibrated(&net, Some(&tree), 4, 1_000.0, 64, &sweep_dearer),
            RangeFilterChoice::GTreeMultiSeedBatched
        );
    }

    #[test]
    fn auto_without_index_is_the_sweep() {
        let net = grid(8, 8);
        assert_eq!(
            resolve_auto(&net, None, 3, 10.0, 64),
            RangeFilterChoice::DijkstraSweep
        );
    }

    #[test]
    fn auto_on_small_indexed_networks_stays_on_the_sweep() {
        // Laptop-scale regression pin: on a small road network the whole
        // vertex set is a small ball, so Auto must keep the sweep even with
        // an index built — future heuristic edits cannot silently flip
        // laptop-scale queries off the sweep.
        let net = grid(16, 16);
        let tree = GTree::build_with_capacity(&net, 16);
        for t in [0.5, 2.0, 10.0, 1000.0] {
            for q in [1usize, 2, 4] {
                assert_eq!(
                    resolve_auto(&net, Some(&tree), q, t, 256),
                    RangeFilterChoice::DijkstraSweep,
                    "small indexed network must sweep (t = {t}, |Q| = {q})"
                );
            }
        }
    }

    /// A corridor/highway-like road network: a long weighted path with a
    /// shortcut every fifth vertex. Its separators (and so the G-tree border
    /// sets) stay tiny at any size — the topology where the batched walk
    /// genuinely beats the sweep (`BENCH_PR3.json` crossover rows).
    fn corridor(n: u32) -> RoadNetwork {
        let mut edges: Vec<(u32, u32, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.extend((0..n.saturating_sub(5)).step_by(5).map(|i| (i, i + 5, 2.5)));
        RoadNetwork::from_edges(n as usize, &edges)
    }

    #[test]
    fn auto_on_indexed_large_corridor_switches_to_the_batched_walk() {
        // The other direction of the pin: on an indexed large small-separator
        // network the walk's border sets stay tiny and the measured crossover
        // rows (`BENCH_PR3.json`) show the multi-seed walk winning from
        // moderate radii up to full-graph balls — Auto must use the index.
        let net = corridor(20_000);
        let tree = GTree::build(&net);
        for t in [50.0, 1_000.0, 10_000.0] {
            assert_eq!(
                resolve_auto(&net, Some(&tree), 4, t, 64),
                RangeFilterChoice::GTreeMultiSeedBatched,
                "indexed-large corridor must use the index at t = {t}"
            );
        }
    }

    #[test]
    fn auto_on_grid_like_networks_keeps_the_sweep_at_any_radius() {
        // Grid-like networks have √n-sized cuts: the walk's fixed floor grows
        // with the same structure that makes the ball expensive, and the
        // measured crossover rows show the sweep winning at every generatable
        // scale — Auto must not flip on them.
        let net = grid(50, 50);
        let tree = GTree::build(&net);
        for t in [1.0, 10.0, 100.0, 10_000.0] {
            assert_eq!(
                resolve_auto(&net, Some(&tree), 4, t, 64),
                RangeFilterChoice::DijkstraSweep,
                "grid-like network must sweep at t = {t}"
            );
        }
    }
}

//! The Lemma-1 range filter as a first-class layer.
//!
//! The MAC search opens with a set question, not a point question: *which
//! users are within query distance `t`*? Earlier revisions answered it by
//! probing the [`DistanceOracle`] once per user, which wastes the structure of
//! the problem — the filter evaluates **one** small query set against **all**
//! user locations. [`RangeFilter`] makes that set operation the unit of
//! dispatch, with four interchangeable strategies:
//!
//! * [`RangeFilter::DijkstraSweep`] — one t-bounded multi-source sweep per
//!   query location over the road graph; the strongest baseline at laptop
//!   scale, linear in the edges within radius `t`.
//! * [`RangeFilter::GTreePoint`] — the per-user G-tree point oracle of PR 1,
//!   kept selectable for equivalence testing and for the regime the paper
//!   measures (few users, continent-scale road networks).
//! * [`RangeFilter::GTreeLeafBatched`] — the PR-2 per-seed leaf-batched
//!   G-tree evaluation: one pruned top-down walk **per query seed**, merged
//!   per query location ([`GTree::accumulate_source_distances`]).
//! * [`RangeFilter::GTreeMultiSeedBatched`] — the multi-seed walk: **all**
//!   query seeds fold into a single top-down pass with per-seed entry
//!   columns; a subtree is pruned only when every seed is out of range, each
//!   occupied leaf is evaluated once against all columns, and the Lemma-1
//!   intersection is maintained in-walk
//!   ([`GTree::multi_source_within`]).
//!
//! All four are exact and must return identical user sets; the integration
//! property tests (`tests/range_filter_equivalence.rs`) enforce this.
//! [`resolve_auto`] turns `Auto` into a concrete strategy from the measured
//! sweep/batched crossover.

use crate::gtree::{GTree, RangeScratch};
use crate::network::{Location, RoadNetwork, RoadVertexId};
use crate::oracle::{along_edge_distance, location_seeds, DistanceOracle};
use crate::querydist::QueryDistanceIndex;

/// Which range-filter strategy a query should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeFilterChoice {
    /// Let the network pick from the measured crossover ([`resolve_auto`]):
    /// the bounded Dijkstra sweep when the radius-t ball is small (every
    /// laptop-scale preset), the multi-seed batched G-tree walk when an
    /// index exists and the estimated ball dwarfs the indexed work
    /// (`BENCH_PR3.json` records the crossover measurements).
    #[default]
    Auto,
    /// Always run one t-bounded Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user G-tree point queries; falls back to Dijkstra without an index.
    GTreePoint,
    /// Per-seed leaf-batched G-tree evaluation (the PR-2 path); falls back to
    /// Dijkstra without an index.
    GTreeLeafBatched,
    /// Multi-seed leaf-batched G-tree evaluation — one walk for all query
    /// seeds; falls back to Dijkstra without an index.
    GTreeMultiSeedBatched,
}

impl RangeFilterChoice {
    /// Short label for benchmark and diagnostic output; resolved strategies
    /// share the vocabulary of [`RangeFilter::name`].
    pub fn name(&self) -> &'static str {
        match self {
            RangeFilterChoice::Auto => "auto",
            RangeFilterChoice::DijkstraSweep => "dijkstra-sweep",
            RangeFilterChoice::GTreePoint => "gtree-point",
            RangeFilterChoice::GTreeLeafBatched => "gtree-leaf-batched",
            RangeFilterChoice::GTreeMultiSeedBatched => "gtree-multi-seed-batched",
        }
    }
}

/// An exact "users within t" filter (Lemma 1) over the road network.
#[derive(Debug)]
pub enum RangeFilter<'a> {
    /// One bounded multi-source Dijkstra sweep per query location.
    DijkstraSweep,
    /// Per-user point queries against a prebuilt G-tree.
    GTreePoint(&'a GTree),
    /// Per-seed leaf-batched evaluation against a prebuilt G-tree.
    GTreeLeafBatched(&'a GTree),
    /// Multi-seed leaf-batched evaluation against a prebuilt G-tree.
    GTreeMultiSeedBatched(&'a GTree),
}

impl<'a> RangeFilter<'a> {
    /// Short label for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RangeFilter::DijkstraSweep => "dijkstra-sweep",
            RangeFilter::GTreePoint(_) => "gtree-point",
            RangeFilter::GTreeLeafBatched(_) => "gtree-leaf-batched",
            RangeFilter::GTreeMultiSeedBatched(_) => "gtree-multi-seed-batched",
        }
    }

    /// Lemma-1 set filter: `result[v]` is `true` iff user `v` is within
    /// network distance `t` of **every** query location (`D_Q(v) <= t`).
    pub fn users_within(
        &self,
        net: &RoadNetwork,
        query_locations: &[Location],
        t: f64,
        user_locations: &[Location],
    ) -> Vec<bool> {
        match self {
            RangeFilter::DijkstraSweep => {
                let qdi = QueryDistanceIndex::build(net, query_locations, Some(t));
                qdi.within_threshold(user_locations, t)
            }
            RangeFilter::GTreePoint(tree) => {
                let oracle = DistanceOracle::GTree(tree);
                let qdi =
                    QueryDistanceIndex::build_with_oracle(net, &oracle, query_locations, Some(t));
                qdi.within_threshold(user_locations, t)
            }
            RangeFilter::GTreeLeafBatched(tree) => {
                leaf_batched_within(tree, net, query_locations, t, user_locations)
            }
            RangeFilter::GTreeMultiSeedBatched(tree) => {
                multi_seed_batched_within(tree, net, query_locations, t, user_locations)
            }
        }
    }
}

/// Groups the user seeds by G-tree leaf (shared by both batched strategies):
/// an on-edge user contributes a seed at each endpoint.
fn group_user_targets(
    tree: &GTree,
    net: &RoadNetwork,
    user_locations: &[Location],
) -> crate::gtree::LeafTargets {
    tree.group_targets(user_locations.iter().enumerate().flat_map(|(i, loc)| {
        location_seeds(net, loc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
            .map(move |(v, off)| (i as u32, v, off))
    }))
}

/// The PR-2 per-seed leaf-batched strategy: group the user seeds by leaf
/// once, then run one pruned top-down walk per query seed, intersecting the
/// per-query-location threshold predicates in this merge loop. Kept as the
/// baseline the multi-seed walk is measured against.
fn leaf_batched_within(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
) -> Vec<bool> {
    let n = user_locations.len();
    let mut within = vec![true; n];
    if n == 0 {
        return within;
    }
    let targets = group_user_targets(tree, net, user_locations);
    let mut scratch = RangeScratch::default();
    let mut best = vec![f64::INFINITY; n];
    for qloc in query_locations {
        // Seed each user with the along-edge shortcut (exact when both points
        // share an edge; INFINITY otherwise), then lower through the tree.
        for (b, uloc) in best.iter_mut().zip(user_locations) {
            *b = along_edge_distance(qloc, uloc);
        }
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            tree.accumulate_source_distances(sv, soff, &targets, t, &mut best, &mut scratch);
        }
        for (w, &d) in within.iter_mut().zip(&best) {
            if d > t {
                *w = false;
            }
        }
    }
    within
}

/// The multi-seed strategy: all query seeds fold into **one** top-down walk
/// with per-seed entry columns (seeds of the same query location share an
/// output column), and the Lemma-1 intersection is maintained in-walk by
/// [`GTree::multi_source_within`]. The per-user rows are pre-seeded with the
/// along-edge shortcuts, so users in pruned subtrees keep their exact
/// same-edge memberships.
fn multi_seed_batched_within(
    tree: &GTree,
    net: &RoadNetwork,
    query_locations: &[Location],
    t: f64,
    user_locations: &[Location],
) -> Vec<bool> {
    let n = user_locations.len();
    let cols = query_locations.len();
    let mut within = vec![true; n];
    if n == 0 || cols == 0 {
        return within;
    }
    let targets = group_user_targets(tree, net, user_locations);
    let mut seeds: Vec<(RoadVertexId, f64, u32)> = Vec::new();
    for (q, qloc) in query_locations.iter().enumerate() {
        for (sv, soff) in location_seeds(net, qloc)
            .into_iter()
            .filter(|&(_, off)| off.is_finite())
        {
            seeds.push((sv, soff, q as u32));
        }
    }
    let mut best = vec![f64::INFINITY; n * cols];
    for (i, uloc) in user_locations.iter().enumerate() {
        for (q, qloc) in query_locations.iter().enumerate() {
            best[i * cols + q] = along_edge_distance(qloc, uloc);
        }
    }
    let mut scratch = RangeScratch::default();
    tree.multi_source_within(
        &seeds,
        cols,
        &targets,
        t,
        &mut best,
        &mut within,
        &mut scratch,
    );
    within
}

/// Sweep-vs-batched conversion factor of [`resolve_auto`]'s cost model,
/// calibrated from the `BENCH_PR3.json` crossover measurements: one modeled
/// sweep relaxation (a heap operation plus an edge scan) costs about as much
/// as this many batched matrix-cell touches (the measured unit costs were
/// ~10 ns per batched cell and ~40 ns per modeled sweep relaxation on the
/// recorder machine). Lowering the constant makes `Auto` keep the sweep
/// longer.
pub const AUTO_SWEEP_CELL_COST: f64 = 16.0;

/// Calibrated `Auto` resolution for the Lemma-1 range filter.
///
/// The sweep's cost is the radius-`t` ball: every vertex within distance `t`
/// of a query location is settled once per location, so it grows with `t`
/// and is independent of the index. The multi-seed batched walk instead pays
/// in distance-matrix cells: the entry-column extensions over the occupied
/// part of the hierarchy (at most one pass over the matrices, whatever `t`
/// is) plus one border-row pass per user seed — independent of how many
/// road vertices the ball covers. `Auto` estimates both in common units:
///
/// * ball estimate — `t` over a sampled average edge weight gives the ball
///   radius in hops; the ball then grows quadratically (`~2·hops²`,
///   grid-like fill) but no faster than `2·hops` times the network's
///   separator width, probed as the G-tree root cut (corridor-like networks
///   have tiny cuts and near-linear growth), capped at `|V|`;
/// * sweep estimate — `|Q| · ball · avg_degree` edge relaxations, each worth
///   [`AUTO_SWEEP_CELL_COST`] matrix cells;
/// * batched estimate — per seed, the walk's fixed floor (the root-level
///   entry extension, paid regardless of occupancy) plus the
///   occupancy-scaled share of all entry extensions, plus each user seed's
///   leaf border rows for all `|Q|` columns.
///
/// The crossover measurements (`BENCH_PR3.json`) show what this model
/// encodes: on grid-like road networks the walk's fixed floor grows with
/// the same `√|V|` cut that makes the ball expensive, so the sweep wins at
/// every generatable scale and `Auto` keeps it; on small-separator
/// (corridor/highway-like) networks the floor collapses and the batched
/// walk wins as soon as the ball is large, so `Auto` switches. A network
/// without an index always resolves to the sweep. The regression tests pin
/// both directions so heuristic edits cannot silently flip laptop-scale
/// queries off the sweep.
pub fn resolve_auto(
    net: &RoadNetwork,
    tree: Option<&GTree>,
    num_query_locations: usize,
    t: f64,
    num_users: usize,
) -> RangeFilterChoice {
    let Some(tree) = tree else {
        return RangeFilterChoice::DijkstraSweep;
    };
    let n = net.num_vertices();
    if n == 0 || num_query_locations == 0 || num_users == 0 {
        return RangeFilterChoice::DijkstraSweep;
    }
    let avg_w = sampled_avg_edge_weight(net);
    if !avg_w.is_finite() || avg_w <= 0.0 {
        return RangeFilterChoice::DijkstraSweep;
    }
    let hops = t / avg_w;
    // Separator-width probe: the widest child cut at the G-tree root.
    let sep = tree
        .children_of(tree.root_id())
        .iter()
        .map(|&c| tree.borders_of(c).len())
        .max()
        .unwrap_or(2)
        .max(2) as f64;
    let est_ball = (2.0 * hops * hops + 4.0 * hops + 1.0)
        .min(2.0 * hops * sep)
        .min(n as f64)
        .max(1.0);
    let q = num_query_locations as f64;
    // Each query location contributes up to two on-edge seeds to the walk.
    let seeds = 2.0 * q;
    let sweep_cells = q * est_ball * net.avg_degree().max(2.0) * AUTO_SWEEP_CELL_COST;
    let leaves = tree.num_leaves().max(1) as f64;
    let avg_leaf = n as f64 / leaves;
    // The walk's t-pruning skips occupied subtrees beyond the ball, so only
    // the users inside the estimated ball drive its occupancy cost.
    let users_eff = num_users as f64 * (est_ball / n as f64).min(1.0);
    let occ_frac = (users_eff / leaves).min(1.0);
    let batched_cells = seeds
        * (tree.walk_cells_root() as f64
            + occ_frac * tree.walk_cells_total() as f64
            + 2.0 * users_eff * avg_leaf.sqrt());
    if sweep_cells > batched_cells {
        RangeFilterChoice::GTreeMultiSeedBatched
    } else {
        RangeFilterChoice::DijkstraSweep
    }
}

/// Average edge weight over a deterministic sample of the network's edges
/// (the first 1024 in canonical order) — enough signal to turn `t` into an
/// expected hop radius without an O(m) scan per query.
fn sampled_avg_edge_weight(net: &RoadNetwork) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (_, _, w) in net.edges().take(1024) {
        sum += w;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    fn all_filters(tree: &GTree) -> [RangeFilter<'_>; 4] {
        [
            RangeFilter::DijkstraSweep,
            RangeFilter::GTreePoint(tree),
            RangeFilter::GTreeLeafBatched(tree),
            RangeFilter::GTreeMultiSeedBatched(tree),
        ]
    }

    #[test]
    fn strategies_agree_on_vertex_users() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 6);
        let users: Vec<Location> = (0..25u32).map(Location::vertex).collect();
        let q = [Location::vertex(0), Location::vertex(12)];
        for t in [0.0, 1.0, 2.5, 4.0, 100.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn strategies_agree_on_edge_users_and_edge_queries() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let users = vec![
            Location::vertex(0),
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 0.25,
            },
            Location::OnEdge {
                u: 4,
                v: 5,
                offset: 0.75,
            },
            Location::vertex(15),
        ];
        let q = [Location::OnEdge {
            u: 0,
            v: 1,
            offset: 0.5,
        }];
        for t in [0.2, 0.25, 1.0, 3.0] {
            let reference = RangeFilter::DijkstraSweep.users_within(&net, &q, t, &users);
            for filter in all_filters(&tree) {
                assert_eq!(
                    filter.users_within(&net, &q, t, &users),
                    reference,
                    "{} disagrees at t = {t}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let net = grid(3, 3);
        let tree = GTree::build_with_capacity(&net, 4);
        for filter in all_filters(&tree) {
            assert!(filter
                .users_within(&net, &[Location::vertex(0)], 1.0, &[])
                .is_empty());
        }
    }

    #[test]
    fn auto_without_index_is_the_sweep() {
        let net = grid(8, 8);
        assert_eq!(
            resolve_auto(&net, None, 3, 10.0, 64),
            RangeFilterChoice::DijkstraSweep
        );
    }

    #[test]
    fn auto_on_small_indexed_networks_stays_on_the_sweep() {
        // Laptop-scale regression pin: on a small road network the whole
        // vertex set is a small ball, so Auto must keep the sweep even with
        // an index built — future heuristic edits cannot silently flip
        // laptop-scale queries off the sweep.
        let net = grid(16, 16);
        let tree = GTree::build_with_capacity(&net, 16);
        for t in [0.5, 2.0, 10.0, 1000.0] {
            for q in [1usize, 2, 4] {
                assert_eq!(
                    resolve_auto(&net, Some(&tree), q, t, 256),
                    RangeFilterChoice::DijkstraSweep,
                    "small indexed network must sweep (t = {t}, |Q| = {q})"
                );
            }
        }
    }

    /// A corridor/highway-like road network: a long weighted path with a
    /// shortcut every fifth vertex. Its separators (and so the G-tree border
    /// sets) stay tiny at any size — the topology where the batched walk
    /// genuinely beats the sweep (`BENCH_PR3.json` crossover rows).
    fn corridor(n: u32) -> RoadNetwork {
        let mut edges: Vec<(u32, u32, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.extend((0..n.saturating_sub(5)).step_by(5).map(|i| (i, i + 5, 2.5)));
        RoadNetwork::from_edges(n as usize, &edges)
    }

    #[test]
    fn auto_on_indexed_large_corridor_switches_to_the_batched_walk() {
        // The other direction of the pin: on an indexed large small-separator
        // network the walk's border sets stay tiny and the measured crossover
        // rows (`BENCH_PR3.json`) show the multi-seed walk winning from
        // moderate radii up to full-graph balls — Auto must use the index.
        let net = corridor(20_000);
        let tree = GTree::build(&net);
        for t in [50.0, 1_000.0, 10_000.0] {
            assert_eq!(
                resolve_auto(&net, Some(&tree), 4, t, 64),
                RangeFilterChoice::GTreeMultiSeedBatched,
                "indexed-large corridor must use the index at t = {t}"
            );
        }
    }

    #[test]
    fn auto_on_grid_like_networks_keeps_the_sweep_at_any_radius() {
        // Grid-like networks have √n-sized cuts: the walk's fixed floor grows
        // with the same structure that makes the ball expensive, and the
        // measured crossover rows show the sweep winning at every generatable
        // scale — Auto must not flip on them.
        let net = grid(50, 50);
        let tree = GTree::build(&net);
        for t in [1.0, 10.0, 100.0, 10_000.0] {
            assert_eq!(
                resolve_auto(&net, Some(&tree), 4, t, 64),
                RangeFilterChoice::DijkstraSweep,
                "grid-like network must sweep at t = {t}"
            );
        }
    }
}

//! The road-network distance oracle behind the MAC query path.
//!
//! Every distance the MAC search needs — the Lemma-1 range filter, `D_Q`
//! evaluations, pairwise `dist(p, p')` — reduces to point-to-point or
//! one-to-many shortest-path queries on `G_r`. This module abstracts *how*
//! those are answered:
//!
//! * [`DistanceOracle::Dijkstra`] runs (bounded) Dijkstra per request,
//!   recycling search state through a [`ScratchPool`] so repeated SSSP calls
//!   stop allocating `vec![INFINITY; |V|]` and a fresh heap each time.
//! * [`DistanceOracle::GTree`] assembles exact distances from the
//!   hierarchical border matrices of a prebuilt [`GTree`] — the paper's
//!   choice for query-distance computation, which beats repeated Dijkstra
//!   when only a few locations (the query users) are probed against many.
//!
//! Both oracles are exact; choosing one is purely a performance decision, and
//! the equivalence tests below pin them against each other.

use crate::dijkstra::{distance_to_location, SsspScratch};
use crate::gtree::GTree;
use crate::network::{Location, RoadNetwork, RoadVertexId};
use std::sync::Mutex;

/// A pool of reusable [`SsspScratch`] buffers.
///
/// The pool hands a scratch to each caller and takes it back afterwards, so
/// concurrent queries each get their own buffers while sequential queries
/// reuse the same allocation. Lock traffic is one uncontended mutex
/// acquisition per SSSP, which is noise next to the search itself.
#[derive(Debug, Default)]
pub struct ScratchPool {
    idle: Mutex<Vec<SsspScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Runs `f` with a pooled scratch, returning the scratch afterwards.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut SsspScratch) -> R) -> R {
        let mut scratch = self
            .idle
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default();
        let result = f(&mut scratch);
        self.idle.lock().expect("scratch pool lock").push(scratch);
        result
    }

    /// Number of currently idle scratches (diagnostics).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("scratch pool lock").len()
    }
}

/// An exact road-network distance oracle.
#[derive(Debug)]
pub enum DistanceOracle<'a> {
    /// Per-request bounded Dijkstra with pooled scratch buffers.
    Dijkstra(ScratchPool),
    /// Distances assembled from a prebuilt G-tree.
    GTree(&'a GTree),
}

impl DistanceOracle<'_> {
    /// A Dijkstra-backed oracle with a fresh scratch pool.
    pub fn dijkstra() -> Self {
        DistanceOracle::Dijkstra(ScratchPool::new())
    }

    /// Whether this oracle answers from a G-tree.
    pub fn is_gtree(&self) -> bool {
        matches!(self, DistanceOracle::GTree(_))
    }

    /// Exact distance between two road vertices, pruned at `bound` for the
    /// Dijkstra backend (which then reports `f64::INFINITY` past the bound;
    /// the G-tree backend always returns the exact value).
    pub fn vertex_distance(
        &self,
        net: &RoadNetwork,
        u: RoadVertexId,
        v: RoadVertexId,
        bound: Option<f64>,
    ) -> f64 {
        match self {
            DistanceOracle::Dijkstra(pool) => pool.with_scratch(|scratch| {
                let field = scratch.run(net, &[(u, 0.0)], bound, None);
                field.get(v as usize).copied().unwrap_or(f64::INFINITY)
            }),
            DistanceOracle::GTree(tree) => tree.dist(u, v),
        }
    }

    /// Exact `dist(p, p')` between two locations (same pruning semantics as
    /// [`vertex_distance`](Self::vertex_distance)).
    pub fn location_distance(
        &self,
        net: &RoadNetwork,
        a: &Location,
        b: &Location,
        bound: Option<f64>,
    ) -> f64 {
        match self {
            DistanceOracle::Dijkstra(pool) => pool.with_scratch(|scratch| {
                let mut search_bound = bound;
                let along = along_edge_distance(a, b);
                if along.is_finite() {
                    search_bound = Some(search_bound.unwrap_or(f64::INFINITY).min(along));
                }
                let field = scratch.run(net, &location_seeds(net, a), search_bound, None);
                distance_to_location(net, field, b).min(along)
            }),
            DistanceOracle::GTree(tree) => gtree_location_distance(tree, net, a, b),
        }
    }
}

/// Dijkstra seeds for a location (the `ω(u, p)` convention of the paper).
pub(crate) fn location_seeds(net: &RoadNetwork, loc: &Location) -> Vec<(RoadVertexId, f64)> {
    match *loc {
        Location::Vertex(v) => vec![(v, 0.0)],
        Location::OnEdge { u, v, offset } => {
            let w = net.edge_weight(u, v).unwrap_or(f64::INFINITY);
            vec![(u, offset), (v, (w - offset).max(0.0))]
        }
    }
}

/// The direct along-edge distance when both locations sit on the same edge,
/// `f64::INFINITY` otherwise.
pub(crate) fn along_edge_distance(a: &Location, b: &Location) -> f64 {
    if let (
        Location::OnEdge {
            u: u1,
            v: v1,
            offset: o1,
        },
        Location::OnEdge {
            u: u2,
            v: v2,
            offset: o2,
        },
    ) = (a, b)
    {
        if u1 == u2 && v1 == v2 {
            return (o1 - o2).abs();
        }
    }
    f64::INFINITY
}

/// Exact location-to-location distance assembled from G-tree point queries:
/// the minimum over the endpoint combinations of the two locations, plus the
/// along-edge shortcut when both share an edge.
pub(crate) fn gtree_location_distance(
    tree: &GTree,
    net: &RoadNetwork,
    a: &Location,
    b: &Location,
) -> f64 {
    let mut best = along_edge_distance(a, b);
    for &(sa, oa) in &location_seeds(net, a) {
        if !oa.is_finite() {
            continue;
        }
        for &(sb, ob) in &location_seeds(net, b) {
            if !ob.is_finite() {
                continue;
            }
            let cand = oa + tree.dist(sa, sb) + ob;
            if cand < best {
                best = cand;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::location_distance;

    fn grid(rows: u32, cols: u32) -> RoadNetwork {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1.0 + ((v % 3) as f64) * 0.25));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1.0 + ((v % 5) as f64) * 0.2));
                }
            }
        }
        RoadNetwork::from_edges((rows * cols) as usize, &edges)
    }

    #[test]
    fn oracles_agree_on_vertex_distances() {
        let net = grid(5, 5);
        let tree = GTree::build_with_capacity(&net, 6);
        let dij = DistanceOracle::dijkstra();
        let gt = DistanceOracle::GTree(&tree);
        assert!(!dij.is_gtree() && gt.is_gtree());
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = dij.vertex_distance(&net, u, v, None);
                let b = gt.vertex_distance(&net, u, v, None);
                assert!((a - b).abs() < 1e-9, "{u}->{v}: dijkstra {a} gtree {b}");
            }
        }
    }

    #[test]
    fn oracles_agree_on_edge_locations() {
        let net = grid(4, 4);
        let tree = GTree::build_with_capacity(&net, 5);
        let dij = DistanceOracle::dijkstra();
        let gt = DistanceOracle::GTree(&tree);
        let locs = [
            Location::vertex(0),
            Location::vertex(15),
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 0.25,
            },
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 0.75,
            },
            Location::OnEdge {
                u: 10,
                v: 11,
                offset: 0.5,
            },
        ];
        for a in &locs {
            for b in &locs {
                let d = dij.location_distance(&net, a, b, None);
                let g = gt.location_distance(&net, a, b, None);
                let reference = location_distance(&net, a, b);
                assert!(
                    (d - g).abs() < 1e-9,
                    "{a:?} -> {b:?}: dijkstra {d} gtree {g}"
                );
                assert!((d - reference).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bounded_dijkstra_oracle_reports_infinity_past_bound() {
        let net = grid(3, 3);
        let dij = DistanceOracle::dijkstra();
        let near = dij.vertex_distance(&net, 0, 1, Some(1.5));
        assert!(near.is_finite());
        let far = dij.vertex_distance(&net, 0, 8, Some(1.5));
        assert!(far.is_infinite());
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle_count(), 0);
        pool.with_scratch(|_| {});
        assert_eq!(pool.idle_count(), 1);
        pool.with_scratch(|_| {});
        assert_eq!(
            pool.idle_count(),
            1,
            "buffer must be reused, not duplicated"
        );
    }
}

//! # rsn-road
//!
//! Road-network substrate for the reproduction of *"Multi-attributed
//! Community Search in Road-social Networks"* (ICDE 2021).
//!
//! The paper models the road network `G_r` as an undirected weighted graph
//! whose edge weights are travel costs; users of the social network are pinned
//! to locations in `G_r` and the *query distance* (Definition 2) measures the
//! communication cost of a community. This crate provides:
//!
//! * [`network::RoadNetwork`] — the weighted graph plus [`network::Location`]
//!   (a point on a vertex or part-way along an edge).
//! * [`dijkstra`] — exact single-source / multi-source / bounded shortest
//!   paths, plus [`dijkstra::SsspScratch`] so repeated searches reuse their
//!   buffers instead of allocating per call.
//! * [`oracle::DistanceOracle`] — the abstraction the MAC query path talks
//!   to: Dijkstra with a pooled scratch, or distances assembled from the
//!   G-tree. Both are exact; the choice is purely performance.
//! * [`querydist::QueryDistanceIndex`] — per-query-user distance evaluation
//!   (`D_Q`, Definition 2), served by either oracle backend.
//! * [`rangefilter::RangeFilter`] — the Lemma-1 range filter as a **set**
//!   operation: bounded Dijkstra sweep, per-user G-tree point queries, or the
//!   leaf-batched G-tree evaluation that walks the hierarchy once per query
//!   seed and prunes whole subtrees beyond `t`.
//! * [`gtree::GTree`] — a hierarchical graph-partition index in the spirit of
//!   the G-tree [Zhong et al., TKDE'15] the paper uses to accelerate range
//!   queries; our variant assembles within-region border matrices bottom-up
//!   and answers exact point-to-point distance queries.

pub mod budget;
pub mod dijkstra;
pub mod gtree;
pub mod network;
pub mod oracle;
pub mod querydist;
pub mod rangefilter;

pub use budget::{BudgetTicker, ExhaustionCause, SharedBudget, WorkerTicker};
pub use dijkstra::{bounded_sssp, sssp, sssp_from_location, SsspScratch};
pub use gtree::{GTree, GTreeUpdateStats};
pub use network::{EdgeUpdate, Location, RoadNetwork, RoadNetworkBuilder, RoadVertexId};
pub use oracle::{DistanceOracle, ScratchPool};
pub use querydist::QueryDistanceIndex;
pub use rangefilter::{AutoCalibration, FilterScratch, RangeFilter, RangeFilterChoice};

/// Errors produced by the road substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadError {
    /// A road vertex identifier was out of range.
    VertexOutOfRange {
        /// Offending vertex.
        vertex: u32,
        /// Number of road vertices.
        num_vertices: usize,
    },
    /// A location referenced an edge that does not exist.
    NoSuchEdge {
        /// Edge endpoint.
        u: u32,
        /// Edge endpoint.
        v: u32,
    },
    /// An edge weight was negative or not finite.
    InvalidWeight(f64),
    /// A location offset was outside `[0, weight(u, v)]`.
    InvalidOffset {
        /// Requested offset.
        offset: f64,
        /// Length of the edge.
        edge_length: f64,
    },
}

impl std::fmt::Display for RoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoadError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "road vertex {vertex} out of range for network with {num_vertices} vertices"
            ),
            RoadError::NoSuchEdge { u, v } => write!(f, "no road edge between {u} and {v}"),
            RoadError::InvalidWeight(w) => write!(f, "invalid edge weight {w}"),
            RoadError::InvalidOffset {
                offset,
                edge_length,
            } => write!(
                f,
                "offset {offset} outside [0, {edge_length}] for on-edge location"
            ),
        }
    }
}

impl std::error::Error for RoadError {}

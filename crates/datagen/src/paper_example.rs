//! The running example of the paper (Fig. 1, Fig. 2 and Fig. 4).
//!
//! Fifteen users `v1..v15` (ids 0..14 here), fifteen road vertices `r1..r15`,
//! and the 3-dimensional attribute table of Fig. 2(a) for `v1..v7`. The road
//! weights are chosen so that the distances quoted in Section II hold:
//! `dist(r7, r6) = 7` (the query distance of `v7` for `Q = {v2, v3, v6}`) and
//! `dist(r3, r6) = 9` (the query distance of the community
//! `{v2, v3, v6, v7}`), and all of `r1..r7` lie within query distance 9 of
//! `{r2, r3, r6}` so that the maximal (3,9)-core is `{v1..v7}`.

use rsn_core::network::RoadSocialNetwork;
use rsn_geom::region::PrefRegion;
use rsn_graph::graph::Graph;
use rsn_road::network::{Location, RoadNetwork};

/// The social graph of Fig. 1(a). User `v_{i+1}` has id `i`.
pub fn paper_social_graph() -> Graph {
    let edges: &[(u32, u32)] = &[
        // dense cluster v1..v7 (ids 0..6)
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 2),
        (1, 3),
        (1, 4),
        (1, 5),
        (1, 6),
        (2, 3),
        (2, 4),
        (2, 5),
        (2, 6),
        (3, 4),
        (4, 5),
        (5, 6),
        // periphery v8..v15 (ids 7..14)
        (6, 8),
        (7, 8),
        (8, 9),
        (8, 13),
        (9, 10),
        (9, 13),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
    ];
    Graph::from_edges(15, edges)
}

/// The road network of Fig. 1(b). Road vertex `r_{i+1}` has id `i`.
pub fn paper_road_network() -> RoadNetwork {
    RoadNetwork::from_edges(
        15,
        &[
            (0, 1, 2.0), // r1 - r2
            (1, 2, 4.0), // r2 - r3
            (1, 5, 6.0), // r2 - r6
            (1, 3, 3.0), // r2 - r4
            (1, 4, 3.0), // r2 - r5
            (2, 5, 9.0), // r3 - r6 (the distance quoted in Section II)
            (2, 6, 3.0), // r3 - r7
            (5, 6, 7.0), // r6 - r7 (the query distance of v7)
            (4, 5, 4.0), // r5 - r6
            // periphery, far from the query area
            (6, 7, 12.0),  // r7 - r8
            (7, 8, 2.0),   // r8 - r9
            (8, 9, 2.0),   // r9 - r10
            (9, 10, 2.0),  // r10 - r11
            (10, 11, 2.0), // r11 - r12
            (11, 12, 2.0), // r12 - r13
            (12, 13, 2.0), // r13 - r14
            (13, 14, 2.0), // r14 - r15
            (8, 12, 3.0),  // r9 - r13
        ],
    )
}

/// The 3-dimensional attribute vectors of Fig. 2(a); peripheral users get
/// uniformly low values so they never influence the example communities.
pub fn paper_attributes() -> Vec<Vec<f64>> {
    let mut attrs = vec![
        vec![8.8, 3.6, 2.2], // v1
        vec![5.9, 6.2, 6.0], // v2
        vec![2.8, 5.6, 5.1], // v3
        vec![9.0, 3.3, 3.4], // v4
        vec![5.0, 7.6, 3.1], // v5
        vec![5.2, 8.3, 4.3], // v6
        vec![2.1, 5.0, 5.1], // v7
    ];
    for i in 0..8 {
        attrs.push(vec![1.0 + 0.1 * i as f64, 1.2, 1.5]);
    }
    attrs
}

/// The full road-social network of the running example: user `v_i` is located
/// on road vertex `r_i`.
pub fn paper_example_network() -> RoadSocialNetwork {
    let social = paper_social_graph();
    let road = paper_road_network();
    let locations: Vec<Location> = (0..15).map(Location::vertex).collect();
    RoadSocialNetwork::new(social, road, locations, paper_attributes())
        .expect("the paper example network is consistent by construction")
}

/// The region of interest of Fig. 2(b): `[0.1, 0.5] × [0.2, 0.4]`.
pub fn paper_region() -> PrefRegion {
    PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).expect("valid region")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::ktcore::maximal_kt_core;
    use rsn_core::query::MacQuery;
    use rsn_road::querydist::QueryDistanceIndex;

    #[test]
    fn example_distances_match_section_2() {
        let road = paper_road_network();
        // Q = {v2, v3, v6} -> road vertices r2, r3, r6 (ids 1, 2, 5)
        let q = [
            Location::vertex(1),
            Location::vertex(2),
            Location::vertex(5),
        ];
        let idx = QueryDistanceIndex::build(&road, &q, None);
        assert!(
            (idx.query_distance_of_vertex(6) - 7.0).abs() < 1e-9,
            "DQ(v7) = 7"
        );
        let h1 = [
            Location::vertex(1),
            Location::vertex(2),
            Location::vertex(5),
            Location::vertex(6),
        ];
        assert!(
            (idx.query_distance_of_members(&h1) - 9.0).abs() < 1e-9,
            "DQ(H1) = 9"
        );
        // all of r1..r7 are within query distance 9
        for v in 0..7u32 {
            assert!(
                idx.query_distance_of_vertex(v) <= 9.0 + 1e-9,
                "r{} too far",
                v + 1
            );
        }
        // the periphery is not
        assert!(idx.query_distance_of_vertex(7) > 9.0);
    }

    #[test]
    fn maximal_3_9_core_is_v1_to_v7() {
        let rsn = paper_example_network();
        // Q = {v2, v3, v6} -> user ids 1, 2, 5
        let query = MacQuery::new(vec![1, 2, 5], 3, 9.0, paper_region());
        let core = maximal_kt_core(&rsn, &query).unwrap().unwrap();
        assert_eq!(core.vertices, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn example_1_subgraphs_are_cores() {
        let g = paper_social_graph();
        // {v2, v3, v6, v7} (ids 1, 2, 5, 6) forms a 3-core (a K4)
        let (sub, _) = g.induced_subgraph(&[1, 2, 5, 6]);
        assert!((0..4u32).all(|v| sub.degree(v) >= 3));
        // {v2..v6} (ids 1..5) forms a 3-core as well
        let (sub2, _) = g.induced_subgraph(&[1, 2, 3, 4, 5]);
        assert!((0..5u32).all(|v| sub2.degree(v) >= 3));
    }
}

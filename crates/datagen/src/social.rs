//! Synthetic social networks with heavy-tailed degrees and deep k-cores.
//!
//! The social networks of Table II combine a power-law degree distribution
//! (maximum degrees in the thousands) with non-trivial core structure
//! (`k_max` between 34 and 129). A preferential-attachment backbone
//! reproduces the former; planted dense groups reproduce the latter and give
//! the benchmark harness query vertices for which deep (k,t)-cores exist.

use rand::prelude::*;
use rand::rngs::StdRng;
use rsn_graph::graph::{Graph, GraphBuilder, VertexId};

/// A planted dense group specification.
#[derive(Debug, Clone, Copy)]
pub struct PlantedGroup {
    /// Number of members.
    pub size: usize,
    /// Minimum number of intra-group neighbours per member (the group then
    /// sits inside a k-core with k at least this value).
    pub degree: usize,
}

/// Configuration of the social network generator.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of users.
    pub n: usize,
    /// Edges attached per new vertex in the preferential-attachment phase.
    pub attach_m: usize,
    /// Planted dense groups.
    pub planted: Vec<PlantedGroup>,
    /// RNG seed.
    pub seed: u64,
}

/// A generated social network plus the membership of every planted group.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    /// The friendship graph.
    pub graph: Graph,
    /// Planted group memberships (disjoint).
    pub groups: Vec<Vec<VertexId>>,
}

/// Generates the social network.
pub fn generate_social(cfg: &SocialConfig) -> SocialNetwork {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n.max(4);
    let m = cfg.attach_m.max(1);
    let mut builder = GraphBuilder::new(n);

    // Preferential attachment via the repeated-endpoints trick: keep a list of
    // edge endpoints and sample from it (probability proportional to degree).
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // seed clique on the first m+1 vertices
    let seed_size = (m + 1).min(n);
    for i in 0..seed_size as u32 {
        for j in (i + 1)..seed_size as u32 {
            builder.add_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in seed_size as u32..n as u32 {
        for _ in 0..m {
            let target = endpoints[rng.random_range(0..endpoints.len())];
            if target != v {
                builder.add_edge(v, target);
                endpoints.push(v);
                endpoints.push(target);
            }
        }
    }

    // Plant dense groups over disjoint random member sets.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    let mut cursor = 0usize;
    let mut groups = Vec::new();
    for spec in &cfg.planted {
        let size = spec.size.min(n.saturating_sub(cursor));
        if size < 2 {
            groups.push(Vec::new());
            continue;
        }
        let members: Vec<u32> = perm[cursor..cursor + size].to_vec();
        cursor += size;
        let degree = spec.degree.min(size - 1);
        for (i, &u) in members.iter().enumerate() {
            // connect u to `degree` distinct members chosen round-robin with a
            // random offset; this yields a circulant-like graph whose minimum
            // degree is at least `degree`.
            let offset = rng.random_range(1..size);
            let mut added = 0usize;
            let mut step = 0usize;
            while added < degree && step < size {
                let j = (i + offset + step) % size;
                if members[j] != u {
                    builder.add_edge(u, members[j]);
                    added += 1;
                }
                step += 1;
            }
        }
        groups.push(members);
    }

    SocialNetwork {
        graph: builder.build(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_graph::core_decomp::{core_numbers, max_core_number};

    #[test]
    fn power_law_backbone_has_skewed_degrees() {
        let cfg = SocialConfig {
            n: 2000,
            attach_m: 3,
            planted: vec![],
            seed: 1,
        };
        let net = generate_social(&cfg);
        assert_eq!(net.graph.num_vertices(), 2000);
        let max_deg = net.graph.max_degree();
        let avg = net.graph.avg_degree();
        assert!(avg < 8.0);
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected a heavy-tailed degree distribution (max {max_deg}, avg {avg})"
        );
    }

    #[test]
    fn planted_groups_create_deep_cores() {
        let cfg = SocialConfig {
            n: 1000,
            attach_m: 2,
            planted: vec![
                PlantedGroup {
                    size: 60,
                    degree: 40,
                },
                PlantedGroup {
                    size: 30,
                    degree: 12,
                },
            ],
            seed: 3,
        };
        let net = generate_social(&cfg);
        assert_eq!(net.groups.len(), 2);
        assert_eq!(net.groups[0].len(), 60);
        let cores = core_numbers(&net.graph);
        // every member of the first group has coreness at least its planted degree
        for &v in &net.groups[0] {
            assert!(
                cores[v as usize] >= 40,
                "coreness of planted member too low"
            );
        }
        assert!(max_core_number(&net.graph) >= 40);
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SocialConfig {
            n: 500,
            attach_m: 3,
            planted: vec![PlantedGroup {
                size: 20,
                degree: 8,
            }],
            seed: 11,
        };
        let a = generate_social(&cfg);
        let b = generate_social(&cfg);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.groups, b.groups);
    }
}

//! Named road-social dataset presets.
//!
//! Each preset mirrors one of the paper's road + social combinations
//! (Table II), scaled down so that the full benchmark suite runs on a laptop
//! while keeping the ratios that matter to the algorithms: road networks with
//! average degree ≈ 2.5, heavy-tailed social degree distributions, planted
//! deep cores (so the k sweep of Table III is meaningful), and the attribute
//! regime the paper uses for that dataset (independent for the four
//! network-repository datasets, zero-inflated correlated for Yelp, correlated
//! multi-metric for the Aminer case study).

use crate::attrs::{generate_attrs, AttrDistribution};
use crate::locations::{assign_locations, LocationConfig};
use crate::road::{generate_road, RoadConfig};
use crate::social::{generate_social, PlantedGroup, SocialConfig};
use rsn_core::network::RoadSocialNetwork;
use rsn_graph::graph::VertexId;

/// Identifiers of the available presets (road + social combinations of the
/// evaluation section, plus the two case-study networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresetName {
    /// San-Francisco-like road + Slashdot-like social network.
    SfSlashdot,
    /// San-Francisco-like road + Delicious-like social network.
    SfDelicious,
    /// Florida-like road + Lastfm-like social network.
    FlLastfm,
    /// Florida-like road + Flixster-like social network.
    FlFlixster,
    /// Florida-like road + Yelp-like social network (zero-inflated attributes).
    FlYelp,
    /// North-America-like road + Aminer-like collaboration network (4 attrs).
    AminerNa,
    /// San-Francisco-like road + Yelp-like network for the second case study.
    YelpSf,
}

impl PresetName {
    /// All presets, in the order used by the benchmark harness.
    pub fn all() -> &'static [PresetName] {
        &[
            PresetName::SfSlashdot,
            PresetName::SfDelicious,
            PresetName::FlLastfm,
            PresetName::FlFlixster,
            PresetName::FlYelp,
            PresetName::AminerNa,
            PresetName::YelpSf,
        ]
    }

    /// Human-readable name matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            PresetName::SfSlashdot => "SF+Slashdot",
            PresetName::SfDelicious => "SF+Delicious",
            PresetName::FlLastfm => "FL+Lastfm",
            PresetName::FlFlixster => "FL+Flixster",
            PresetName::FlYelp => "FL+Yelp",
            PresetName::AminerNa => "NA+Aminer",
            PresetName::YelpSf => "SF+Yelp",
        }
    }

    /// Parses a CLI-style name (e.g. `sf_slashdot`).
    pub fn parse(name: &str) -> Option<PresetName> {
        match name.to_ascii_lowercase().as_str() {
            "sf_slashdot" | "sf+slashdot" => Some(PresetName::SfSlashdot),
            "sf_delicious" | "sf+delicious" => Some(PresetName::SfDelicious),
            "fl_lastfm" | "fl+lastfm" => Some(PresetName::FlLastfm),
            "fl_flixster" | "fl+flixster" => Some(PresetName::FlFlixster),
            "fl_yelp" | "fl+yelp" => Some(PresetName::FlYelp),
            "aminer_na" | "na+aminer" => Some(PresetName::AminerNa),
            "yelp_sf" | "sf+yelp" => Some(PresetName::YelpSf),
            _ => None,
        }
    }
}

/// A generated dataset: the network plus bookkeeping the harness needs to
/// form queries the same way the paper does (query vertices drawn from the
/// k-core, co-located so that a (k,t)-core exists).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which preset generated this dataset.
    pub name: PresetName,
    /// The road-social network.
    pub rsn: RoadSocialNetwork,
    /// Members of the planted deep groups (spatially tight, high coreness).
    pub deep_groups: Vec<Vec<VertexId>>,
    /// The attribute regime used.
    pub attr_distribution: AttrDistribution,
    /// A sensible default query-distance threshold for this road network
    /// (plays the role of the per-road-network `t` defaults of Table III).
    pub default_t: f64,
}

impl Dataset {
    /// Query vertices for a sweep: `count` members of the first planted deep
    /// group (they are mutually close in the road network and have high
    /// coreness, mirroring the paper's query selection from the k-core).
    pub fn query_vertices(&self, count: usize) -> Vec<VertexId> {
        let group = &self.deep_groups[0];
        group.iter().copied().take(count.max(1)).collect()
    }
}

/// Scaling factor applied to every preset (1.0 = the default laptop scale).
#[derive(Debug, Clone, Copy)]
pub struct PresetScale {
    /// Multiplier on the number of social users.
    pub social: f64,
    /// Multiplier on the number of road vertices.
    pub road: f64,
}

impl Default for PresetScale {
    fn default() -> Self {
        PresetScale {
            social: 1.0,
            road: 1.0,
        }
    }
}

/// Builds a preset at the default scale.
pub fn build_preset(name: PresetName) -> Dataset {
    build_preset_scaled(name, PresetScale::default(), 0)
}

/// Builds a preset with an explicit scale and seed offset.
pub fn build_preset_scaled(name: PresetName, scale: PresetScale, seed: u64) -> Dataset {
    let (road_n, social_n, attach_m, d, dist, default_t) = match name {
        // road size, social size, PA attachment, #attrs, attr regime, default t
        PresetName::SfSlashdot => (1_600, 2_500, 6, 3, AttrDistribution::Independent, 30.0),
        PresetName::SfDelicious => (1_600, 4_000, 3, 3, AttrDistribution::Independent, 30.0),
        PresetName::FlLastfm => (3_600, 6_000, 4, 3, AttrDistribution::Independent, 40.0),
        PresetName::FlFlixster => (3_600, 8_000, 3, 3, AttrDistribution::Independent, 40.0),
        PresetName::FlYelp => (
            3_600,
            9_000,
            3,
            3,
            AttrDistribution::ZeroInflatedCorrelated,
            40.0,
        ),
        PresetName::AminerNa => (2_500, 3_000, 3, 4, AttrDistribution::Correlated, 50.0),
        PresetName::YelpSf => (
            1_600,
            3_000,
            3,
            3,
            AttrDistribution::ZeroInflatedCorrelated,
            30.0,
        ),
    };
    let road_n = ((road_n as f64) * scale.road).round().max(64.0) as usize;
    let social_n = ((social_n as f64) * scale.social).round().max(256.0) as usize;

    let road = generate_road(&RoadConfig::with_size(road_n, 0xA11CE ^ seed));
    // Planted groups: one deep group supporting the largest k of the sweeps
    // (k = 64) plus two medium groups, mirroring the k_max range of Table II.
    let planted = vec![
        PlantedGroup {
            size: 90,
            degree: 68,
        },
        PlantedGroup {
            size: 60,
            degree: 34,
        },
        PlantedGroup {
            size: 40,
            degree: 18,
        },
    ];
    let social = generate_social(&SocialConfig {
        n: social_n,
        attach_m,
        planted,
        seed: 0xB0B ^ seed,
    });
    let attrs = generate_attrs(social_n, d, dist, 10.0, 0xC0FFEE ^ seed);
    let locations = assign_locations(
        &road,
        social_n,
        &social.groups,
        &LocationConfig {
            clusters: 24,
            radius: 6,
            seed: 0xD00D ^ seed,
        },
    );
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs)
        .expect("generated preset must be consistent");
    Dataset {
        name,
        rsn,
        deep_groups: social.groups,
        attr_distribution: dist,
        default_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_graph::core_decomp::max_core_number;

    #[test]
    fn preset_names_round_trip() {
        for &p in PresetName::all() {
            let label = p.label();
            assert!(PresetName::parse(label).is_some(), "cannot parse {label}");
        }
        assert_eq!(
            PresetName::parse("sf_slashdot"),
            Some(PresetName::SfSlashdot)
        );
        assert_eq!(PresetName::parse("nonsense"), None);
    }

    #[test]
    fn small_scale_preset_is_consistent() {
        let dataset = build_preset_scaled(
            PresetName::SfSlashdot,
            PresetScale {
                social: 0.2,
                road: 0.2,
            },
            7,
        );
        assert!(dataset.rsn.num_users() >= 256);
        assert_eq!(dataset.rsn.attribute_dim(), 3);
        // the planted deep group supports k = 64
        assert!(max_core_number(dataset.rsn.social()) >= 64);
        let q = dataset.query_vertices(4);
        assert_eq!(q.len(), 4);
        for &v in &q {
            assert!((v as usize) < dataset.rsn.num_users());
        }
    }
}

//! Synthetic road networks.
//!
//! Real road networks are sparse and near-planar with an average degree of
//! roughly 2.5 (Table II lists 2.55 for San Francisco and 2.53 for Florida).
//! The generator below builds a jittered grid backbone, removes a fraction of
//! the grid edges, and adds a few shortcut edges, which reproduces those
//! degree statistics and gives realistic shortest-path structure.

use rand::prelude::*;
use rand::rngs::StdRng;
use rsn_road::network::{RoadNetwork, RoadNetworkBuilder};

/// Configuration of the synthetic road network generator.
#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Number of grid rows.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Fraction of grid edges removed to thin the network (0.0–0.9).
    pub removal_fraction: f64,
    /// Number of additional random shortcut edges.
    pub shortcuts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RoadConfig {
    /// A road network with roughly `n` vertices and average degree ≈ 2.5.
    pub fn with_size(n: usize, seed: u64) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        RoadConfig {
            rows: side.max(2),
            cols: side.max(2),
            removal_fraction: 0.35,
            shortcuts: n / 50,
            seed,
        }
    }
}

/// Generates a synthetic road network.
///
/// The grid backbone guarantees that the surviving network stays largely
/// connected; edge weights model segment travel costs and are drawn uniformly
/// from `[1, 5)` with mild spatial correlation.
pub fn generate_road(cfg: &RoadConfig) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.rows * cfg.cols;
    let mut builder = RoadNetworkBuilder::new(n);
    let idx = |r: usize, c: usize| (r * cfg.cols + c) as u32;

    // Horizontal backbone chains (one per row) plus one vertical connector per
    // row keep the network connected, as real road networks are; a thinned set
    // of vertical grid edges brings the average degree to ≈ 2.5.
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let base: f64 = rng.random_range(1.0..5.0);
            if c + 1 < cfg.cols {
                let w = (base + rng.random_range(-0.5..0.5)).max(0.5);
                let _ = builder.add_edge(idx(r, c), idx(r, c + 1), w);
            }
            if r + 1 < cfg.rows {
                let keep = rng.random_range(0.0..1.0) >= 1.0 - (1.0 - cfg.removal_fraction) * 0.4;
                if keep {
                    let w = (base + rng.random_range(-0.5..0.5)).max(0.5);
                    let _ = builder.add_edge(idx(r, c), idx(r + 1, c), w);
                }
            }
        }
        if r + 1 < cfg.rows {
            let c = if r % 2 == 0 { cfg.cols - 1 } else { 0 };
            let _ = builder.add_edge(idx(r, c), idx(r + 1, c), rng.random_range(1.0..5.0));
        }
    }
    for _ in 0..cfg.shortcuts {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        let _ = builder.add_edge(a, b, rng.random_range(3.0..10.0));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_road::dijkstra::sssp;

    #[test]
    fn generated_road_is_connected_and_sparse() {
        let cfg = RoadConfig::with_size(900, 7);
        let road = generate_road(&cfg);
        assert!(road.num_vertices() >= 900);
        let avg = road.avg_degree();
        assert!(avg > 1.5 && avg < 4.0, "avg degree {avg}");
        // connected: all distances from vertex 0 finite
        let d = sssp(&road, 0);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RoadConfig::with_size(100, 42);
        let a = generate_road(&cfg);
        let b = generate_road(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_vertices(), b.num_vertices());
    }
}

//! # rsn-datagen
//!
//! Synthetic road-social networks, numerical attributes, and location
//! assignments for the MAC reproduction.
//!
//! The paper evaluates on real road networks (San Francisco, Florida, North
//! America) paired with real social networks (Slashdot, Delicious, Lastfm,
//! Flixster, Yelp, Aminer); four of the social networks carry synthetic
//! attributes generated with the classic independent / correlated /
//! anti-correlated method of the skyline literature, and users are mapped to
//! road locations from check-ins. None of those datasets can be redistributed
//! here, so this crate generates *structurally equivalent* synthetic
//! replacements (see DESIGN.md §4 for the substitution argument):
//!
//! * [`road`] — sparse, near-planar road networks with average degree ≈ 2.5.
//! * [`social`] — preferential-attachment graphs with planted dense groups so
//!   that deep k-cores exist (tunable `k_max`).
//! * [`attrs`] — independent / correlated / anti-correlated / zero-inflated
//!   attribute generators.
//! * [`locations`] — check-in style clustered location assignment.
//! * [`presets`] — named road-social datasets mirroring the scale ratios of
//!   Table II, plus the Aminer-like and Yelp-like case-study networks.
//! * [`paper_example`] — the running example of Fig. 1 / Fig. 2 used across
//!   the test suites.
//! * [`stats`] — dataset statistics (Table II columns).

pub mod attrs;
pub mod locations;
pub mod paper_example;
pub mod presets;
pub mod road;
pub mod social;
pub mod stats;

pub use attrs::AttrDistribution;
pub use presets::{build_preset, Dataset, PresetName};

//! Dataset statistics (the columns of Table II).

use rsn_core::network::RoadSocialNetwork;
use rsn_graph::core_decomp::max_core_number;

/// The Table II columns for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of social users.
    pub social_vertices: usize,
    /// Number of friendship edges.
    pub social_edges: usize,
    /// Average social degree.
    pub dg_avg: f64,
    /// Maximum social degree.
    pub dg_max: usize,
    /// Maximum core number of the social network.
    pub k_max: u32,
    /// Number of road vertices.
    pub road_vertices: usize,
    /// Number of road edges.
    pub road_edges: usize,
    /// Average road degree.
    pub road_dg_avg: f64,
}

/// Computes the statistics of a road-social network.
pub fn dataset_stats(rsn: &RoadSocialNetwork) -> DatasetStats {
    let social = rsn.social();
    let road = rsn.road();
    DatasetStats {
        social_vertices: social.num_vertices(),
        social_edges: social.num_edges(),
        dg_avg: social.avg_degree(),
        dg_max: social.max_degree(),
        k_max: max_core_number(social),
        road_vertices: road.num_vertices(),
        road_edges: road.num_edges(),
        road_dg_avg: road.avg_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::paper_example_network;

    #[test]
    fn paper_example_stats() {
        let rsn = paper_example_network();
        let stats = dataset_stats(&rsn);
        assert_eq!(stats.social_vertices, 15);
        assert_eq!(stats.road_vertices, 15);
        assert!(stats.k_max >= 3);
        assert!(stats.dg_avg > 0.0);
        assert!(stats.dg_max >= 6);
    }
}

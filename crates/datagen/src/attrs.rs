//! Numerical attribute generators.
//!
//! For the social networks without native attributes, the paper generates
//! independent, correlated and anti-correlated d-dimensional attributes with
//! the classic method of Börzsönyi et al. (the skyline benchmark generator),
//! and observes (Exp-6) that real attributes — such as Yelp's compliment
//! counts — are heavily correlated and zero-inflated, which shrinks the
//! r-dominance DAG branching. This module provides all four regimes.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Attribute-distribution regimes used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrDistribution {
    /// Each dimension drawn independently and uniformly.
    Independent,
    /// Values clustered around a shared per-user base value.
    Correlated,
    /// Values near a hyperplane of constant sum (good in one dimension means
    /// bad in another).
    AntiCorrelated,
    /// Correlated with a large point mass at zero — the "real attributes"
    /// regime that mimics Yelp compliment counts (Exp-6).
    ZeroInflatedCorrelated,
}

/// Generates `n` attribute vectors with `d` dimensions in `[0, scale]`.
pub fn generate_attrs(
    n: usize,
    d: usize,
    dist: AttrDistribution,
    scale: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| one_vector(&mut rng, d, dist, scale))
        .collect()
}

fn one_vector(rng: &mut StdRng, d: usize, dist: AttrDistribution, scale: f64) -> Vec<f64> {
    match dist {
        AttrDistribution::Independent => (0..d).map(|_| rng.random_range(0.0..scale)).collect(),
        AttrDistribution::Correlated => {
            let base: f64 = rng.random_range(0.0..scale);
            (0..d)
                .map(|_| {
                    let jitter = rng.random_range(-0.1 * scale..0.1 * scale);
                    (base + jitter).clamp(0.0, scale)
                })
                .collect()
        }
        AttrDistribution::AntiCorrelated => {
            // Sample d values whose sum stays near scale * d / 2.
            let mut values: Vec<f64> = (0..d).map(|_| rng.random_range(0.0..1.0)).collect();
            let sum: f64 = values.iter().sum();
            let target = d as f64 / 2.0 + rng.random_range(-0.05 * d as f64..0.05 * d as f64);
            let factor = if sum > 0.0 { target / sum } else { 1.0 };
            for v in &mut values {
                *v = (*v * factor * scale / 1.0).clamp(0.0, scale);
            }
            values
        }
        AttrDistribution::ZeroInflatedCorrelated => {
            if rng.random_range(0.0..1.0) < 0.6 {
                // inactive user: all-zero attributes (the Yelp long tail)
                vec![0.0; d]
            } else {
                let base: f64 = rng.random_range(0.0..scale);
                (0..d)
                    .map(|_| {
                        let jitter = rng.random_range(-0.05 * scale..0.05 * scale);
                        (base + jitter).clamp(0.0, scale)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        for dist in [
            AttrDistribution::Independent,
            AttrDistribution::Correlated,
            AttrDistribution::AntiCorrelated,
            AttrDistribution::ZeroInflatedCorrelated,
        ] {
            let attrs = generate_attrs(500, 4, dist, 10.0, 5);
            assert_eq!(attrs.len(), 500);
            for a in &attrs {
                assert_eq!(a.len(), 4);
                assert!(a.iter().all(|&x| (0.0..=10.0).contains(&x)));
            }
        }
    }

    #[test]
    fn correlated_vectors_have_small_spread() {
        let corr = generate_attrs(300, 3, AttrDistribution::Correlated, 10.0, 6);
        let indep = generate_attrs(300, 3, AttrDistribution::Independent, 10.0, 6);
        let spread = |rows: &[Vec<f64>]| -> f64 {
            rows.iter()
                .map(|a| {
                    let max = a.iter().cloned().fold(f64::MIN, f64::max);
                    let min = a.iter().cloned().fold(f64::MAX, f64::min);
                    max - min
                })
                .sum::<f64>()
                / rows.len() as f64
        };
        assert!(spread(&corr) < spread(&indep));
    }

    #[test]
    fn anticorrelated_sums_are_concentrated() {
        let anti = generate_attrs(300, 3, AttrDistribution::AntiCorrelated, 10.0, 7);
        let sums: Vec<f64> = anti.iter().map(|a| a.iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sums.len() as f64;
        let indep = generate_attrs(300, 3, AttrDistribution::Independent, 10.0, 7);
        let isums: Vec<f64> = indep.iter().map(|a| a.iter().sum()).collect();
        let imean = isums.iter().sum::<f64>() / isums.len() as f64;
        let ivar = isums.iter().map(|s| (s - imean).powi(2)).sum::<f64>() / isums.len() as f64;
        assert!(
            var < ivar,
            "anti-correlated sums should vary less ({var} vs {ivar})"
        );
    }

    #[test]
    fn zero_inflation_present() {
        let attrs = generate_attrs(1000, 3, AttrDistribution::ZeroInflatedCorrelated, 10.0, 8);
        let zero_rows = attrs.iter().filter(|a| a.iter().all(|&x| x == 0.0)).count();
        assert!(
            zero_rows > 400,
            "expected a large zero point-mass, got {zero_rows}"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_attrs(50, 3, AttrDistribution::Independent, 1.0, 99);
        let b = generate_attrs(50, 3, AttrDistribution::Independent, 1.0, 99);
        assert_eq!(a, b);
    }
}

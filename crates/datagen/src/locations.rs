//! Check-in style location assignment.
//!
//! The paper maps every social user to a road-network point drawn from recent
//! check-ins, which cluster around hotspots. We reproduce that by sampling a
//! set of cluster centres on the road network and placing each user on a road
//! vertex a small (geometrically distributed) number of hops away from its
//! cluster centre. Planted social groups are kept spatially tight so that a
//! (k,t)-core actually exists for reasonable `t`.

use rand::prelude::*;
use rand::rngs::StdRng;
use rsn_graph::graph::VertexId;
use rsn_road::network::{Location, RoadNetwork};
use std::collections::VecDeque;

/// Configuration for the location assignment.
#[derive(Debug, Clone)]
pub struct LocationConfig {
    /// Number of check-in hotspots.
    pub clusters: usize,
    /// Maximum BFS radius (in hops) around a hotspot.
    pub radius: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LocationConfig {
    fn default() -> Self {
        LocationConfig {
            clusters: 16,
            radius: 6,
            seed: 0,
        }
    }
}

/// Assigns one road location to every user. Users listed in `tight_groups`
/// are placed inside the BFS ball of a single hotspot per group, which keeps
/// each group's pairwise road distances small.
pub fn assign_locations(
    road: &RoadNetwork,
    n_users: usize,
    tight_groups: &[Vec<VertexId>],
    cfg: &LocationConfig,
) -> Vec<Location> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_road = road.num_vertices().max(1) as u32;
    let centers: Vec<u32> = (0..cfg.clusters.max(1))
        .map(|_| rng.random_range(0..n_road))
        .collect();
    let balls: Vec<Vec<u32>> = centers
        .iter()
        .map(|&c| bfs_ball(road, c, cfg.radius))
        .collect();

    let mut locations: Vec<Location> = (0..n_users)
        .map(|_| {
            let ball = &balls[rng.random_range(0..balls.len())];
            Location::vertex(ball[rng.random_range(0..ball.len())])
        })
        .collect();

    // Tight groups: one dedicated hotspot per group, small radius.
    for (gi, group) in tight_groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let center = centers[gi % centers.len()];
        let ball = bfs_ball(road, center, 2.max(cfg.radius / 3));
        for &u in group {
            if (u as usize) < n_users {
                locations[u as usize] = Location::vertex(ball[rng.random_range(0..ball.len())]);
            }
        }
    }
    locations
}

/// Road vertices within `radius` hops of `center` (always contains `center`).
fn bfs_ball(road: &RoadNetwork, center: u32, radius: usize) -> Vec<u32> {
    let mut dist = vec![usize::MAX; road.num_vertices()];
    let mut out = vec![center];
    let mut queue = VecDeque::new();
    dist[center as usize] = 0;
    queue.push_back(center);
    while let Some(v) = queue.pop_front() {
        if dist[v as usize] >= radius {
            continue;
        }
        for &(u, _) in road.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                out.push(u);
                queue.push_back(u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{generate_road, RoadConfig};
    use rsn_road::querydist::QueryDistanceIndex;

    #[test]
    fn assigns_one_location_per_user() {
        let road = generate_road(&RoadConfig::with_size(400, 3));
        let locations = assign_locations(&road, 1000, &[], &LocationConfig::default());
        assert_eq!(locations.len(), 1000);
        for loc in &locations {
            assert!(road.validate_location(loc).is_ok());
        }
    }

    #[test]
    fn tight_groups_are_spatially_close() {
        let road = generate_road(&RoadConfig::with_size(900, 5));
        let group: Vec<u32> = (0..40).collect();
        let locations = assign_locations(
            &road,
            500,
            std::slice::from_ref(&group),
            &LocationConfig {
                clusters: 10,
                radius: 8,
                seed: 2,
            },
        );
        // the pairwise query distance within the tight group stays bounded
        let group_locs: Vec<_> = group.iter().map(|&u| locations[u as usize]).collect();
        let idx = QueryDistanceIndex::build(&road, &group_locs[..3], None);
        let dq = idx.query_distance_of_members(&group_locs);
        assert!(dq.is_finite());
        // and it is much smaller than the network diameter proxy
        let all_idx = QueryDistanceIndex::build(&road, &[group_locs[0]], None);
        let diameter_proxy = (0..road.num_vertices() as u32)
            .map(|v| all_idx.query_distance_of_vertex(v))
            .fold(0.0f64, f64::max);
        assert!(dq <= diameter_proxy);
    }
}

//! A bounded multi-producer/multi-consumer request queue.
//!
//! The std library ships no bounded MPMC channel and the workspace vendors no
//! lock-free one, so this is the classic two-condvar bounded buffer: one
//! mutex-guarded `VecDeque`, a `not_empty` condvar for consumers and a
//! `not_full` condvar for producers. At serving granularity (one MAC query
//! per item, each costing far more than a mutex handoff) the contention on
//! the queue lock is irrelevant; what matters is the behavior at the edges —
//! a bounded [`push`](BoundedQueue::push) provides natural back-pressure, a
//! non-blocking [`try_push`](BoundedQueue::try_push) lets an open-loop caller
//! shed load instead, and [`close`](BoundedQueue::close) drains: consumers
//! keep receiving queued items after a close and only see `None` once the
//! queue is empty, so every accepted request is served before shutdown
//! completes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a non-blocking [`try_push`](BoundedQueue::try_push) did not enqueue;
/// both variants hand the item back to the caller.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue was at capacity (open-loop callers count this as shed load).
    Full(T),
    /// The queue was closed.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPMC queue with drain-on-close semantics.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Locks the state, recovering from a poisoned mutex: the queue holds
    /// plain data (no invariants a panicking thread could tear), so serving
    /// continues after a worker panic rather than cascading poison.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues an item, blocking while the queue is full (back-pressure).
    /// Returns the item when the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues an item without blocking, handing it back when the queue is
    /// full or closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and open.
    /// Returns `None` only when the queue is closed **and** drained, so no
    /// accepted item is ever dropped.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: producers fail from now on, consumers drain the
    /// remaining items and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_sheds_when_full_and_close_drains() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(TryPushError::Full(3))));
        q.close();
        assert!(matches!(q.try_push(4), Err(TryPushError::Closed(4))));
        assert!(q.push(5).is_err());
        // Items accepted before the close still drain in order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(7).unwrap();
        q.close();
        let mut got: Vec<_> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn full_queue_backpressures_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // The producer blocks until this pop frees a slot.
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }
}

//! Query coalescing: identical in-flight requests share one execution.
//!
//! Under skewed traffic (the usual production shape — a few hot communities
//! asked about again and again) many concurrently queued requests are *bit
//! identical*: same query users, `k`, `t`, region, `j`, algorithm, and
//! budget limits. Executing each one is pure waste; the answer is the same
//! cells. The in-flight table maps a [`CoalesceKey`] to the
//! [`ResponseCell`] of the execution already queued for it, and later
//! identical submissions attach to that cell instead of enqueueing — one
//! execution fans its result out to every waiter.
//!
//! Two rules keep coalescing answer-preserving:
//!
//! * The key covers **everything that can change the answer**: the full
//!   [`QuerySignature`] (users, `k`, `t`, region bounds bit-exact, `j`,
//!   algorithm) plus the budget's deadline and work limit (budgets shape
//!   *partial* answers, so requests with different limits never share).
//! * Only *in-flight* executions are joined. The worker removes the key
//!   **before** publishing the result, so a submission arriving after
//!   completion starts a fresh execution on the current epoch instead of
//!   reading a result computed on an older one.
//!
//! Requests carrying a cancellation flag never coalesce: cancelling one
//! waiter must not cancel strangers sharing its execution.

use rsn_core::{QueryBudget, QuerySignature};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::server::Response;

/// Identity of one coalescable request: everything that can influence the
/// response payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    signature: QuerySignature,
    /// Deadline in nanoseconds (budgets shape partial answers).
    deadline_nanos: Option<u128>,
    work_limit: Option<u64>,
}

impl CoalesceKey {
    /// Builds the key for a request, or `None` when the request must not
    /// coalesce (it carries a cancellation flag).
    pub fn for_request(signature: QuerySignature, budget: &QueryBudget) -> Option<CoalesceKey> {
        if budget.cancel.is_some() {
            return None;
        }
        Some(CoalesceKey {
            signature,
            deadline_nanos: budget.deadline.as_ref().map(Duration::as_nanos),
            work_limit: budget.work_limit,
        })
    }
}

/// The rendezvous between one execution and its waiters: the worker fulfills
/// the cell once, every attached [`ResponseHandle`](crate::server::ResponseHandle)
/// reads the shared [`Response`].
#[derive(Debug, Default)]
pub struct ResponseCell {
    slot: Mutex<Option<Arc<Response>>>,
    ready: Condvar,
}

impl ResponseCell {
    pub fn new() -> Self {
        ResponseCell::default()
    }

    fn lock(&self) -> MutexGuard<'_, Option<Arc<Response>>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes the response and wakes every waiter. Called exactly once
    /// per cell (by the worker that executed the request, or by the
    /// submitter on an enqueue failure).
    pub fn fulfill(&self, response: Arc<Response>) {
        let mut slot = self.lock();
        debug_assert!(slot.is_none(), "a response cell is fulfilled only once");
        *slot = Some(response);
        drop(slot);
        self.ready.notify_all();
    }

    /// Blocks until the response is published.
    pub fn wait(&self) -> Arc<Response> {
        let mut slot = self.lock();
        loop {
            if let Some(response) = slot.as_ref() {
                return Arc::clone(response);
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns the response if already published, without blocking.
    pub fn try_get(&self) -> Option<Arc<Response>> {
        self.lock().as_ref().map(Arc::clone)
    }
}

/// The table of in-flight coalescable executions.
#[derive(Debug, Default)]
pub struct InflightTable {
    map: Mutex<HashMap<CoalesceKey, Arc<ResponseCell>>>,
}

/// What [`InflightTable::join_or_insert`] decided for a submission.
pub enum Admission {
    /// An identical request is already in flight; attach to its cell and do
    /// not enqueue anything.
    Joined(Arc<ResponseCell>),
    /// This submission leads: its cell is now in the table, enqueue the
    /// execution.
    Leads(Arc<ResponseCell>),
}

impl InflightTable {
    pub fn new() -> Self {
        InflightTable::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<CoalesceKey, Arc<ResponseCell>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of distinct executions currently in flight.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no coalescable execution is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Joins the in-flight execution for `key`, or registers a fresh cell
    /// and makes the caller the leader responsible for enqueueing it.
    pub fn join_or_insert(&self, key: &CoalesceKey) -> Admission {
        let mut map = self.lock();
        if let Some(cell) = map.get(key) {
            return Admission::Joined(Arc::clone(cell));
        }
        let cell = Arc::new(ResponseCell::new());
        map.insert(key.clone(), Arc::clone(&cell));
        Admission::Leads(cell)
    }

    /// Retires `key` so later identical submissions start a fresh execution.
    /// Called by the worker **before** fulfilling the cell (completion must
    /// not race new joiners onto a finished execution), and by a leader
    /// whose enqueue failed.
    pub fn retire(&self, key: &CoalesceKey) {
        self.lock().remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::MacQuery;
    use rsn_geom::region::PrefRegion;

    fn signature() -> QuerySignature {
        let region = PrefRegion::from_ranges(&[(0.2, 0.8)]).unwrap();
        MacQuery::new(vec![0, 1], 2, 10.0, region).signature()
    }

    #[test]
    fn budgets_split_keys_and_cancel_flags_opt_out() {
        let unlimited = QueryBudget::new();
        let deadline = QueryBudget::new().with_deadline(Duration::from_millis(5));
        let k1 = CoalesceKey::for_request(signature(), &unlimited).unwrap();
        let k2 = CoalesceKey::for_request(signature(), &deadline).unwrap();
        let k3 = CoalesceKey::for_request(signature(), &unlimited).unwrap();
        assert_ne!(k1, k2, "different budgets must not share an execution");
        assert_eq!(k1, k3);
        let cancellable = QueryBudget::new()
            .with_cancel_flag(Arc::new(std::sync::atomic::AtomicBool::new(false)));
        assert!(CoalesceKey::for_request(signature(), &cancellable).is_none());
    }

    #[test]
    fn second_submission_joins_and_retire_starts_fresh() {
        let table = InflightTable::new();
        let key = CoalesceKey::for_request(signature(), &QueryBudget::new()).unwrap();
        let lead = match table.join_or_insert(&key) {
            Admission::Leads(cell) => cell,
            Admission::Joined(_) => panic!("first submission must lead"),
        };
        let joined = match table.join_or_insert(&key) {
            Admission::Joined(cell) => cell,
            Admission::Leads(_) => panic!("second submission must join"),
        };
        assert!(Arc::ptr_eq(&lead, &joined));
        assert_eq!(table.len(), 1);
        table.retire(&key);
        assert!(table.is_empty());
        assert!(matches!(table.join_or_insert(&key), Admission::Leads(_)));
    }
}

//! The threaded serving front-end.
//!
//! [`MacServer::start`] spawns `N` worker threads over one shared
//! [`MacEngine`]. Each worker owns a pinned
//! [`QuerySession`](rsn_core::QuerySession) — the `!Sync` half of the core
//! serving API, holding that thread's scratch buffers and (optionally) its
//! [`ContextCache`](rsn_core::ContextCache) — and pulls requests from one
//! bounded MPMC [`BoundedQueue`]. Submissions
//! return a [`ResponseHandle`] immediately; the caller blocks only when (and
//! where) it chooses to [`wait`](ResponseHandle::wait).
//!
//! Overload shows up in three deliberate, bounded ways rather than as
//! unbounded memory growth or tail-latency collapse:
//!
//! * the queue is bounded — [`submit`](MacServer::submit) back-pressures,
//!   [`try_submit`](MacServer::try_submit) sheds and counts;
//! * per-request [`QueryBudget`] deadlines are measured **from submission**:
//!   time burned waiting in the queue comes out of the execution allowance,
//!   so an overloaded server degrades to fast
//!   [`Partial`](QueryOutcome::Partial) answers instead of serving stale
//!   deadlines late;
//! * identical in-flight requests [coalesce](crate::coalesce) into one
//!   execution.
//!
//! [`shutdown`](MacServer::shutdown) closes the queue, drains it (every
//! accepted request is answered), joins the workers, and returns the merged
//! [`ServerStats`].

use crate::coalesce::{Admission, CoalesceKey, InflightTable, ResponseCell};
use crate::queue::{BoundedQueue, TryPushError};
use rsn_core::{
    ExecutionPolicy, MacEngine, MacError, MacQuery, QueryBudget, QueryOutcome, SessionStats,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`MacServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Bounded request-queue capacity (minimum 1).
    pub queue_capacity: usize,
    /// Whether identical in-flight requests share one execution.
    pub coalescing: bool,
    /// Per-worker [`ContextCache`](rsn_core::ContextCache) capacity
    /// (0 = caching disabled).
    pub context_cache_capacity: usize,
    /// The [`ExecutionPolicy`] every worker session executes under. Its
    /// [`default_budget`](ExecutionPolicy::default_budget) is the budget
    /// [`submit`](MacServer::submit) / [`try_submit`](MacServer::try_submit)
    /// apply (deadlines measured **from submission**); its parallelism knobs
    /// default to serial — a server already runs one session per core, so
    /// intra-query parallelism only pays off for latency-critical
    /// deployments with idle cores.
    pub policy: ExecutionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 256,
            coalescing: true,
            context_cache_capacity: rsn_core::DEFAULT_CONTEXT_CACHE_CAPACITY,
            policy: ExecutionPolicy::default(),
        }
    }
}

/// Why a response carries no query outcome.
#[derive(Debug)]
pub enum ServeError {
    /// The query itself failed (invalid query, contained panic).
    Query(MacError),
    /// The server began shutting down after this request attached to an
    /// in-flight execution whose enqueue then failed.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is shutting down.
    Closed,
    /// The queue is at capacity ([`try_submit`](MacServer::try_submit) only;
    /// [`submit`](MacServer::submit) blocks instead).
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "server shutting down"),
            SubmitError::QueueFull => write!(f, "request queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One served request's result and metadata. Shared (`Arc`) by every handle
/// of a coalesced execution.
#[derive(Debug)]
pub struct Response {
    /// The query outcome, or why there is none.
    pub outcome: Result<QueryOutcome, ServeError>,
    /// Submission-to-response wall-clock time (queue wait + execution).
    pub latency: Duration,
    /// Index of the worker that executed the request (`None` when the
    /// request never reached a worker).
    pub worker: Option<usize>,
    /// Engine epoch current when the worker dispatched the request.
    pub epoch: u64,
}

/// A claim on one submitted request's [`Response`].
#[derive(Debug)]
pub struct ResponseHandle {
    cell: Arc<ResponseCell>,
}

impl ResponseHandle {
    /// Blocks until the response is published. The server answers every
    /// accepted request — including queued ones during shutdown — so this
    /// always returns.
    pub fn wait(&self) -> Arc<Response> {
        self.cell.wait()
    }

    /// Returns the response if already published, without blocking.
    pub fn try_get(&self) -> Option<Arc<Response>> {
        self.cell.try_get()
    }
}

/// Merged statistics of one server's lifetime, returned by
/// [`MacServer::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests accepted (enqueued or coalesced onto an in-flight one).
    pub submitted: u64,
    /// Accepted requests answered by joining an in-flight identical
    /// execution instead of enqueueing their own.
    pub coalesced_joins: u64,
    /// Requests [`try_submit`](MacServer::try_submit) turned away with a
    /// full queue.
    pub shed: u64,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Merged per-worker session counters (executions, partials, errors,
    /// context-cache hits — see [`SessionStats`]).
    pub sessions: SessionStats,
}

impl ServerStats {
    /// Fraction of accepted requests served by coalescing, in `[0, 1]`.
    pub fn coalescing_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.coalesced_joins as f64 / self.submitted as f64
        }
    }

    /// Context-cache hit fraction across all workers, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.sessions.cache_hit_rate()
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted ({} coalesced, {} shed) across {} workers; {}",
            self.submitted, self.coalesced_joins, self.shed, self.workers, self.sessions
        )
    }
}

/// One queued request.
struct Request {
    query: MacQuery,
    budget: QueryBudget,
    key: Option<CoalesceKey>,
    cell: Arc<ResponseCell>,
    submitted_at: Instant,
}

struct Shared {
    queue: BoundedQueue<Request>,
    inflight: InflightTable,
    submitted: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
}

/// The threaded serving front-end over one [`MacEngine`]. See the
/// [module docs](self) for the architecture and
/// [the crate docs](crate) for a quickstart.
#[derive(Debug)]
pub struct MacServer {
    shared: Arc<Shared>,
    engine: MacEngine,
    config: ServeConfig,
    workers: Vec<JoinHandle<SessionStats>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .field("in_flight", &self.inflight.len())
            .finish_non_exhaustive()
    }
}

impl MacServer {
    /// Spawns the worker pool and starts serving. The engine stays shared:
    /// the caller keeps applying
    /// [`NetworkDelta`](rsn_core::NetworkDelta)s through its own clone, and
    /// workers pick each new epoch up at their next query.
    pub fn start(engine: MacEngine, config: ServeConfig) -> MacServer {
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            inflight: InflightTable::new(),
            submitted: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let engine = engine.clone();
                let cache_capacity = config.context_cache_capacity;
                let policy = config.policy.clone();
                std::thread::Builder::new()
                    .name(format!("rsn-serve-{worker}"))
                    .spawn(move || worker_loop(&shared, engine, worker, cache_capacity, policy))
                    .expect("spawn serve worker")
            })
            .collect();
        MacServer {
            shared,
            engine,
            config,
            workers,
        }
    }

    /// Number of worker threads serving.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Current request-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Submits a query under the configured default budget, blocking while
    /// the queue is full (back-pressure).
    pub fn submit(&self, query: MacQuery) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(query, self.config.policy.default_budget.clone(), true)
    }

    /// Submits a query under an explicit per-request budget, blocking while
    /// the queue is full. The deadline is measured **from submission**:
    /// queue wait counts against it, so a request that waited too long comes
    /// back as an immediate empty [`Partial`](QueryOutcome::Partial) instead
    /// of executing past its deadline.
    pub fn submit_with_budget(
        &self,
        query: MacQuery,
        budget: QueryBudget,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(query, budget, true)
    }

    /// Non-blocking submission under the default budget: a full queue sheds
    /// the request (counted in [`ServerStats::shed`]) instead of waiting.
    pub fn try_submit(&self, query: MacQuery) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(query, self.config.policy.default_budget.clone(), false)
    }

    fn submit_inner(
        &self,
        query: MacQuery,
        budget: QueryBudget,
        blocking: bool,
    ) -> Result<ResponseHandle, SubmitError> {
        let key = if self.config.coalescing {
            CoalesceKey::for_request(query.signature(), &budget)
        } else {
            None
        };
        let cell = match &key {
            Some(key) => match self.shared.inflight.join_or_insert(key) {
                Admission::Joined(cell) => {
                    self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                    self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Ok(ResponseHandle { cell });
                }
                Admission::Leads(cell) => cell,
            },
            None => Arc::new(ResponseCell::new()),
        };
        let request = Request {
            query,
            budget,
            key: key.clone(),
            cell: Arc::clone(&cell),
            submitted_at: Instant::now(),
        };
        let pushed = if blocking {
            self.shared
                .queue
                .push(request)
                .map_err(|_| SubmitError::Closed)
        } else {
            self.shared.queue.try_push(request).map_err(|e| match e {
                TryPushError::Full(_) => {
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    SubmitError::QueueFull
                }
                TryPushError::Closed(_) => SubmitError::Closed,
            })
        };
        match pushed {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ResponseHandle { cell })
            }
            Err(err) => {
                // Retire the failed leader and answer anyone who joined its
                // cell between the insert and this point, so no handle ever
                // waits forever.
                if let Some(key) = &key {
                    self.shared.inflight.retire(key);
                    cell.fulfill(Arc::new(Response {
                        outcome: Err(ServeError::ShuttingDown),
                        latency: Duration::ZERO,
                        worker: None,
                        epoch: self.engine.epoch().id(),
                    }));
                }
                Err(err)
            }
        }
    }

    /// Stops accepting requests, serves everything already queued, joins the
    /// workers, and returns the merged lifetime statistics. Waiting handles
    /// all resolve before this returns.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServerStats {
        self.shared.queue.close();
        let workers = self.workers.len();
        let mut sessions = SessionStats::default();
        for handle in self.workers.drain(..) {
            if let Ok(stats) = handle.join() {
                sessions.merge(&stats);
            }
        }
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            coalesced_joins: self.shared.coalesced.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            workers,
            sessions,
        }
    }
}

impl Drop for MacServer {
    /// A dropped server shuts down cleanly (queue drained, workers joined);
    /// only the statistics are lost.
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Rebases a deadline measured from submission onto the execution start: the
/// time the request spent queued comes out of its allowance. A deadline that
/// expired in the queue becomes `Duration::ZERO`, which trips the budget at
/// its first check — the request degrades to an immediate empty partial
/// answer instead of running.
fn effective_budget(budget: &QueryBudget, submitted_at: Instant) -> QueryBudget {
    match budget.deadline {
        Some(deadline) => {
            let remaining = deadline.saturating_sub(submitted_at.elapsed());
            budget.clone().with_deadline(remaining)
        }
        None => budget.clone(),
    }
}

fn worker_loop(
    shared: &Shared,
    engine: MacEngine,
    worker: usize,
    cache_capacity: usize,
    policy: ExecutionPolicy,
) -> SessionStats {
    let mut session = engine.session().with_policy(policy);
    if cache_capacity > 0 {
        session = session.with_context_cache(cache_capacity);
    }
    while let Some(request) = shared.queue.pop() {
        let epoch = engine.epoch().id();
        let budget = effective_budget(&request.budget, request.submitted_at);
        let outcome = if budget.is_unlimited() {
            session.execute(&request.query).map(QueryOutcome::Complete)
        } else {
            session.execute_with_budget(&request.query, &budget)
        };
        // Retire the coalescing key BEFORE publishing: a submission arriving
        // after this point starts a fresh execution on the current epoch
        // rather than reading a result computed on an older one.
        if let Some(key) = &request.key {
            shared.inflight.retire(key);
        }
        request.cell.fulfill(Arc::new(Response {
            outcome: outcome.map_err(ServeError::Query),
            latency: request.submitted_at.elapsed(),
            worker: Some(worker),
            epoch,
        }));
    }
    session.stats()
}

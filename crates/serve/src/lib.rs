//! # rsn-serve
//!
//! The threaded serving front-end for the MAC engine: what turns the
//! per-thread [`QuerySession`](rsn_core::QuerySession) API of `rsn-core`
//! into a multi-client request service.
//!
//! ## Architecture
//!
//! ```text
//!   submit()/try_submit()            MacServer
//!  ───────────────────────┐   ┌──────────────────────────────────────┐
//!   ResponseHandle::wait()│   │  BoundedQueue (back-pressure/shed)   │
//!  ◄──────────────────────┤   │     │          │              │      │
//!                         │   │  worker 0   worker 1  …   worker N-1 │
//!   coalescing: identical │   │  QuerySession QuerySession …         │
//!   in-flight requests    │   │  ContextCache ContextCache …         │
//!   share one execution   │   └──────┬───────────────────────────────┘
//!                         │          │ epoch pin per query
//!                         │   ┌──────▼──────────────┐
//!                         └───│  MacEngine (shared) │◄── apply_updates()
//!                             └─────────────────────┘
//! ```
//!
//! * **Request loop** — [`MacServer::start`] spawns `N` workers, each owning
//!   one pinned session (scratch + optional
//!   [`ContextCache`](rsn_core::ContextCache)), all pulling from one bounded
//!   MPMC queue. Submissions return a [`ResponseHandle`] immediately.
//! * **Deadlines from submission** — a per-request
//!   [`QueryBudget`](rsn_core::QueryBudget) deadline includes queue wait, so
//!   an overloaded server degrades to fast
//!   [`Partial`](rsn_core::QueryOutcome::Partial) answers (each an exact
//!   prefix of the full answer) instead of serving late.
//! * **Coalescing** — identical in-flight requests (same users, `k`, `t`,
//!   region, `j`, algorithm, and budget limits) share one execution; the
//!   result fans out to every waiter. See [`coalesce`].
//! * **Updates** — the road network keeps changing underneath:
//!   [`apply_updates`](rsn_core::MacEngine::apply_updates) runs on any engine
//!   clone, and every worker picks the new epoch up at its next query.
//!
//! ## Quickstart
//!
//! ```
//! use rsn_serve::{MacServer, ServeConfig};
//! use rsn_core::{MacEngine, MacQuery};
//!
//! # let rsn = rsn_datagen::paper_example::paper_example_network();
//! # let region = rsn_datagen::paper_example::paper_region();
//! let engine = MacEngine::build(rsn);
//! let server = MacServer::start(
//!     engine.clone(),
//!     ServeConfig {
//!         workers: 2,
//!         ..ServeConfig::default()
//!     },
//! );
//!
//! // Submissions return immediately; wait where convenient.
//! let query = MacQuery::new(vec![1, 2, 5], 3, 9.0, region);
//! let handles: Vec<_> = (0..8)
//!     .map(|_| server.submit(query.clone()).unwrap())
//!     .collect();
//! for handle in &handles {
//!     let response = handle.wait();
//!     let outcome = response.outcome.as_ref().unwrap();
//!     assert!(outcome.is_complete());
//! }
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.submitted, 8);
//! // Identical in-flight requests shared executions and context builds:
//! assert_eq!(
//!     stats.coalesced_joins + stats.sessions.served
//!         + stats.sessions.errors,
//!     8
//! );
//! ```
//!
//! The open-loop load harness (`cargo run --release -p rsn-bench --bin
//! serve_load`) drives this stack with Poisson arrivals, a Zipf-skewed query
//! population, and a concurrent updater thread, and records latency
//! percentiles, throughput, and hit rates to `BENCH_PR9.json`.

pub mod coalesce;
pub mod queue;
pub mod server;

pub use coalesce::{CoalesceKey, InflightTable, ResponseCell};
pub use queue::{BoundedQueue, TryPushError};
pub use server::{
    MacServer, Response, ResponseHandle, ServeConfig, ServeError, ServerStats, SubmitError,
};

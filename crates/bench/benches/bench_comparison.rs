//! Criterion benches for the Fig. 13/14 comparison: the MAC algorithms versus
//! the Influ/Influ+/Sky/Sky+ baselines on the same (k,t)-core.

use criterion::{criterion_group, criterion_main, Criterion};
use rsn_baselines::influ::{Influ, InfluPlus};
use rsn_baselines::sky::{skyline_communities, skyline_communities_pruned};
use rsn_bench::runner::QuerySpec;
use rsn_core::{AlgorithmChoice, MacEngine, SearchContext};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn bench_comparison(c: &mut Criterion) {
    let dataset = build_preset_scaled(
        PresetName::SfDelicious,
        PresetScale {
            social: 0.12,
            road: 0.12,
        },
        0,
    );
    let spec = QuerySpec::defaults(&dataset, 16, dataset.default_t, 10, 0.01, 3);
    let query = spec.to_query();
    let engine = MacEngine::build(dataset.rsn.clone());
    let ctx = SearchContext::build(&dataset.rsn, &query)
        .unwrap()
        .expect("the default query must have a (k,t)-core");
    let pivot = query.region.pivot();

    let mut group = c.benchmark_group("fig13_comparison");
    group.sample_size(10);
    group.bench_function("GS-NC", |b| {
        let mut session = engine.session();
        let query = query.clone().with_algorithm(AlgorithmChoice::Global);
        b.iter(move || session.execute_non_contained(&query).unwrap())
    });
    group.bench_function("LS-NC", |b| {
        let mut session = engine.session();
        let query = query.clone().with_algorithm(AlgorithmChoice::Local);
        b.iter(move || session.execute_non_contained(&query).unwrap())
    });
    group.bench_function("Influ", |b| {
        let algo = Influ::new(&ctx.local_graph, &ctx.attrs);
        b.iter(|| algo.top_r(16, 10, pivot.reduced()))
    });
    group.bench_function("Influ+", |b| {
        b.iter(|| {
            let idx = InfluPlus::build(&ctx.local_graph, &ctx.attrs, 16, pivot.reduced());
            idx.top_r(10)
        })
    });
    group.bench_function("Sky", |b| {
        b.iter(|| skyline_communities(&ctx.local_graph, &ctx.attrs, 16))
    });
    group.bench_function("Sky+", |b| {
        b.iter(|| skyline_communities_pruned(&ctx.local_graph, &ctx.attrs, 16))
    });
    group.finish();
}

criterion_group!(benches, bench_comparison);
criterion_main!(benches);

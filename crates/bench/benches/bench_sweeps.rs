//! Criterion benches for the Fig. 6–10 sweeps: GS-NC / GS-T / LS-NC / LS-T at
//! the Table III defaults and at the extreme k values, on a small
//! SF+Slashdot-like dataset, served through a prepared engine with one
//! reused session per benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsn_bench::runner::QuerySpec;
use rsn_core::{AlgorithmChoice, MacEngine};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn bench_mac_algorithms(c: &mut Criterion) {
    let dataset = build_preset_scaled(
        PresetName::SfSlashdot,
        PresetScale {
            social: 0.12,
            road: 0.12,
        },
        0,
    );
    let engine = MacEngine::build(dataset.rsn.clone());
    let mut group = c.benchmark_group("fig6_sweep_k");
    group.sample_size(10);
    for &k in &[8u32, 16, 32] {
        let spec = QuerySpec::defaults(&dataset, k, dataset.default_t, 10, 0.01, 3);
        let global = spec.to_query().with_algorithm(AlgorithmChoice::Global);
        let local = spec.to_query().with_algorithm(AlgorithmChoice::Local);
        group.bench_with_input(BenchmarkId::new("GS-NC", k), &k, |b, _| {
            let mut session = engine.session();
            b.iter(|| session.execute_non_contained(&global).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("GS-T", k), &k, |b, _| {
            let mut session = engine.session();
            b.iter(|| session.execute_top_j(&global).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("LS-NC", k), &k, |b, _| {
            let mut session = engine.session();
            b.iter(|| session.execute_non_contained(&local).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("LS-T", k), &k, |b, _| {
            let mut session = engine.session();
            b.iter(|| session.execute_top_j(&local).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig6_sweep_sigma");
    group.sample_size(10);
    for &sigma in &[0.001f64, 0.01, 0.05] {
        let spec = QuerySpec::defaults(&dataset, 16, dataset.default_t, 10, sigma, 3);
        let global = spec.to_query().with_algorithm(AlgorithmChoice::Global);
        let local = spec.to_query().with_algorithm(AlgorithmChoice::Local);
        group.bench_with_input(
            BenchmarkId::new("GS-NC", format!("{sigma}")),
            &sigma,
            |b, _| {
                let mut session = engine.session();
                b.iter(|| session.execute_non_contained(&global).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("LS-NC", format!("{sigma}")),
            &sigma,
            |b, _| {
                let mut session = engine.session();
                b.iter(|| session.execute_non_contained(&local).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mac_algorithms);
criterion_main!(benches);

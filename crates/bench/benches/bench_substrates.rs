//! Criterion benches for the substrates that the MAC algorithms rely on:
//! k-core decomposition, the Lemma-1 range filter (bounded Dijkstra), G-tree
//! construction/queries, and r-dominance graph construction (Fig. 11(c)/(d)
//! supporting measurements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsn_datagen::attrs::{generate_attrs, AttrDistribution};
use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_datagen::social::{generate_social, PlantedGroup, SocialConfig};
use rsn_dom::dominance::DominanceGraph;
use rsn_geom::region::PrefRegion;
use rsn_road::dijkstra::bounded_sssp;
use rsn_road::gtree::GTree;
use rsn_road::network::Location;
use rsn_road::rangefilter::RangeFilter;

fn bench_substrates(c: &mut Criterion) {
    // k-core decomposition
    let social = generate_social(&SocialConfig {
        n: 20_000,
        attach_m: 4,
        planted: vec![PlantedGroup {
            size: 80,
            degree: 40,
        }],
        seed: 1,
    });
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.bench_function("core_decomposition_20k", |b| {
        b.iter(|| rsn_graph::core_decomp::core_numbers(&social.graph))
    });

    // bounded Dijkstra range filter
    let road = generate_road(&RoadConfig::with_size(10_000, 2));
    group.bench_function("bounded_dijkstra_range_t30", |b| {
        b.iter(|| bounded_sssp(&road, 0, 30.0))
    });

    // G-tree build + distance queries
    let small_road = generate_road(&RoadConfig::with_size(1_000, 3));
    group.bench_function("gtree_build_1k", |b| {
        b.iter(|| GTree::build_with_capacity(&small_road, 32))
    });
    let gtree = GTree::build_with_capacity(&small_road, 32);
    group.bench_function("gtree_dist_query", |b| {
        let n = small_road.num_vertices() as u32;
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % n;
            gtree.dist(i, (i * 31 + 7) % n)
        })
    });

    // Lemma-1 range filter strategies: the same set question ("which of the
    // users are within t of every query location") under the sweep, the
    // per-seed batched walk, and the multi-seed batched walk.
    {
        let road = generate_road(&RoadConfig::with_size(10_000, 7));
        let tree = GTree::build(&road);
        let n = road.num_vertices() as u32;
        let users: Vec<Location> = (0..256u32).map(|i| Location::vertex(i * 37 % n)).collect();
        let q: Vec<Location> = (0..4u32)
            .map(|i| Location::vertex((500 + i * 3) % n))
            .collect();
        let t = 60.0;
        for filter in [
            RangeFilter::DijkstraSweep,
            RangeFilter::GTreeLeafBatched(&tree),
            RangeFilter::GTreeMultiSeedBatched(&tree),
        ] {
            group.bench_function(format!("rangefilter_10k_{}", filter.name()), |b| {
                b.iter(|| filter.users_within(&road, &q, t, &users))
            });
        }
    }

    // r-dominance graph construction for increasing d (Fig. 11(d) driver)
    for &d in &[2usize, 4, 6] {
        let attrs = generate_attrs(400, d, AttrDistribution::Independent, 10.0, 5);
        let ids: Vec<u32> = (0..400).collect();
        let ranges: Vec<(f64, f64)> = (0..d - 1)
            .map(|_| (1.0 / d as f64 - 0.005, 1.0 / d as f64 + 0.005))
            .collect();
        let region = PrefRegion::from_ranges(&ranges).unwrap();
        group.bench_with_input(BenchmarkId::new("dominance_graph_400", d), &d, |b, _| {
            b.iter(|| DominanceGraph::build(&ids, &attrs, &region))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);

//! Figures 6–10: efficiency and scalability of GS-T / GS-NC / LS-T / LS-NC on
//! one road-social preset, varying k, t, d, |Q|, j and σ (Table III).
//!
//! ```text
//! cargo run -p rsn-bench --release --bin fig_sweeps -- --preset sf_slashdot [--scale 0.2] [--full]
//! ```
//!
//! Each row prints the wall-clock seconds of the four algorithms; the paper's
//! claim to reproduce is the *shape*: LS is roughly an order of magnitude
//! faster than GS at the defaults, the gap narrows as k grows, and all
//! algorithms get more expensive with d, j and σ.

use rsn_bench::params::ParamSpace;
use rsn_bench::runner::{measure_all, with_dimensionality, QuerySpec};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let preset = arg_value(&args, "--preset")
        .and_then(|s| PresetName::parse(&s))
        .unwrap_or(PresetName::SfSlashdot);
    let scale: f64 = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let full = args.iter().any(|a| a == "--full");

    let dataset = build_preset_scaled(
        preset,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );
    let params = if full {
        ParamSpace::paper(dataset.default_t)
    } else {
        ParamSpace::quick(dataset.default_t)
    };
    let d_default = dataset.rsn.attribute_dim();
    let defaults = QuerySpec::defaults(
        &dataset,
        params.k.default_value(),
        params.t.default_value(),
        params.j.default_value(),
        params.sigma.default_value(),
        d_default,
    );

    println!("Figures 6-10 sweep on {} (scale {scale})", preset.label());
    println!(
        "defaults: k={} t={:.1} d={} |Q|={} j={} sigma={}",
        defaults.k,
        defaults.t,
        defaults.d,
        defaults.q.len(),
        defaults.j,
        defaults.sigma
    );
    println!();

    let header = format!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "value", "GS-NC(s)", "GS-T(s)", "LS-NC(s)", "LS-T(s)", "|Htk|", "NC-MACs"
    );

    // (a) varying k
    println!("(a) varying k");
    println!("{header}");
    for &k in &params.k.values {
        let spec = QuerySpec {
            k,
            ..defaults.clone()
        };
        print_row(&format!("{k}"), &measure_all(&dataset.rsn, &spec));
    }

    // (b) varying t
    println!("\n(b) varying t");
    println!("{header}");
    for &t in &params.t.values {
        let spec = QuerySpec {
            t,
            ..defaults.clone()
        };
        print_row(&format!("{t:.0}"), &measure_all(&dataset.rsn, &spec));
    }

    // (c) varying d
    println!("\n(c) varying d");
    println!("{header}");
    for &d in &params.d.values {
        let rsn = with_dimensionality(&dataset, d);
        let spec = QuerySpec {
            d,
            ..defaults.clone()
        };
        print_row(&format!("{d}"), &measure_all(&rsn, &spec));
    }

    // (d) varying |Q|
    println!("\n(d) varying |Q|");
    println!("{header}");
    for &qs in &params.q_size.values {
        let spec = QuerySpec {
            q: dataset.query_vertices(qs),
            ..defaults.clone()
        };
        print_row(&format!("{qs}"), &measure_all(&dataset.rsn, &spec));
    }

    // (e) varying j (GS-T / LS-T only, like Fig. 6(e))
    println!("\n(e) varying j");
    println!("{header}");
    for &j in &params.j.values {
        let spec = QuerySpec {
            j,
            ..defaults.clone()
        };
        print_row(&format!("{j}"), &measure_all(&dataset.rsn, &spec));
    }

    // (f) varying sigma
    println!("\n(f) varying sigma");
    println!("{header}");
    for &sigma in &params.sigma.values {
        let spec = QuerySpec {
            sigma,
            ..defaults.clone()
        };
        print_row(&format!("{sigma}"), &measure_all(&dataset.rsn, &spec));
    }
}

fn print_row(value: &str, t: &rsn_bench::runner::AlgoTimings) {
    println!(
        "{:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>8} {:>8}",
        value, t.gs_nc, t.gs_t, t.ls_nc, t.ls_t, t.kt_core_size, t.gs_nc_communities
    );
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

//! Figure 12: ratio of non-contained MACs found by LS-NC to those found by
//! GS-NC, varying k (a) and |Q| (b) on the FL+Lastfm-like preset.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin fig12_ratio [-- --scale 0.2]
//! ```

use rsn_bench::runner::{measure_all, QuerySpec};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let dataset = build_preset_scaled(
        PresetName::FlLastfm,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );

    println!("Fig. 12(a): ratio of NC-MACs found by LS-NC to GS-NC, varying k");
    println!("{:>6} {:>8} {:>8} {:>8}", "k", "GS-NC", "LS-NC", "ratio");
    for &k in &[4u32, 8, 16, 32, 64] {
        let spec = QuerySpec::defaults(&dataset, k, dataset.default_t, 10, 0.01, 3);
        let t = measure_all(&dataset.rsn, &spec);
        print_ratio_row(&format!("{k}"), &t);
    }

    println!("\nFig. 12(b): ratio varying |Q|");
    println!("{:>6} {:>8} {:>8} {:>8}", "|Q|", "GS-NC", "LS-NC", "ratio");
    for &qs in &[1usize, 4, 8, 16, 32] {
        let spec = QuerySpec {
            q: dataset.query_vertices(qs),
            ..QuerySpec::defaults(&dataset, 16, dataset.default_t, 10, 0.01, 3)
        };
        let t = measure_all(&dataset.rsn, &spec);
        print_ratio_row(&format!("{qs}"), &t);
    }
}

fn print_ratio_row(value: &str, t: &rsn_bench::runner::AlgoTimings) {
    let ratio = if t.gs_nc_communities == 0 {
        1.0
    } else {
        t.ls_nc_communities as f64 / t.gs_nc_communities as f64
    };
    println!(
        "{:>6} {:>8} {:>8} {:>7.0}%",
        value,
        t.gs_nc_communities,
        t.ls_nc_communities,
        100.0 * ratio
    );
}

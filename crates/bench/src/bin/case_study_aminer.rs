//! Figure 15 case study: an Aminer-like collaboration network on a
//! North-America-like road network, comparing the top-2 MACs / NC-MAC with
//! the SkyC, InfC and ATC baselines for k = 5.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin case_study_aminer [-- --scale 0.3]
//! ```

use rsn_baselines::atc::atc_community;
use rsn_baselines::influ::Influ;
use rsn_baselines::sky::skyline_communities;
use rsn_bench::runner::QuerySpec;
use rsn_core::{AlgorithmChoice, MacEngine, SearchContext};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3);
    let dataset = build_preset_scaled(
        PresetName::AminerNa,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );
    // Four "renowned researchers": co-located, high-coreness query users.
    let spec = QuerySpec {
        q: dataset.query_vertices(4),
        k: 5,
        t: dataset.default_t,
        j: 2,
        sigma: 0.2,
        d: 4,
    };
    let rsn = rsn_bench::runner::with_dimensionality(&dataset, 4);
    let query = spec.to_query();
    let engine = MacEngine::build(rsn);
    let mut session = engine.session();
    let epoch = engine.epoch();
    let rsn = epoch.network();

    println!(
        "Case study (Fig. 15): NA+Aminer-like, k = 5, Q = {:?}",
        spec.q
    );

    let gs = session
        .execute_top_j(&query.clone().with_algorithm(AlgorithmChoice::Global))
        .unwrap();
    if let Some(cell) = gs.cells.first() {
        for (rank, community) in cell.communities.iter().enumerate() {
            println!(
                "top-{} MAC ({} members): {:?}",
                rank + 1,
                community.len(),
                preview(&community.vertices)
            );
        }
    } else {
        println!("no MAC found (increase --scale)");
    }
    let ls = session
        .execute_non_contained(&query.clone().with_algorithm(AlgorithmChoice::Local))
        .unwrap();
    println!(
        "LS-NC found {} non-contained MAC(s) across {} partition(s)",
        ls.distinct_communities().len(),
        ls.num_cells()
    );

    // Baselines on the same (k,t)-core.
    if let Some(ctx) = SearchContext::build(rsn, &query).unwrap() {
        let sky = skyline_communities(&ctx.local_graph, &ctx.attrs, 5);
        println!(
            "SkyC: {} skyline communities (no query vertices, attribute-only)",
            sky.len()
        );
        if let Some(first) = sky.first() {
            println!("  largest SkyC example: {} members", first.vertices.len());
        }
        let influ = Influ::new(&ctx.local_graph, &ctx.attrs);
        let inf = influ.top_r(5, 1, query.region.pivot().reduced());
        if let Some(c) = inf.first() {
            println!("InfC (w = pivot of R): {} members", c.vertices.len());
        }
        let keywords = vec![true; rsn.num_users()];
        match atc_community(rsn.social(), &query.q, 5, &keywords) {
            Some(c) => println!(
                "ATC ((k+1)-truss, attributes ignored): {} members — much larger than the MACs",
                c.len()
            ),
            None => println!("ATC: no (k+1)-truss contains the query users"),
        }
    }
}

fn preview(vertices: &[u32]) -> Vec<u32> {
    vertices.iter().copied().take(12).collect()
}

//! Open-loop load harness for the `rsn-serve` front-end (`BENCH_PR9.json`).
//!
//! Drives a [`MacServer`] the way production traffic would: requests arrive
//! on a **Poisson process** (exponential inter-arrival gaps, submitted
//! open-loop — the generator never waits for responses, so queueing delay is
//! real, not hidden by back-pressure on the generator), drawn from a
//! **Zipf-skewed** population of distinct queries (a few hot communities
//! absorb most of the traffic, which is what makes coalescing and the
//! session context cache pay). A second phase repeats the run with a
//! background **updater thread** applying `NetworkDelta` batches throughout.
//!
//! Correctness is gated before anything is timed, per preset:
//!
//! * **identity gate** — every population query served through the full
//!   stack (queue + coalescing + per-worker caches) must answer identically
//!   to a direct, cache-less, coalescing-less `QuerySession` execution;
//! * **prefix gate** — work-limited submissions must come back as exact
//!   prefixes of the full answer (budget exhaustion degrades, never lies).
//!   Prefix validity is checked here, on a static epoch, because under the
//!   concurrent updater the epoch a partial was computed on is gone by the
//!   time it could be re-executed;
//! * **cache-speedup gate** — a repeat result-bearing query through a
//!   context-cached session must beat the cache-less session by
//!   [`MIN_CACHE_SPEEDUP`]× on at least one preset (asserted across the
//!   preset set in the full run);
//! * **updater phase gate** — zero errors; every response is `Complete` or
//!   a budget-degraded `Partial`.
//!
//! Usage: `cargo run --release -p rsn-bench --bin serve_load [--smoke]`.
//! The full run writes `BENCH_PR9.json`; `--smoke` runs one reduced preset
//! with every identity/prefix gate on (the timing gates are skipped — CI
//! machines are too noisy for latency assertions) and writes
//! `BENCH_SERVE_SMOKE.json` for the CI artifact upload.

use rand::prelude::*;
use rand::rngs::StdRng;
use rsn_core::{
    AlgorithmChoice, ExecutionPolicy, MacEngine, MacQuery, MacSearchResult, NetworkDelta,
    QueryBudget, QueryOutcome, RoadSocialNetwork,
};
use rsn_datagen::attrs::{generate_attrs, AttrDistribution};
use rsn_datagen::locations::{assign_locations, LocationConfig};
use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_datagen::social::{generate_social, PlantedGroup, SocialConfig};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::network::Location;
use rsn_serve::{MacServer, ResponseHandle, ServeConfig, SubmitError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OUTPUT: &str = "BENCH_PR9.json";
const SMOKE_OUTPUT: &str = "BENCH_SERVE_SMOKE.json";
/// Network scale of the full run (smoke shrinks it).
const ROAD_VERTICES: usize = 5_000;
const USERS: usize = 800;
const GTREE_LEAF_CAPACITY: usize = 64;
/// Repeat executions per cache-speedup measurement.
const CACHE_SPEEDUP_REPEATS: usize = 12;
/// The cache-speedup floor, required on >= 1 preset of the full run.
const MIN_CACHE_SPEEDUP: f64 = 2.0;
/// Identity-gate submissions per population query.
const IDENTITY_ROUNDS: usize = 2;

/// One load preset: a server shape plus a traffic shape.
#[derive(Clone, Copy)]
struct Preset {
    name: &'static str,
    workers: usize,
    queue_capacity: usize,
    coalescing: bool,
    context_cache_capacity: usize,
    /// Distinct queries in the population.
    population: usize,
    /// Zipf exponent of the popularity skew (higher = hotter head).
    zipf_s: f64,
    /// Mean arrival rate of the Poisson process, requests/second.
    arrival_rate_hz: f64,
    /// Requests offered per timed phase.
    requests: usize,
    /// Per-request deadline (None = unlimited); measured from submission.
    deadline: Option<Duration>,
    /// Submit open-loop without back-pressure (shedding on a full queue)
    /// instead of blocking.
    shed_on_full: bool,
}

const PRESETS: [Preset; 3] = [
    // Mixed population at a sustainable rate: the baseline serving shape.
    Preset {
        name: "steady-mixed",
        workers: 4,
        queue_capacity: 256,
        coalescing: true,
        context_cache_capacity: 32,
        population: 16,
        zipf_s: 1.1,
        arrival_rate_hz: 300.0,
        requests: 600,
        deadline: None,
        shed_on_full: false,
    },
    // Few very hot queries: coalescing and the context cache dominate.
    Preset {
        name: "hot-repeat",
        workers: 2,
        queue_capacity: 256,
        coalescing: true,
        context_cache_capacity: 32,
        population: 4,
        zipf_s: 1.6,
        arrival_rate_hz: 500.0,
        requests: 800,
        deadline: None,
        shed_on_full: false,
    },
    // Deliberate overload with no mitigation (no coalescing, no cache, a
    // small queue, tight deadlines): load sheds and deadlines degrade to
    // partials instead of latency collapsing.
    Preset {
        name: "overload-shed",
        workers: 2,
        queue_capacity: 32,
        coalescing: false,
        context_cache_capacity: 0,
        population: 12,
        zipf_s: 1.1,
        arrival_rate_hz: 900.0,
        requests: 900,
        deadline: Some(Duration::from_millis(40)),
        shed_on_full: true,
    },
];

const SMOKE_PRESET: Preset = Preset {
    name: "smoke",
    workers: 2,
    queue_capacity: 64,
    coalescing: true,
    context_cache_capacity: 16,
    population: 6,
    zipf_s: 1.3,
    arrival_rate_hz: 250.0,
    requests: 150,
    deadline: None,
    shed_on_full: false,
};

/// Latency/outcome aggregates of one timed phase.
#[derive(Default)]
struct PhaseStats {
    offered: usize,
    accepted: usize,
    shed: usize,
    completes: usize,
    partials: usize,
    errors: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    achieved_qps: f64,
    coalesced_joins: u64,
    coalescing_rate: f64,
    cache_hit_rate: f64,
}

struct PresetRow {
    preset: Preset,
    identity_checks: usize,
    prefix_checks: usize,
    cache_hit_single_ms: f64,
    cache_miss_single_ms: f64,
    cache_speedup: f64,
    static_phase: PhaseStats,
    updater_phase: PhaseStats,
    update_batches: u64,
    final_epoch: u64,
}

fn grid_network(n_road: usize, n_users: usize, seed: u64) -> (RoadSocialNetwork, Vec<u32>) {
    let road = generate_road(&RoadConfig::with_size(n_road, seed));
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let attrs = generate_attrs(n_users, 3, AttrDistribution::Independent, 10.0, seed);
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed,
        },
    );
    let group = social.groups[0].clone();
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs)
        .expect("datagen output is consistent");
    (rsn.with_gtree_index_capacity(GTREE_LEAF_CAPACITY), group)
}

/// The query population: mostly planted-group (result-bearing) queries with
/// varying |Q|, k, t, and j, plus some background singles. Exact global
/// search throughout so the reference execution is well-defined.
fn build_population(rsn: &RoadSocialNetwork, group: &[u32], count: usize) -> Vec<MacQuery> {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, 0.06).expect("valid region");
    let m = rsn.road().num_edges().max(1);
    let avg_w: f64 = rsn.road().edges().map(|(_, _, w)| w).sum::<f64>() / m as f64;
    let n_users = rsn.num_users() as u32;
    (0..count)
        .map(|i| {
            let q: Vec<u32> = if i % 4 == 3 {
                vec![((i as u32) * 31 + 5) % n_users]
            } else {
                group.iter().copied().take(1 + i % 3).collect()
            };
            let k = 4 + (i % 2) as u32;
            let t = avg_w * [10.0, 14.0, 18.0][i % 3];
            let mut query =
                MacQuery::new(q, k, t, region.clone()).with_algorithm(AlgorithmChoice::Global);
            if i % 5 == 2 {
                query = query.with_top_j(2);
            }
            query
        })
        .collect()
}

/// Zipf CDF over ranks `0..n`: weight of rank r is `1 / (r+1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u = rng.random_range(0.0..1.0);
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// Exponential inter-arrival gap of a Poisson process at `rate_hz`.
fn poisson_gap(rate_hz: f64, rng: &mut StdRng) -> Duration {
    let u: f64 = rng.random_range(0.0..1.0);
    Duration::from_secs_f64((-(1.0 - u).ln()) / rate_hz)
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

fn assert_valid_prefix(label: &str, partial: &MacSearchResult, full: &MacSearchResult) {
    assert!(
        partial.cells.len() <= full.cells.len(),
        "{label}: partial exceeds the full answer"
    );
    for (i, (pc, fc)) in partial.cells.iter().zip(&full.cells).enumerate() {
        assert_eq!(
            pc.sample_weight, fc.sample_weight,
            "{label}: prefix diverged at cell {i}"
        );
        assert_eq!(
            pc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            fc.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: prefix communities diverged at cell {i}"
        );
    }
}

fn serve_config(preset: &Preset) -> ServeConfig {
    ServeConfig {
        workers: preset.workers,
        queue_capacity: preset.queue_capacity,
        coalescing: preset.coalescing,
        context_cache_capacity: preset.context_cache_capacity,
        policy: ExecutionPolicy::new().with_default_budget(match preset.deadline {
            Some(d) => QueryBudget::new().with_deadline(d),
            None => QueryBudget::unlimited(),
        }),
    }
}

/// Identity gate: every population query through the full serving stack —
/// repeated so coalescing and the context cache both engage — must equal the
/// direct session reference. Returns the number of comparisons.
fn run_identity_gate(
    engine: &MacEngine,
    preset: &Preset,
    population: &[MacQuery],
    reference: &[MacSearchResult],
) -> usize {
    let server = MacServer::start(engine.clone(), serve_config(preset));
    let mut handles: Vec<(usize, ResponseHandle)> = Vec::new();
    for _ in 0..IDENTITY_ROUNDS {
        for (qi, query) in population.iter().enumerate() {
            // Unlimited budget: the gate checks answers, not deadlines.
            let handle = server
                .submit_with_budget(query.clone(), QueryBudget::unlimited())
                .expect("identity-gate submission");
            handles.push((qi, handle));
        }
    }
    let mut checked = 0;
    for (qi, handle) in &handles {
        let response = handle.wait();
        let outcome = response
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("identity gate: query {qi} failed: {e}"));
        assert!(outcome.is_complete(), "unlimited budget must complete");
        assert_results_identical(
            &format!("identity gate [{}] query {qi}", preset.name),
            outcome.result(),
            &reference[*qi],
        );
        checked += 1;
    }
    server.shutdown();
    checked
}

/// Prefix gate (static epoch): work-limited submissions degrade to exact
/// prefixes of the full answer. Returns the number of prefix comparisons.
fn run_prefix_gate(
    engine: &MacEngine,
    preset: &Preset,
    population: &[MacQuery],
    reference: &[MacSearchResult],
) -> usize {
    let server = MacServer::start(engine.clone(), serve_config(preset));
    let mut checked = 0;
    for (qi, query) in population.iter().enumerate() {
        for limit in [1u64, 50, 2_000] {
            let budget = QueryBudget::new().with_work_limit(limit);
            let handle = server
                .submit_with_budget(query.clone(), budget)
                .expect("prefix-gate submission");
            let response = handle.wait();
            let outcome = response
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("prefix gate: query {qi} failed: {e}"));
            let label = format!("prefix gate [{}] query {qi} limit {limit}", preset.name);
            match outcome {
                QueryOutcome::Complete(result) => {
                    assert_results_identical(&label, result, &reference[qi]);
                }
                QueryOutcome::Partial(partial) => {
                    assert_valid_prefix(&label, &partial.result, &reference[qi]);
                }
            }
            checked += 1;
        }
    }
    server.shutdown();
    checked
}

/// Measures what the context cache buys on a repeat result-bearing query:
/// per-execution wall-clock with the cache on (post-warm, every execution a
/// hit) vs off, through two otherwise identical sessions.
fn measure_cache_speedup(engine: &MacEngine, query: &MacQuery) -> (f64, f64, f64) {
    let mut cold = engine.session();
    let mut hot = engine.session().with_context_cache(8);
    // Warm both (first build, allocation steady-state); untimed.
    cold.execute(query).expect("warm-up serves");
    hot.execute(query).expect("warm-up serves");
    let start = Instant::now();
    for _ in 0..CACHE_SPEEDUP_REPEATS {
        std::hint::black_box(cold.execute(query).expect("cache-less repeat"));
    }
    let miss_ms = start.elapsed().as_secs_f64() * 1e3 / CACHE_SPEEDUP_REPEATS as f64;
    let start = Instant::now();
    for _ in 0..CACHE_SPEEDUP_REPEATS {
        std::hint::black_box(hot.execute(query).expect("cached repeat"));
    }
    let hit_ms = start.elapsed().as_secs_f64() * 1e3 / CACHE_SPEEDUP_REPEATS as f64;
    assert_eq!(
        hot.stats().context_cache_hits,
        CACHE_SPEEDUP_REPEATS as u64,
        "every repeat must hit the cache"
    );
    (hit_ms, miss_ms, miss_ms / hit_ms.max(1e-9))
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0 * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// One open-loop timed phase: Poisson arrivals over the Zipf population,
/// submitted without waiting for responses; afterwards every handle is
/// drained and the latency distribution computed. The server is fresh per
/// phase so its lifetime stats describe exactly this phase.
fn run_open_loop_phase(
    engine: &MacEngine,
    preset: &Preset,
    population: &[MacQuery],
    cdf: &[f64],
    rng: &mut StdRng,
) -> PhaseStats {
    let server = MacServer::start(engine.clone(), serve_config(preset));
    let mut handles: Vec<ResponseHandle> = Vec::with_capacity(preset.requests);
    let mut shed = 0usize;
    let started = Instant::now();
    let mut next_arrival = started;
    for _ in 0..preset.requests {
        next_arrival += poisson_gap(preset.arrival_rate_hz, rng);
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let query = population[sample_zipf(cdf, rng)].clone();
        if preset.shed_on_full {
            match server.try_submit(query) {
                Ok(handle) => handles.push(handle),
                Err(SubmitError::QueueFull) => shed += 1,
                Err(e) => panic!("open-loop submission failed: {e}"),
            }
        } else {
            handles.push(server.submit(query).expect("open-loop submission"));
        }
    }
    let mut stats = PhaseStats {
        offered: preset.requests,
        accepted: handles.len(),
        shed,
        ..PhaseStats::default()
    };
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(handles.len());
    for handle in &handles {
        let response = handle.wait();
        latencies_ms.push(response.latency.as_secs_f64() * 1e3);
        match &response.outcome {
            Ok(QueryOutcome::Complete(_)) => stats.completes += 1,
            Ok(QueryOutcome::Partial(_)) => stats.partials += 1,
            Err(_) => stats.errors += 1,
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let server_stats = server.shutdown();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    stats.p50_ms = percentile(&latencies_ms, 50.0);
    stats.p95_ms = percentile(&latencies_ms, 95.0);
    stats.p99_ms = percentile(&latencies_ms, 99.0);
    stats.achieved_qps = stats.accepted as f64 / wall.max(1e-12);
    stats.coalesced_joins = server_stats.coalesced_joins;
    stats.coalescing_rate = server_stats.coalescing_rate();
    stats.cache_hit_rate = server_stats.cache_hit_rate();
    stats
}

/// Background updater: reweights a rotating set of road edges every few
/// milliseconds until stopped. Edge weights never drop below the largest
/// resident on-edge user offset (users never move here, so the floor is
/// static).
fn spawn_updater(
    engine: MacEngine,
    rsn: &RoadSocialNetwork,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    let edges: Vec<(u32, u32, f64)> = rsn.road().edges().collect();
    let floors: Vec<f64> = edges
        .iter()
        .map(|&(u, v, _)| {
            rsn.locations()
                .iter()
                .filter_map(|loc| match *loc {
                    Location::OnEdge {
                        u: lu,
                        v: lv,
                        offset,
                    } if (lu, lv) == (u, v) => Some(offset),
                    _ => None,
                })
                .fold(0.0f64, f64::max)
        })
        .collect();
    std::thread::spawn(move || {
        const MULTIPLIERS: [f64; 4] = [0.7, 1.3, 1.8, 0.9];
        let mut batches = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let mut delta = NetworkDelta::new();
            for i in 0..6usize {
                let idx = (batches as usize * 17 + i * 131 + 3) % edges.len();
                let (u, v, w) = edges[idx];
                let w_new =
                    (w * MULTIPLIERS[(batches as usize + i) % MULTIPLIERS.len()]).max(floors[idx]);
                delta = delta.reweight_edge(u, v, w_new);
            }
            engine.apply_updates(&delta).expect("updater delta applies");
            batches += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        batches
    })
}

fn run_preset(preset: Preset, rsn: &RoadSocialNetwork, group: &[u32]) -> PresetRow {
    eprintln!("[{}] building engine...", preset.name);
    // Uncalibrated + explicit Global algorithm: the reference execution and
    // every server answer resolve identically by construction.
    let engine = MacEngine::build_uncalibrated(rsn.clone());
    let population = build_population(rsn, group, preset.population);
    let cdf = zipf_cdf(population.len(), preset.zipf_s);
    let mut rng = StdRng::seed_from_u64(0x9E_2026 ^ preset.name.len() as u64);

    // Uncached, uncoalesced reference answers, computed directly.
    let mut direct = engine.session();
    let reference: Vec<MacSearchResult> = population
        .iter()
        .map(|q| direct.execute(q).expect("reference serves"))
        .collect();

    eprintln!("[{}] identity + prefix gates...", preset.name);
    let identity_checks = run_identity_gate(&engine, &preset, &population, &reference);
    let prefix_checks = run_prefix_gate(&engine, &preset, &population, &reference);

    // Cache-speedup measurement on the hottest result-bearing query.
    let hot_query = population
        .iter()
        .enumerate()
        .find(|(i, _)| !reference[*i].is_empty())
        .map(|(_, q)| q.clone())
        .unwrap_or_else(|| population[0].clone());
    let (cache_hit_single_ms, cache_miss_single_ms, cache_speedup) =
        measure_cache_speedup(&engine, &hot_query);
    eprintln!(
        "[{}] cache: {:.3} ms/hit vs {:.3} ms/miss -> {:.1}x",
        preset.name, cache_hit_single_ms, cache_miss_single_ms, cache_speedup
    );

    eprintln!(
        "[{}] open loop: {} requests @ {:.0}/s over {} queries (zipf s={})...",
        preset.name, preset.requests, preset.arrival_rate_hz, preset.population, preset.zipf_s
    );
    let static_phase = run_open_loop_phase(&engine, &preset, &population, &cdf, &mut rng);
    assert_eq!(
        static_phase.errors, 0,
        "[{}] static phase produced errors",
        preset.name
    );

    eprintln!("[{}] open loop with concurrent updater...", preset.name);
    let stop = Arc::new(AtomicBool::new(false));
    let updater = spawn_updater(engine.clone(), rsn, Arc::clone(&stop));
    let updater_phase = run_open_loop_phase(&engine, &preset, &population, &cdf, &mut rng);
    stop.store(true, Ordering::Relaxed);
    let update_batches = updater.join().expect("updater joins");
    // The updater-phase gate: zero errors, every response answered as
    // Complete or (budget-degraded) Partial. Partial-prefix *validity* was
    // gated on the static epoch above — by the time a partial could be
    // re-executed here, its epoch is gone.
    assert_eq!(
        updater_phase.errors, 0,
        "[{}] updater phase produced errors",
        preset.name
    );
    assert_eq!(
        updater_phase.completes + updater_phase.partials,
        updater_phase.accepted,
        "[{}] every accepted request must resolve",
        preset.name
    );
    assert!(
        update_batches > 0,
        "[{}] the updater never applied a batch",
        preset.name
    );

    PresetRow {
        preset,
        identity_checks,
        prefix_checks,
        cache_hit_single_ms,
        cache_miss_single_ms,
        cache_speedup,
        static_phase,
        updater_phase,
        update_batches,
        final_epoch: engine.epoch().id(),
    }
}

fn json_phase(p: &PhaseStats) -> String {
    format!(
        concat!(
            "{{\n",
            "        \"offered\": {},\n",
            "        \"accepted\": {},\n",
            "        \"shed\": {},\n",
            "        \"completes\": {},\n",
            "        \"partials\": {},\n",
            "        \"errors\": {},\n",
            "        \"p50_ms\": {:.3},\n",
            "        \"p95_ms\": {:.3},\n",
            "        \"p99_ms\": {:.3},\n",
            "        \"achieved_qps\": {:.1},\n",
            "        \"coalesced_joins\": {},\n",
            "        \"coalescing_rate\": {:.4},\n",
            "        \"cache_hit_rate\": {:.4}\n",
            "      }}"
        ),
        p.offered,
        p.accepted,
        p.shed,
        p.completes,
        p.partials,
        p.errors,
        p.p50_ms,
        p.p95_ms,
        p.p99_ms,
        p.achieved_qps,
        p.coalesced_joins,
        p.coalescing_rate,
        p.cache_hit_rate,
    )
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"queue_capacity\": {},\n",
            "      \"coalescing\": {},\n",
            "      \"context_cache_capacity\": {},\n",
            "      \"population\": {},\n",
            "      \"zipf_s\": {:.2},\n",
            "      \"arrival_rate_hz\": {:.0},\n",
            "      \"deadline_ms\": {},\n",
            "      \"identity_checks\": {},\n",
            "      \"prefix_checks\": {},\n",
            "      \"cache_hit_single_ms\": {:.4},\n",
            "      \"cache_miss_single_ms\": {:.4},\n",
            "      \"cache_speedup\": {:.2},\n",
            "      \"static_phase\": {},\n",
            "      \"updater_phase\": {},\n",
            "      \"update_batches\": {},\n",
            "      \"final_epoch\": {}\n",
            "    }}"
        ),
        r.preset.name,
        r.preset.workers,
        r.preset.queue_capacity,
        r.preset.coalescing,
        r.preset.context_cache_capacity,
        r.preset.population,
        r.preset.zipf_s,
        r.preset.arrival_rate_hz,
        r.preset
            .deadline
            .map(|d| format!("{:.0}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "null".into()),
        r.identity_checks,
        r.prefix_checks,
        r.cache_hit_single_ms,
        r.cache_miss_single_ms,
        r.cache_speedup,
        json_phase(&r.static_phase),
        json_phase(&r.updater_phase),
        r.update_batches,
        r.final_epoch,
    )
}

fn print_row(r: &PresetRow) {
    let s = &r.static_phase;
    let u = &r.updater_phase;
    eprintln!(
        "  [{}] static: p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, {:.0} q/s, coalesce {:.0}%, cache {:.0}%, shed {} | updater ({} batches): p50 {:.2}ms p99 {:.2}ms, {:.0} q/s, {} partials, 0 errors | cache repeat {:.1}x",
        r.preset.name,
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.achieved_qps,
        s.coalescing_rate * 100.0,
        s.cache_hit_rate * 100.0,
        s.shed,
        r.update_batches,
        u.p50_ms,
        u.p99_ms,
        u.achieved_qps,
        u.partials,
        r.cache_speedup,
    );
}

fn write_record(path: &str, smoke: bool, road_vertices: usize, users: usize, rows: &[PresetRow]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 9,\n",
            "  \"description\": \"Open-loop load harness for the rsn-serve front-end: Poisson \
             arrivals over a Zipf-skewed query population through the threaded server (bounded \
             queue, query coalescing, per-worker context caches), with a second phase under a \
             concurrent NetworkDelta updater. Every preset is gated on identity with direct \
             uncached/uncoalesced execution and on partial-prefix validity before timing; the \
             updater phase must finish with zero errors.\",\n",
            "  \"smoke\": {},\n",
            "  \"available_cores\": {},\n",
            "  \"road_vertices\": {},\n",
            "  \"users\": {},\n",
            "  \"min_cache_speedup_gate\": {:.1},\n",
            "  \"presets\": [\n{}\n  ]\n",
            "}}\n"
        ),
        smoke,
        cores,
        road_vertices,
        users,
        MIN_CACHE_SPEEDUP,
        body.join(",\n"),
    );
    std::fs::write(path, &json).expect("write bench record");
    println!("{json}");
    eprintln!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (road_vertices, users) = if smoke {
        (1_500, 400)
    } else {
        (ROAD_VERTICES, USERS)
    };
    eprintln!("building the shared network ({road_vertices} road vertices, {users} users)...");
    let (rsn, group) = grid_network(road_vertices, users, 29);

    let presets: &[Preset] = if smoke { &[SMOKE_PRESET] } else { &PRESETS };
    let mut rows = Vec::new();
    for preset in presets {
        let row = run_preset(*preset, &rsn, &group);
        print_row(&row);
        rows.push(row);
    }

    if !smoke {
        // The cache gate holds across the preset set: at least one preset's
        // repeat-query speedup clears the floor. (Smoke runs skip the timing
        // gate — CI boxes are too noisy — but still record the value.)
        let best = rows
            .iter()
            .map(|r| r.cache_speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best >= MIN_CACHE_SPEEDUP,
            "no preset reached the {MIN_CACHE_SPEEDUP:.1}x context-cache speedup gate (best: {best:.2}x)"
        );
    }

    write_record(
        if smoke { SMOKE_OUTPUT } else { OUTPUT },
        smoke,
        road_vertices,
        users,
        &rows,
    );
    if smoke {
        println!("smoke ok");
    }
}

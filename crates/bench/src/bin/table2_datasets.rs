//! Table II: dataset statistics for every preset.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin table2_datasets [-- --scale 0.25]
//! ```

use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};
use rsn_datagen::stats::dataset_stats;

fn main() {
    let scale = parse_scale();
    println!("Table II — dataset statistics (scaled synthetic replacements, scale = {scale})");
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8} {:>7} | {:>10} {:>10} {:>8}",
        "Dataset", "Vertices", "Edges", "dg_avg", "dg_max", "k_max", "RoadV", "RoadE", "road_dg"
    );
    for &preset in PresetName::all() {
        let dataset = build_preset_scaled(
            preset,
            PresetScale {
                social: scale,
                road: scale,
            },
            0,
        );
        let s = dataset_stats(&dataset.rsn);
        println!(
            "{:<14} {:>10} {:>10} {:>8.2} {:>8} {:>7} | {:>10} {:>10} {:>8.2}",
            preset.label(),
            s.social_vertices,
            s.social_edges,
            s.dg_avg,
            s.dg_max,
            s.k_max,
            s.road_vertices,
            s.road_edges,
            s.road_dg_avg,
        );
    }
    println!();
    println!("Paper reference (Table II): SF 175K/223K deg 2.55; FL 1.1M/1.4M deg 2.53;");
    println!("Slashdot 79K/0.5M kmax 85; Delicious 536K/1.4M kmax 34; Lastfm 1.2M/4.5M kmax 71;");
    println!("Flixster 2.5M/7.9M kmax 69; Yelp 3.6M/9.0M kmax 129.");
}

fn parse_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

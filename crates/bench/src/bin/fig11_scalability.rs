//! Figure 11: scalability measurements.
//!
//! (a) number of partitions of `R` vs σ, (b) number of non-contained MACs vs
//! σ, (c) size of the maximal (k,t)-core vs k, (d) memory overhead of the BBS
//! process / GS-NC / LS-NC vs d.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin fig11_scalability [-- --scale 0.2]
//! ```

use rsn_bench::params::ParamSpace;
use rsn_bench::runner::{measure_all, with_dimensionality, QuerySpec};
use rsn_core::{MacQuery, SearchContext};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);

    let presets = [
        PresetName::SfSlashdot,
        PresetName::SfDelicious,
        PresetName::FlLastfm,
        PresetName::FlYelp,
    ];

    println!("Fig. 11(a)/(b): partitions of R and non-contained MACs vs sigma");
    println!(
        "{:<14} {:>8} {:>12} {:>10}",
        "dataset", "sigma", "partitions", "NC-MACs"
    );
    for &preset in &presets {
        let dataset = build_preset_scaled(
            preset,
            PresetScale {
                social: scale,
                road: scale,
            },
            0,
        );
        let params = ParamSpace::paper(dataset.default_t);
        for &sigma in &params.sigma.values {
            let spec = QuerySpec::defaults(&dataset, 16, dataset.default_t, 10, sigma, 3);
            let t = measure_all(&dataset.rsn, &spec);
            println!(
                "{:<14} {:>8} {:>12} {:>10}",
                preset.label(),
                sigma,
                t.gs_partitions,
                t.gs_nc_communities
            );
        }
    }

    println!("\nFig. 11(c): #vertices of the maximal (k,t)-core vs k");
    println!("{:<14} {:>6} {:>10}", "dataset", "k", "|Htk|");
    for &preset in &presets {
        let dataset = build_preset_scaled(
            preset,
            PresetScale {
                social: scale,
                road: scale,
            },
            0,
        );
        for &k in &[4u32, 8, 16, 32, 64] {
            let spec = QuerySpec::defaults(&dataset, k, dataset.default_t, 10, 0.01, 3);
            let query: MacQuery = spec.to_query();
            let size = SearchContext::build(&dataset.rsn, &query)
                .ok()
                .flatten()
                .map(|c| c.core_size())
                .unwrap_or(0);
            println!("{:<14} {:>6} {:>10}", preset.label(), k, size);
        }
    }

    println!("\nFig. 11(d): memory overhead vs d (FL+Lastfm-like)");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "d", "BBS/Gd (MB)", "GS-NC (MB)", "LS-NC (MB)"
    );
    let dataset = build_preset_scaled(
        PresetName::FlLastfm,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );
    for &d in &[2usize, 3, 4, 5, 6] {
        let rsn = with_dimensionality(&dataset, d);
        let spec = QuerySpec {
            q: dataset.query_vertices(8),
            k: 16,
            t: dataset.default_t,
            j: 10,
            sigma: 0.01,
            d,
        };
        let query = spec.to_query();
        let gd_bytes = SearchContext::build(&rsn, &query)
            .ok()
            .flatten()
            .map(|c| c.gd.memory_bytes())
            .unwrap_or(0);
        let t = measure_all(&rsn, &spec);
        println!(
            "{:<6} {:>14.3} {:>14.3} {:>14.3}",
            d,
            gd_bytes as f64 / 1e6,
            t.gs_memory as f64 / 1e6,
            t.ls_memory as f64 / 1e6
        );
    }
}

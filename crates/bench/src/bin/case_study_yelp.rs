//! Figure 16 case study: a Yelp-like LBSN on a San-Francisco-like road
//! network, reporting the top-3 MACs for k = 6 with three compliment-count
//! attributes.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin case_study_yelp [-- --scale 0.3]
//! ```

use rsn_bench::runner::QuerySpec;
use rsn_core::{AlgorithmChoice, MacEngine};
use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3);
    let dataset = build_preset_scaled(
        PresetName::YelpSf,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );
    let spec = QuerySpec {
        q: dataset.query_vertices(4),
        k: 6,
        t: dataset.default_t,
        j: 3,
        sigma: 0.1,
        d: 3,
    };
    let query = spec.to_query();
    println!(
        "Case study (Fig. 16): SF+Yelp-like, k = 6, Q = {:?}",
        spec.q
    );

    let engine = MacEngine::build(dataset.rsn.clone());
    let result = engine
        .session()
        .execute_top_j(&query.with_algorithm(AlgorithmChoice::Global))
        .unwrap();
    println!(
        "partitions of R: {} (real attributes are correlated/zero-inflated, so few branches)",
        result.num_cells()
    );
    if let Some(cell) = result.cells.first() {
        for (rank, community) in cell.communities.iter().enumerate() {
            println!(
                "top-{} MAC: {} members, e.g. {:?}",
                rank + 1,
                community.len(),
                community.vertices.iter().take(10).collect::<Vec<_>>()
            );
        }
    } else {
        println!("no MAC found (increase --scale)");
    }
    println!(
        "distinct non-contained MACs: {}",
        result.distinct_communities().len()
    );
}

//! Figures 13 and 14: comparison of GS-NC / LS-NC against the baselines
//! Influ, Influ+, Sky and Sky+, varying k (b) and d (c).
//!
//! The baselines follow the paper's protocol: Influ/Influ+ collapse the d
//! attributes to a single influence value via 100 random weight vectors drawn
//! from `R` and report the average time; Sky/Sky+ ignore `R` entirely.
//!
//! ```text
//! cargo run -p rsn-bench --release --bin fig13_14_comparison -- --preset sf_delicious [--scale 0.2]
//! ```

use rand::prelude::*;
use rand::rngs::StdRng;
use rsn_baselines::influ::{Influ, InfluPlus};
use rsn_baselines::sky::{skyline_communities, skyline_communities_pruned};
use rsn_bench::runner::{with_dimensionality, QuerySpec};
use rsn_core::{AlgorithmChoice, MacEngine, RoadSocialNetwork, SearchContext};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use std::time::Instant;

const INFLU_WEIGHT_SAMPLES: usize = 20;
const SKY_TIME_CAP_SECONDS: f64 = 30.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let preset = args
        .iter()
        .position(|a| a == "--preset")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| PresetName::parse(s))
        .unwrap_or(PresetName::SfDelicious);
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let dataset = build_preset_scaled(
        preset,
        PresetScale {
            social: scale,
            road: scale,
        },
        0,
    );

    println!(
        "Fig. 13/14 comparison on {} (scale {scale})",
        preset.label()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "param", "GS-NC", "LS-NC", "Influ", "Influ+", "Sky", "Sky+"
    );

    println!("(b) varying k");
    for &k in &[4u32, 8, 16, 32] {
        let row = compare(&dataset, &dataset.rsn, k, 3);
        print_row(&format!("k={k}"), &row);
    }

    println!("(c) varying d");
    for &d in &[2usize, 3, 4, 5] {
        let rsn = with_dimensionality(&dataset, d);
        let row = compare(&dataset, &rsn, 16, d);
        print_row(&format!("d={d}"), &row);
    }
}

struct Row {
    gs_nc: f64,
    ls_nc: f64,
    influ: f64,
    influ_plus: f64,
    sky: f64,
    sky_plus: f64,
}

fn compare(dataset: &Dataset, rsn: &RoadSocialNetwork, k: u32, d: usize) -> Row {
    let spec = QuerySpec::defaults(dataset, k, dataset.default_t, 10, 0.01, d);
    let query = spec.to_query();
    let engine = MacEngine::build_uncalibrated(rsn.clone());
    let mut session = engine.session();

    let start = Instant::now();
    let _ = session
        .execute_non_contained(&query.clone().with_algorithm(AlgorithmChoice::Global))
        .unwrap();
    let gs_nc = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let _ = session
        .execute_non_contained(&query.clone().with_algorithm(AlgorithmChoice::Local))
        .unwrap();
    let ls_nc = start.elapsed().as_secs_f64();

    // Baselines run on the same maximal (k,t)-core, mirroring the paper's
    // setup (they share the range filter and core extraction).
    let Some(ctx) = SearchContext::build(rsn, &query).unwrap() else {
        return Row {
            gs_nc,
            ls_nc,
            influ: 0.0,
            influ_plus: 0.0,
            sky: 0.0,
            sky_plus: 0.0,
        };
    };
    let graph = &ctx.local_graph;
    // The baselines consume the flat attribute matrix directly.
    let attrs = &ctx.attrs;
    let region = &query.region;

    let mut rng = StdRng::seed_from_u64(7);
    let sample_weight = |rng: &mut StdRng| -> Vec<f64> {
        region
            .lows()
            .iter()
            .zip(region.highs())
            .map(|(&lo, &hi)| rng.random_range(lo..hi.max(lo + 1e-9)))
            .collect()
    };

    let start = Instant::now();
    let influ_algo = Influ::new(graph, attrs);
    for _ in 0..INFLU_WEIGHT_SAMPLES {
        let w = sample_weight(&mut rng);
        let _ = influ_algo.top_r(k, 10, &w);
    }
    let influ = start.elapsed().as_secs_f64() / INFLU_WEIGHT_SAMPLES as f64;

    let start = Instant::now();
    for _ in 0..INFLU_WEIGHT_SAMPLES {
        let w = sample_weight(&mut rng);
        let idx = InfluPlus::build(graph, attrs, k, &w);
        let _ = idx.top_r(10);
    }
    let influ_plus = start.elapsed().as_secs_f64() / INFLU_WEIGHT_SAMPLES as f64;

    // Sky / Sky+ blow up quickly with d; cap them like the paper's "Inf" marks.
    let sky = run_capped(|| {
        let _ = skyline_communities(graph, attrs, k);
    });
    let sky_plus = run_capped(|| {
        let _ = skyline_communities_pruned(graph, attrs, k);
    });

    Row {
        gs_nc,
        ls_nc,
        influ,
        influ_plus,
        sky,
        sky_plus,
    }
}

fn run_capped(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    let elapsed = start.elapsed().as_secs_f64();
    elapsed.min(SKY_TIME_CAP_SECONDS)
}

fn print_row(label: &str, row: &Row) {
    println!(
        "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
        label, row.gs_nc, row.ls_nc, row.influ, row.influ_plus, row.sky, row.sky_plus
    );
}

//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search algorithms on fixed datagen presets and writes
//! `BENCH_PR1.json` (in the current directory), so later PRs can diff their
//! wall-clock against this PR's numbers instead of guessing. Alongside the
//! current `GlobalSearch` it measures the clone-per-branch reference replica
//! (`rsn_bench::legacy`) — the pre-refactor baseline — and the Lemma-1
//! (k,t)-core extraction under both distance oracles.
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory`
//! (an optional integer argument overrides the per-measurement repetitions,
//! default 3; the best of the repetitions is recorded).

use rsn_bench::legacy::legacy_gs_nc;
use rsn_core::ktcore::maximal_kt_core;
use rsn_core::{GlobalSearch, LocalSearch, MacQuery, SearchContext};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::oracle::OracleChoice;
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR1.json";

struct PresetRow {
    label: String,
    users: usize,
    road_vertices: usize,
    k: u32,
    t: f64,
    sigma: f64,
    kt_core: usize,
    cells: usize,
    gtree_build_s: f64,
    ktcore_dijkstra_s: f64,
    ktcore_gtree_s: f64,
    gs_nc_s: f64,
    gs_nc_clone_s: f64,
    gs_nc_legacy_s: f64,
    ls_nc_s: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
}

fn measure_preset(spec: &Spec, reps: usize) -> PresetRow {
    let (name, k, sigma) = (spec.name, spec.k, spec.sigma);
    let dataset: Dataset = build_preset_scaled(
        name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, sigma).expect("valid region");
    let query = MacQuery::new(dataset.query_vertices(4), k, dataset.default_t, region);

    // Distance-oracle trajectory: range filter with Dijkstra vs G-tree.
    let (ktcore_dijkstra_s, core) = best_of(reps, || {
        let q = query.clone().with_oracle(OracleChoice::Dijkstra);
        maximal_kt_core(&dataset.rsn, &q).expect("query valid")
    });
    let (gtree_build_s, rsn_indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());
    let (ktcore_gtree_s, core_gt) = best_of(reps, || {
        let q = query.clone().with_oracle(OracleChoice::GTree);
        maximal_kt_core(&rsn_indexed, &q).expect("query valid")
    });
    assert_eq!(core, core_gt, "oracles must agree on the (k,t)-core");

    // Global search end-to-end (context build + exploration), three
    // configurations: the current rollback DFS, the clone-based replica on
    // the same cell geometry (isolates the undo-log refactor), and the full
    // pre-refactor configuration (clone-based branches + dense-LP cells).
    let (gs_nc_s, gs) = best_of(reps, || {
        GlobalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("GS-NC runs")
    });
    let (gs_nc_clone_s, legacy) = best_of(reps, || {
        let ctx = SearchContext::build(&dataset.rsn, &query)
            .expect("query valid")
            .expect("core exists");
        legacy_gs_nc(&ctx, false)
    });
    assert_eq!(
        gs.cells.len(),
        legacy.len(),
        "clone-based replica must report the same number of cells"
    );
    let (gs_nc_legacy_s, _) = best_of(reps, || {
        let ctx = SearchContext::build(&dataset.rsn, &query)
            .expect("query valid")
            .expect("core exists");
        legacy_gs_nc(&ctx, true)
    });

    let (ls_nc_s, _) = best_of(reps, || {
        LocalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("LS-NC runs")
    });

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        k,
        t: dataset.default_t,
        sigma,
        kt_core: core.map(|c| c.len()).unwrap_or(0),
        cells: gs.cells.len(),
        gtree_build_s,
        ktcore_dijkstra_s,
        ktcore_gtree_s,
        gs_nc_s,
        gs_nc_clone_s,
        gs_nc_legacy_s,
        ls_nc_s,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"k\": {},\n",
            "      \"t\": {},\n",
            "      \"sigma\": {},\n",
            "      \"kt_core_vertices\": {},\n",
            "      \"gs_cells\": {},\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"ktcore_dijkstra_seconds\": {:.6},\n",
            "      \"ktcore_gtree_seconds\": {:.6},\n",
            "      \"ktcore_gtree_speedup\": {:.3},\n",
            "      \"gs_nc_seconds\": {:.6},\n",
            "      \"gs_nc_clone_branches_seconds\": {:.6},\n",
            "      \"gs_nc_legacy_seconds\": {:.6},\n",
            "      \"gs_nc_speedup_vs_legacy\": {:.3},\n",
            "      \"ls_nc_seconds\": {:.6}\n",
            "    }}"
        ),
        r.label,
        r.users,
        r.road_vertices,
        r.k,
        r.t,
        r.sigma,
        r.kt_core,
        r.cells,
        r.gtree_build_s,
        r.ktcore_dijkstra_s,
        r.ktcore_gtree_s,
        r.ktcore_dijkstra_s / r.ktcore_gtree_s.max(1e-12),
        r.gs_nc_s,
        r.gs_nc_clone_s,
        r.gs_nc_legacy_s,
        r.gs_nc_legacy_s / r.gs_nc_s.max(1e-12),
        r.ls_nc_s,
    )
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 8,
            sigma: 0.05,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 6,
            sigma: 0.05,
        },
        // Sparse-users-on-large-road regime, closest we get to the paper's
        // continent-scale setting for the G-tree oracle comparison.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, sigma={}, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            spec.sigma
        );
        let row = measure_preset(spec, reps);
        eprintln!(
            "  kt-core {} vertices | range filter: dijkstra {:.4}s, gtree {:.4}s | GS-NC {:.4}s (clone-branches {:.4}s, pre-refactor {:.4}s, {:.2}x) | LS-NC {:.4}s",
            row.kt_core,
            row.ktcore_dijkstra_s,
            row.ktcore_gtree_s,
            row.gs_nc_s,
            row.gs_nc_clone_s,
            row.gs_nc_legacy_s,
            row.gs_nc_legacy_s / row.gs_nc_s.max(1e-12),
            row.ls_nc_s,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"pr\": 1,\n  \"description\": \"Perf trajectory after wiring the G-tree oracle into the MAC query path and making the GS/LS hot loops allocation-free\",\n  \"reps\": {reps},\n  \"presets\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(OUTPUT, &json).expect("write BENCH_PR1.json");
    println!("{json}");
    eprintln!("wrote {OUTPUT}");
}

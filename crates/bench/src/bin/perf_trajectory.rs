//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search on fixed datagen presets and writes `BENCH_PR5.json`
//! (in the current directory), so later PRs can diff their wall-clock against
//! this PR's numbers instead of guessing. The PR-5 record focuses on the
//! **dynamic_traffic** workload this PR opens: a long-lived engine absorbing
//! interleaved road-edge reweights and user churn through
//! `MacEngine::apply_updates` while serving the PR-4 high-QPS query mix.
//!
//! * **Correctness gate** — after every update batch, the incrementally
//!   updated engine is compared against an engine **rebuilt from scratch**
//!   on independently tracked shadow state (edge list + location vector the
//!   recorder mutates itself): all workload queries must return identical
//!   cells before anything is timed.
//! * **Incremental vs rebuild** — the same delta schedule is then replayed
//!   twice under the clock: once through `apply_updates` (dirty G-tree
//!   matrix paths, per-leaf user-row edits, epoch swap) and once as the full
//!   alternative (`with_gtree_index` + `MacEngine::build` on the post-batch
//!   network). The record asserts the incremental path wins on every preset.
//! * **Serving through churn** — steady-state session throughput after the
//!   final epoch, for continuity with the PR-4 serving rows.
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 3; the best of
//! the repetitions is recorded). `--smoke` runs a single tiny preset once —
//! including the full apply_updates gate — and writes `BENCH_SMOKE.json`,
//! which CI uploads as a workflow artifact on every run.

use rsn_core::{
    AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, NetworkDelta, RoadSocialNetwork,
};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::network::{Location, RoadNetwork};
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR5.json";
const SMOKE_OUTPUT: &str = "BENCH_SMOKE.json";
/// Queries per serving workload (per preset).
const WORKLOAD_QUERIES: usize = 12;
/// Update batches per preset (each = edge reweights + user moves).
const UPDATE_BATCHES: usize = 5;
/// Passes over the workload for the serving-throughput measurement.
const SERVING_PASSES: usize = 50;

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
    t_scale: f64,
}

/// One dynamic-traffic batch composition: how many reweights and moves per
/// batch and where the reweights land.
#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    /// Road-segment reweights per batch.
    edges_per_batch: usize,
    /// User moves per batch.
    users_per_batch: usize,
    /// `Some(frac)`: all reweights land in one contiguous window covering
    /// `frac` of the canonical edge order (vertex ids are spatially coherent,
    /// so this models a congested metro area); `None`: network-wide traffic.
    edge_window: Option<f64>,
}

const SCENARIOS: [Scenario; 3] = [
    // Users move, roads stay: the dominant delta mix of a serving workload.
    // The G-tree is untouched, so an update is pure per-leaf row editing.
    Scenario {
        name: "user-churn",
        edges_per_batch: 0,
        users_per_batch: 48,
        edge_window: None,
    },
    // A congested metro area: reweights concentrate spatially.
    Scenario {
        name: "regional-traffic",
        edges_per_batch: 24,
        users_per_batch: 12,
        edge_window: Some(0.04),
    },
    // Network-wide traffic shifts: the adversarial case for incrementality
    // (almost every batch drags the top-of-tree matrices along).
    Scenario {
        name: "global-traffic",
        edges_per_batch: 24,
        users_per_batch: 12,
        edge_window: None,
    },
];

struct PresetRow {
    label: String,
    scenario: &'static str,
    users: usize,
    road_vertices: usize,
    workload: usize,
    batches: usize,
    edge_updates_total: usize,
    user_moves_total: usize,
    gtree_build_s: f64,
    engine_build_s: f64,
    /// Summed apply_updates wall-clock over the whole schedule (best rep).
    incremental_total_s: f64,
    /// Summed index+engine rebuild wall-clock over the schedule (best rep).
    rebuild_total_s: f64,
    /// Mean fraction of G-tree nodes recomputed per batch.
    dirty_fraction_mean: f64,
    /// How many batches re-ran the calibration probe.
    recalibrations: usize,
    /// Serving throughput through one session after the final epoch.
    serving_qps_after_churn: f64,
    final_epoch: u64,
}

impl PresetRow {
    fn incremental_mean_batch_s(&self) -> f64 {
        self.incremental_total_s / self.batches.max(1) as f64
    }
    fn rebuild_mean_batch_s(&self) -> f64 {
        self.rebuild_total_s / self.batches.max(1) as f64
    }
    fn speedup(&self) -> f64 {
        self.rebuild_total_s / self.incremental_total_s.max(1e-12)
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// The PR-4 high-QPS serving workload: queries from ordinary *background*
/// users (outside the planted deep groups), varying |Q| and t; all Problem 2
/// through the exact global search so the rebuilt reference is well-defined.
fn build_workload(dataset: &Dataset, spec: &Spec, queries: usize) -> Vec<MacQuery> {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, spec.sigma).expect("valid region");
    let grouped: std::collections::HashSet<u32> =
        dataset.deep_groups.iter().flatten().copied().collect();
    let background: Vec<u32> = (0..dataset.rsn.num_users() as u32)
        .filter(|v| !grouped.contains(v))
        .collect();
    (0..queries)
        .map(|i| {
            let q_len = 1 + i % 3;
            let q: Vec<u32> = (0..q_len)
                .map(|j| background[(i * 7 + j * 13 + 3) % background.len()])
                .collect();
            let t = dataset.default_t * spec.t_scale * [0.8, 1.0, 1.25][(i / 3) % 3];
            MacQuery::new(q, spec.k, t, region.clone()).with_algorithm(AlgorithmChoice::Global)
        })
        .collect()
}

/// The deterministic dynamic-traffic schedule: per batch, a set of edge
/// reweights (multiplier cycle over deterministically picked segments,
/// clamped so no resident on-edge user is stranded past its edge's new
/// length) interleaved with user moves (background users hopping to vertex
/// and on-edge locations). Returns the deltas paired with a snapshot of the
/// shadow `(edges, locations)` state after each batch — the single source of
/// truth the from-scratch reference engines are built from.
#[allow(clippy::type_complexity)]
fn build_update_schedule(
    dataset: &Dataset,
    edges: &mut [(u32, u32, f64)],
    locations: &mut [Location],
    batches: usize,
    scenario: Scenario,
) -> (
    Vec<NetworkDelta>,
    Vec<(Vec<(u32, u32, f64)>, Vec<Location>)>,
) {
    let edges_per_batch = scenario.edges_per_batch;
    let users_per_batch = scenario.users_per_batch;
    const MULTIPLIERS: [f64; 5] = [0.6, 0.85, 1.2, 1.6, 2.3];
    let n_users = locations.len();
    let n_road = dataset.rsn.road().num_vertices() as u32;
    let m = edges.len();
    // The canonical edge order is sorted by (u, v) and vertex ids are
    // row-major, so a contiguous index window is a spatial region.
    let (window_start, window_len) = match scenario.edge_window {
        Some(frac) => {
            let len = ((m as f64 * frac).ceil() as usize).clamp(1, m);
            (m / 3, len)
        }
        None => (0, m),
    };
    let mut schedule = Vec::with_capacity(batches);
    let mut post_states = Vec::with_capacity(batches);
    for b in 0..batches {
        let mut delta = NetworkDelta::new();
        for i in 0..edges_per_batch.min(window_len) {
            let idx = (window_start + (b * 9973 + i * 101 + 7) % window_len) % m;
            let (u, v, w) = edges[idx];
            let min_allowed = locations
                .iter()
                .filter_map(|loc| match *loc {
                    Location::OnEdge {
                        u: lu,
                        v: lv,
                        offset,
                    } if (lu, lv) == (u, v) => Some(offset),
                    _ => None,
                })
                .fold(0.0f64, f64::max);
            let w_new = (w * MULTIPLIERS[(b + i) % MULTIPLIERS.len()]).max(min_allowed);
            edges[idx].2 = w_new;
            delta = delta.reweight_edge(u, v, w_new);
        }
        for i in 0..users_per_batch.min(n_users) {
            let user = ((b * 677 + i * 397 + 11) % n_users) as u32;
            let loc = if i % 3 == 0 {
                let (u, v, w) = edges[(b * 131 + i * 29) % m];
                Location::on_edge(u, v, 0.5 * w, w)
            } else {
                Location::Vertex(((b * 283 + i * 173) as u32 * 7 + 1) % n_road)
            };
            locations[user as usize] = loc;
            delta = delta.move_user(user, loc);
        }
        schedule.push(delta);
        post_states.push((edges.to_vec(), locations.to_vec()));
    }
    (schedule, post_states)
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

fn measure_preset(
    spec: &Spec,
    scenario: Scenario,
    reps: usize,
    queries: usize,
    batches: usize,
) -> PresetRow {
    let dataset: Dataset = build_preset_scaled(
        spec.name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let workload = build_workload(&dataset, spec, queries);

    // Shadow state the reference engines rebuild from.
    let mut edges: Vec<(u32, u32, f64)> = dataset.rsn.road().edges().collect();
    let mut locations: Vec<Location> = dataset.rsn.locations().to_vec();
    let (schedule, post_states) =
        build_update_schedule(&dataset, &mut edges, &mut locations, batches, scenario);
    let rebuild_rsn = |state: &(Vec<(u32, u32, f64)>, Vec<Location>)| -> RoadSocialNetwork {
        RoadSocialNetwork::new(
            dataset.rsn.social().clone(),
            RoadNetwork::from_edges(dataset.rsn.road().num_vertices(), &state.0),
            state.1.clone(),
            dataset.rsn.all_attributes().to_vec(),
        )
        .expect("shadow state stays consistent")
    };

    // Prepare the base indexed network + engine (both timed once, for the
    // record's scale context).
    let (gtree_build_s, indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());
    let (engine_build_s, engine) = best_of(1, || MacEngine::build(indexed.clone()));

    // ---- Correctness gate (untimed): after every batch, the incrementally
    // updated engine must answer the whole workload identically to an engine
    // rebuilt from scratch on the shadow post-batch state.
    let mut session = engine.session();
    let mut dirty_fraction_sum = 0.0;
    let mut recalibrations = 0usize;
    for (bi, delta) in schedule.iter().enumerate() {
        let stats = engine
            .apply_updates(delta)
            .expect("schedule deltas are valid");
        assert_eq!(stats.epoch, bi as u64 + 1);
        if let Some(g) = stats.gtree {
            dirty_fraction_sum += g.dirty_fraction();
        }
        if stats.recalibrated {
            recalibrations += 1;
        }
        let reference =
            MacEngine::build_uncalibrated(rebuild_rsn(&post_states[bi]).with_gtree_index());
        let mut reference_session = reference.session();
        for (qi, query) in workload.iter().enumerate() {
            let updated = session
                .execute_non_contained(query)
                .expect("updated engine serves");
            let rebuilt = reference_session
                .execute_non_contained(query)
                .expect("rebuilt engine serves");
            assert_results_identical(&format!("batch {bi}, query {qi}"), &updated, &rebuilt);
        }
    }
    let final_epoch = engine.epoch().id();

    // ---- Incremental timing: replay the same schedule on fresh engines
    // (rebuilt untimed per rep so every rep starts from the base epoch),
    // clocking only the apply_updates calls.
    let mut incremental_total_s = f64::INFINITY;
    for _ in 0..reps {
        let replay = MacEngine::build(indexed.clone());
        let mut total = 0.0;
        for delta in &schedule {
            let start = Instant::now();
            replay
                .apply_updates(delta)
                .expect("replay deltas are valid");
            total += start.elapsed().as_secs_f64();
        }
        incremental_total_s = incremental_total_s.min(total);
    }

    // ---- Full-rebuild timing: what absorbing each batch costs without the
    // update subsystem — rebuild the index and re-prepare the engine on the
    // post-batch network (network assembly excluded from the clock; the
    // serving system would have it either way).
    let mut rebuild_total_s = f64::INFINITY;
    for _ in 0..reps {
        let mut total = 0.0;
        for state in &post_states {
            let plain = rebuild_rsn(state);
            let start = Instant::now();
            let engine = MacEngine::build(plain.with_gtree_index());
            total += start.elapsed().as_secs_f64();
            std::hint::black_box(engine);
        }
        rebuild_total_s = rebuild_total_s.min(total);
    }

    // ---- Serving throughput after the final epoch (context row).
    let (serving_s, _) = best_of(reps, || {
        for _ in 0..SERVING_PASSES {
            for query in &workload {
                session
                    .execute_non_contained(query)
                    .expect("post-churn serving works");
            }
        }
    });
    let serving_qps_after_churn = (SERVING_PASSES * workload.len()) as f64 / serving_s.max(1e-12);

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        scenario: scenario.name,
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        workload: workload.len(),
        batches: schedule.len(),
        edge_updates_total: schedule.iter().map(|d| d.edge_updates.len()).sum(),
        user_moves_total: schedule.iter().map(|d| d.user_moves.len()).sum(),
        gtree_build_s,
        engine_build_s,
        incremental_total_s,
        rebuild_total_s,
        dirty_fraction_mean: dirty_fraction_sum / schedule.len().max(1) as f64,
        recalibrations,
        serving_qps_after_churn,
        final_epoch,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"scenario\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"workload_queries\": {},\n",
            "      \"update_batches\": {},\n",
            "      \"edge_reweights_total\": {},\n",
            "      \"user_moves_total\": {},\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"engine_build_seconds\": {:.6},\n",
            "      \"incremental_total_seconds\": {:.6},\n",
            "      \"incremental_mean_batch_seconds\": {:.6},\n",
            "      \"full_rebuild_total_seconds\": {:.6},\n",
            "      \"full_rebuild_mean_batch_seconds\": {:.6},\n",
            "      \"incremental_speedup\": {:.2},\n",
            "      \"incremental_beats_rebuild\": {},\n",
            "      \"gtree_dirty_fraction_mean\": {:.4},\n",
            "      \"recalibrations\": {},\n",
            "      \"serving_qps_after_churn\": {:.1},\n",
            "      \"final_epoch\": {}\n",
            "    }}"
        ),
        r.label,
        r.scenario,
        r.users,
        r.road_vertices,
        r.workload,
        r.batches,
        r.edge_updates_total,
        r.user_moves_total,
        r.gtree_build_s,
        r.engine_build_s,
        r.incremental_total_s,
        r.incremental_mean_batch_s(),
        r.rebuild_total_s,
        r.rebuild_mean_batch_s(),
        r.speedup(),
        r.incremental_total_s < r.rebuild_total_s,
        r.dirty_fraction_mean,
        r.recalibrations,
        r.serving_qps_after_churn,
        r.final_epoch,
    )
}

fn print_row(row: &PresetRow) {
    eprintln!(
        "  [{}] {} batches ({} reweights + {} moves) | incremental {:.4}s total ({:.1} ms/batch, {:.0}% of tree dirty, {} recalibrations) vs full rebuild {:.3}s total ({:.1} ms/batch) -> {:.1}x | serving after churn {:.1} q/s (epoch {})",
        row.scenario,
        row.batches,
        row.edge_updates_total,
        row.user_moves_total,
        row.incremental_total_s,
        row.incremental_mean_batch_s() * 1e3,
        row.dirty_fraction_mean * 100.0,
        row.recalibrations,
        row.rebuild_total_s,
        row.rebuild_mean_batch_s() * 1e3,
        row.speedup(),
        row.serving_qps_after_churn,
        row.final_epoch,
    );
}

fn write_record(path: &str, description: &str, pr: u32, reps: usize, rows: &[PresetRow]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"description\": \"{description}\",\n  \"reps\": {reps},\n  \"available_cores\": {cores},\n  \"presets\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench record");
    println!("{json}");
    eprintln!("wrote {path}");
}

const DESCRIPTION: &str = "Perf trajectory for the dynamic road-network update subsystem: \
MacEngine::apply_updates absorbs interleaved edge reweights and user churn by patching the \
current epoch copy-on-write (incremental G-tree matrix refresh over dirty leaf-to-root paths, \
per-leaf user-target row edits, drift-gated recalibration) and swapping it in; after every \
batch the updated engine is asserted query-identical to an engine rebuilt from scratch on \
independently tracked shadow state before any timing runs";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: one tiny preset, a short dynamic_traffic schedule, one
        // repetition. The per-batch equivalence gate inside measure_preset
        // still runs, so the apply_updates path cannot bit-rot silently; the
        // small record is uploaded as a CI artifact on every run.
        let spec = Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (smoke)",
            social_scale: 0.1,
            road_scale: 0.1,
            k: 8,
            sigma: 0.02,
            t_scale: 0.5,
        };
        let smoke_scenario = Scenario {
            name: "smoke",
            edges_per_batch: 6,
            users_per_batch: 4,
            edge_window: None,
        };
        let row = measure_preset(&spec, smoke_scenario, 1, 4, 2);
        print_row(&row);
        write_record(
            SMOKE_OUTPUT,
            "CI smoke record of the dynamic_traffic preset (tiny scale, 1 rep): \
             apply_updates exercised end-to-end with the per-batch scratch-rebuild \
             equivalence gate; timings are noise-scale and not comparable across runs",
            5,
            1,
            &[row],
        );
        println!("smoke ok");
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 12,
            sigma: 0.02,
            t_scale: 0.4,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 10,
            sigma: 0.02,
            t_scale: 0.4,
        },
        // Sparse-users-on-large-road regime: the G-tree rebuild dominates
        // here, so this row shows the incremental win most directly.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
            t_scale: 0.5,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, {} batches per scenario, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            UPDATE_BATCHES,
        );
        for scenario in SCENARIOS {
            let row = measure_preset(spec, scenario, reps, WORKLOAD_QUERIES, UPDATE_BATCHES);
            print_row(&row);
            assert!(
                row.incremental_total_s < row.rebuild_total_s,
                "{} [{}]: incremental updates ({:.4}s) must beat full rebuilds ({:.4}s)",
                row.label,
                row.scenario,
                row.incremental_total_s,
                row.rebuild_total_s
            );
            rows.push(row);
        }
    }
    write_record(OUTPUT, DESCRIPTION, 5, reps, &rows);
}

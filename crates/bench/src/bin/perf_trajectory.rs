//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search algorithms on fixed datagen presets and writes
//! `BENCH_PR2.json` (in the current directory), so later PRs can diff their
//! wall-clock against this PR's numbers instead of guessing. The PR-2 record
//! focuses on the two engine changes of this PR:
//!
//! * the Lemma-1 **range filter** under its three strategies — bounded
//!   Dijkstra sweep, per-user G-tree point queries, and the leaf-batched
//!   G-tree evaluation — with the strategies asserted set-identical on every
//!   preset before their timings are recorded;
//! * **parallel global search** over independent top-level GS cells versus
//!   the serial exploration (identical outputs, asserted).
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 3; the best of
//! the repetitions is recorded). `--smoke` runs a single tiny preset once and
//! writes nothing — a CI guard that keeps this binary from bit-rotting.

use rsn_core::ktcore::maximal_kt_core;
use rsn_core::{GlobalSearch, LocalSearch, MacQuery};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::network::Location;
use rsn_road::rangefilter::RangeFilterChoice;
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR2.json";
/// Worker count for the parallel-GS measurement. Fixed (rather than
/// `available_parallelism`) so records from different machines stay
/// comparable; the achievable speedup is still bounded by the actual cores,
/// which the record lists alongside.
const GS_WORKERS: usize = 4;

struct PresetRow {
    label: String,
    users: usize,
    road_vertices: usize,
    k: u32,
    t: f64,
    sigma: f64,
    kt_core: usize,
    cells: usize,
    gtree_build_s: f64,
    filter_dijkstra_s: f64,
    filter_gtree_point_s: f64,
    filter_gtree_batched_s: f64,
    ktcore_batched_s: f64,
    gs_nc_serial_s: f64,
    gs_nc_parallel_s: f64,
    ls_nc_s: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
}

fn measure_preset(spec: &Spec, reps: usize) -> PresetRow {
    let (name, k, sigma) = (spec.name, spec.k, spec.sigma);
    let dataset: Dataset = build_preset_scaled(
        name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, sigma).expect("valid region");
    let query = MacQuery::new(dataset.query_vertices(4), k, dataset.default_t, region);
    let (gtree_build_s, rsn_indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());

    // Range-filter trajectory: the three strategies on the same inputs,
    // proven set-identical before their timings are recorded.
    let q_locations: Vec<Location> = query.q.iter().map(|&v| *rsn_indexed.location(v)).collect();
    let filter_of = |choice: RangeFilterChoice| rsn_indexed.range_filter(choice);
    let reference = filter_of(RangeFilterChoice::DijkstraSweep).users_within(
        rsn_indexed.road(),
        &q_locations,
        query.t,
        rsn_indexed.locations(),
    );
    for choice in [
        RangeFilterChoice::GTreePoint,
        RangeFilterChoice::GTreeLeafBatched,
    ] {
        let got = filter_of(choice).users_within(
            rsn_indexed.road(),
            &q_locations,
            query.t,
            rsn_indexed.locations(),
        );
        assert_eq!(got, reference, "{choice:?} disagrees with the sweep");
    }
    let time_filter = |choice: RangeFilterChoice| {
        best_of(reps, || {
            filter_of(choice).users_within(
                rsn_indexed.road(),
                &q_locations,
                query.t,
                rsn_indexed.locations(),
            )
        })
        .0
    };
    let filter_dijkstra_s = time_filter(RangeFilterChoice::DijkstraSweep);
    let filter_gtree_point_s = time_filter(RangeFilterChoice::GTreePoint);
    let filter_gtree_batched_s = time_filter(RangeFilterChoice::GTreeLeafBatched);

    // End-to-end (k,t)-core extraction through the batched filter.
    let (ktcore_batched_s, core) = best_of(reps, || {
        let q = query
            .clone()
            .with_range_filter(RangeFilterChoice::GTreeLeafBatched);
        maximal_kt_core(&rsn_indexed, &q).expect("query valid")
    });

    // Global search: serial vs parallel over top-level cells, identical
    // output asserted.
    let (gs_nc_serial_s, gs) = best_of(reps, || {
        GlobalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("GS-NC runs")
    });
    let (gs_nc_parallel_s, gs_par) = best_of(reps, || {
        GlobalSearch::new(&dataset.rsn, &query)
            .with_parallelism(GS_WORKERS)
            .run_non_contained()
            .expect("parallel GS-NC runs")
    });
    assert_eq!(
        gs.cells.len(),
        gs_par.cells.len(),
        "parallel GS must report the same cells"
    );
    for (a, b) in gs.cells.iter().zip(&gs_par.cells) {
        assert_eq!(a.sample_weight, b.sample_weight);
        assert_eq!(a.communities.len(), b.communities.len());
    }

    let (ls_nc_s, _) = best_of(reps, || {
        LocalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("LS-NC runs")
    });

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        k,
        t: dataset.default_t,
        sigma,
        kt_core: core.map(|c| c.len()).unwrap_or(0),
        cells: gs.cells.len(),
        gtree_build_s,
        filter_dijkstra_s,
        filter_gtree_point_s,
        filter_gtree_batched_s,
        ktcore_batched_s,
        gs_nc_serial_s,
        gs_nc_parallel_s,
        ls_nc_s,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"k\": {},\n",
            "      \"t\": {},\n",
            "      \"sigma\": {},\n",
            "      \"kt_core_vertices\": {},\n",
            "      \"gs_cells\": {},\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"filter_dijkstra_seconds\": {:.6},\n",
            "      \"filter_gtree_point_seconds\": {:.6},\n",
            "      \"filter_gtree_batched_seconds\": {:.6},\n",
            "      \"batched_vs_point_speedup\": {:.3},\n",
            "      \"batched_vs_dijkstra_speedup\": {:.3},\n",
            "      \"ktcore_batched_seconds\": {:.6},\n",
            "      \"gs_nc_serial_seconds\": {:.6},\n",
            "      \"gs_nc_parallel_seconds\": {:.6},\n",
            "      \"gs_parallel_speedup\": {:.3},\n",
            "      \"ls_nc_seconds\": {:.6}\n",
            "    }}"
        ),
        r.label,
        r.users,
        r.road_vertices,
        r.k,
        r.t,
        r.sigma,
        r.kt_core,
        r.cells,
        r.gtree_build_s,
        r.filter_dijkstra_s,
        r.filter_gtree_point_s,
        r.filter_gtree_batched_s,
        r.filter_gtree_point_s / r.filter_gtree_batched_s.max(1e-12),
        r.filter_dijkstra_s / r.filter_gtree_batched_s.max(1e-12),
        r.ktcore_batched_s,
        r.gs_nc_serial_s,
        r.gs_nc_parallel_s,
        r.gs_nc_serial_s / r.gs_nc_parallel_s.max(1e-12),
        r.ls_nc_s,
    )
}

fn print_row(row: &PresetRow) {
    eprintln!(
        "  kt-core {} | filter: dijkstra {:.5}s, gtree-point {:.5}s, gtree-batched {:.5}s ({:.1}x vs point) | GS-NC serial {:.4}s, parallel({GS_WORKERS}) {:.4}s ({:.2}x) | LS-NC {:.4}s",
        row.kt_core,
        row.filter_dijkstra_s,
        row.filter_gtree_point_s,
        row.filter_gtree_batched_s,
        row.filter_gtree_point_s / row.filter_gtree_batched_s.max(1e-12),
        row.gs_nc_serial_s,
        row.gs_nc_parallel_s,
        row.gs_nc_serial_s / row.gs_nc_parallel_s.max(1e-12),
        row.ls_nc_s,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: one tiny preset, one repetition, no file output. Any
        // regression that breaks a measured code path fails this run.
        let spec = Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (smoke)",
            social_scale: 0.1,
            road_scale: 0.1,
            k: 8,
            sigma: 0.02,
        };
        let row = measure_preset(&spec, 1);
        print_row(&row);
        println!("smoke ok: {}", row.label);
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 8,
            sigma: 0.05,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 6,
            sigma: 0.05,
        },
        // Sparse-users-on-large-road regime, closest we get to the paper's
        // continent-scale setting for the G-tree filter comparison.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, sigma={}, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            spec.sigma
        );
        let row = measure_preset(spec, reps);
        print_row(&row);
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"description\": \"Perf trajectory after the RangeFilter layer (leaf-batched G-tree evaluation) and parallel top-level GS cells; filter strategies asserted set-identical, parallel GS asserted output-identical\",\n  \"reps\": {reps},\n  \"gs_parallel_workers\": {GS_WORKERS},\n  \"available_cores\": {cores},\n  \"presets\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(OUTPUT, &json).expect("write BENCH_PR2.json");
    println!("{json}");
    eprintln!("wrote {OUTPUT}");
}

//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search on a fixed **continental-scale grid preset** (40k road
//! vertices, multiway G-tree with leaf capacity 128) and writes
//! `BENCH_PR8.json` (in the current directory), so later PRs can diff their
//! wall-clock against this PR's numbers instead of guessing. The PR-8 record
//! measures what this PR's index rebuild buys: the multiway (fanout-4/8)
//! partitioned G-tree with contracted border graphs brings the 40k-vertex
//! build from minutes to seconds, which in turn resets the economics of the
//! PR-5 dynamic-traffic scenarios (incremental `apply_updates` vs full
//! rebuild).
//!
//! * **Identity gate** — before anything is timed, engines indexed with
//!   fanout-4 and fanout-8 multiway trees are asserted query-identical to an
//!   engine on the binary-bisection reference tree (fresh build AND after an
//!   update batch applied to all three). A faster index that changes answers
//!   is a bug, not a speedup.
//! * **Build budget gate** — the 40k grid G-tree build must finish inside
//!   [`BUILD_BUDGET_SECONDS`] (it takes ~4s here; the pre-PR binary builder
//!   took ~315s, so the budget cleanly separates regressions from noise).
//! * **Update scenarios** — the PR-5 schedule generator replayed verbatim on
//!   the grid preset: user churn, regional traffic, global traffic. After
//!   every batch the updated engine is asserted query-identical to an engine
//!   rebuilt from scratch on shadow post-batch state, then the schedule is
//!   replayed under the clock both ways. Gates are **honest**: user churn
//!   must win by ≥10× (it wins by far more — the G-tree is untouched), but a
//!   24-edge traffic batch truly changes ~98% of the root border-matrix
//!   *rows* (shortest paths reroute globally), so exact row-complete
//!   maintenance is asserted to win by ≥1.5×, with the measured 2–3× recorded
//!   as data rather than rounded up to a marketing number.
//!
//! Since PR 10 the recorder also writes `BENCH_PR10.json`: the parallel
//! execution stage behind the `ExecutionPolicy` redesign. Every parallel
//! configuration (one-shot GS at several worker counts with stealing on and
//! off, parallel sessions, the multi-worker batch) is asserted
//! cell-identical to serial before anything is timed, then serial vs
//! all-cores serving throughput is measured under an honest hardware-aware
//! gate: >= 1.5x on >= 4 cores, otherwise a single-core floor gated at
//! <= 5% overhead (a 1-core record is a floor, not a scaling measurement).
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 2; the best of
//! the repetitions is recorded). `--smoke` runs the multiway-vs-binary
//! identity gate at reduced scale plus the full 40k grid-build budget gate
//! and the PR-10 parallel-vs-serial identity gate (timings recorded, not
//! gated), and writes `BENCH_SMOKE.json` + `BENCH_PR10.json`, which CI
//! uploads as workflow artifacts on every run.

use rsn_core::{
    AlgorithmChoice, ExecutionPolicy, MacEngine, MacQuery, MacSearchResult, NetworkDelta,
    RoadSocialNetwork,
};
use rsn_datagen::attrs::{generate_attrs, AttrDistribution};
use rsn_datagen::locations::{assign_locations, LocationConfig};
use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_datagen::social::{generate_social, PlantedGroup, SocialConfig};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::network::{Location, RoadNetwork};
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR8.json";
const SMOKE_OUTPUT: &str = "BENCH_SMOKE.json";
/// The PR-10 parallel-execution record (see [`write_pr10_record`]).
const PR10_OUTPUT: &str = "BENCH_PR10.json";
/// On >= 4 cores the all-cores policy must beat serial serving by this much.
const MIN_PARALLEL_SPEEDUP: f64 = 1.5;
/// On fewer cores parallelism resolves to one worker; the policy machinery
/// is gated to cost at most this fraction over the plain serial path.
const MAX_SINGLE_CORE_OVERHEAD: f64 = 0.05;
/// Continental grid preset: road vertices / social users / G-tree leaf cap.
const GRID_ROAD_VERTICES: usize = 40_000;
const GRID_USERS: usize = 2_000;
const GRID_LEAF_CAPACITY: usize = 128;
/// Wall-clock ceiling on the 40k grid G-tree build (typical: ~4s single
/// core; the pre-PR binary-bisection builder took ~315s on the same box).
const BUILD_BUDGET_SECONDS: f64 = 30.0;
/// Queries per serving workload.
const WORKLOAD_QUERIES: usize = 8;
/// Update batches per scenario (each = edge reweights + user moves).
const UPDATE_BATCHES: usize = 3;
/// Passes over the workload for the serving-throughput measurement.
const SERVING_PASSES: usize = 5;
/// User churn leaves the G-tree untouched: incremental must win big.
const MIN_USER_CHURN_SPEEDUP: f64 = 10.0;
/// Traffic reweights dirty almost every root matrix row (shortest paths
/// reroute network-wide), so exact maintenance wins by low single digits.
const MIN_TRAFFIC_SPEEDUP: f64 = 1.5;

/// One dynamic-traffic batch composition (PR-5 schedule, replayed verbatim).
#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    /// Road-segment reweights per batch.
    edges_per_batch: usize,
    /// User moves per batch.
    users_per_batch: usize,
    /// `Some(frac)`: all reweights land in one contiguous window covering
    /// `frac` of the canonical edge order (vertex ids are spatially coherent,
    /// so this models a congested metro area); `None`: network-wide traffic.
    edge_window: Option<f64>,
    /// The acceptance floor on incremental-vs-rebuild for this mix.
    min_speedup: f64,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "user-churn",
        edges_per_batch: 0,
        users_per_batch: 48,
        edge_window: None,
        min_speedup: MIN_USER_CHURN_SPEEDUP,
    },
    Scenario {
        name: "regional-traffic",
        edges_per_batch: 24,
        users_per_batch: 12,
        edge_window: Some(0.04),
        min_speedup: MIN_TRAFFIC_SPEEDUP,
    },
    Scenario {
        name: "global-traffic",
        edges_per_batch: 24,
        users_per_batch: 12,
        edge_window: None,
        min_speedup: MIN_TRAFFIC_SPEEDUP,
    },
];

struct ScenarioRow {
    scenario: &'static str,
    batches: usize,
    edge_updates_total: usize,
    user_moves_total: usize,
    min_speedup: f64,
    /// Summed apply_updates wall-clock over the whole schedule (best rep).
    incremental_total_s: f64,
    /// Summed index+engine rebuild wall-clock over the schedule (best rep).
    rebuild_total_s: f64,
    /// Mean fraction of G-tree nodes recomputed per batch.
    dirty_fraction_mean: f64,
    /// Serving throughput through one session after the final epoch.
    serving_qps_after_churn: f64,
    final_epoch: u64,
}

impl ScenarioRow {
    fn incremental_mean_batch_s(&self) -> f64 {
        self.incremental_total_s / self.batches.max(1) as f64
    }
    fn rebuild_mean_batch_s(&self) -> f64 {
        self.rebuild_total_s / self.batches.max(1) as f64
    }
    fn speedup(&self) -> f64 {
        self.rebuild_total_s / self.incremental_total_s.max(1e-12)
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// A datagen road-social network on a grid road of `n_road` vertices. The
/// same constructor serves the continental preset and the reduced-scale
/// identity gate; only the sizes differ.
fn grid_network(n_road: usize, n_users: usize, seed: u64) -> RoadSocialNetwork {
    let road = generate_road(&RoadConfig::with_size(n_road, seed));
    let social = generate_social(&SocialConfig {
        n: n_users,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 18,
            degree: 6,
        }],
        seed,
    });
    let attrs = generate_attrs(n_users, 3, AttrDistribution::Independent, 10.0, seed);
    let locations = assign_locations(
        &road,
        n_users,
        &social.groups,
        &LocationConfig {
            clusters: 8,
            radius: 5,
            seed,
        },
    );
    RoadSocialNetwork::new(social.graph, road, locations, attrs)
        .expect("datagen output is consistent")
}

/// A serving workload scaled to the network: 1–2 seed users, k = 4, t as a
/// multiple of the mean edge weight (the grid generator's weights are
/// seed-dependent, so absolute distances would not transfer), narrow
/// paper-style preference region. Exact global search so reference engines
/// are well-defined.
fn build_workload(rsn: &RoadSocialNetwork, queries: usize) -> Vec<MacQuery> {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, 0.05).expect("valid region");
    let m = rsn.road().num_edges().max(1);
    let avg_w: f64 = rsn.road().edges().map(|(_, _, w)| w).sum::<f64>() / m as f64;
    let n_users = rsn.num_users() as u32;
    (0..queries)
        .map(|i| {
            let q_len = 1 + i % 2;
            let q: Vec<u32> = (0..q_len)
                .map(|j| ((i * 7 + j * 13 + 3) as u32 * 31 + 5) % n_users)
                .collect();
            let t = avg_w * [8.0, 12.0, 16.0][(i / 2) % 3];
            MacQuery::new(q, 4, t, region.clone()).with_algorithm(AlgorithmChoice::Global)
        })
        .collect()
}

/// The deterministic dynamic-traffic schedule (PR-5 generator, verbatim):
/// per batch, a set of edge reweights (multiplier cycle over
/// deterministically picked segments, clamped so no resident on-edge user is
/// stranded past its edge's new length) interleaved with user moves. Returns
/// the deltas paired with a snapshot of the shadow `(edges, locations)`
/// state after each batch — the single source of truth the from-scratch
/// reference engines are built from.
#[allow(clippy::type_complexity)]
fn build_update_schedule(
    rsn: &RoadSocialNetwork,
    edges: &mut [(u32, u32, f64)],
    locations: &mut [Location],
    batches: usize,
    scenario: Scenario,
) -> (
    Vec<NetworkDelta>,
    Vec<(Vec<(u32, u32, f64)>, Vec<Location>)>,
) {
    const MULTIPLIERS: [f64; 5] = [0.6, 0.85, 1.2, 1.6, 2.3];
    let n_users = locations.len();
    let n_road = rsn.road().num_vertices() as u32;
    let m = edges.len();
    // The canonical edge order is sorted by (u, v) and vertex ids are
    // row-major, so a contiguous index window is a spatial region.
    let (window_start, window_len) = match scenario.edge_window {
        Some(frac) => {
            let len = ((m as f64 * frac).ceil() as usize).clamp(1, m);
            (m / 3, len)
        }
        None => (0, m),
    };
    let mut schedule = Vec::with_capacity(batches);
    let mut post_states = Vec::with_capacity(batches);
    for b in 0..batches {
        let mut delta = NetworkDelta::new();
        for i in 0..scenario.edges_per_batch.min(window_len) {
            let idx = (window_start + (b * 9973 + i * 101 + 7) % window_len) % m;
            let (u, v, w) = edges[idx];
            let min_allowed = locations
                .iter()
                .filter_map(|loc| match *loc {
                    Location::OnEdge {
                        u: lu,
                        v: lv,
                        offset,
                    } if (lu, lv) == (u, v) => Some(offset),
                    _ => None,
                })
                .fold(0.0f64, f64::max);
            let w_new = (w * MULTIPLIERS[(b + i) % MULTIPLIERS.len()]).max(min_allowed);
            edges[idx].2 = w_new;
            delta = delta.reweight_edge(u, v, w_new);
        }
        for i in 0..scenario.users_per_batch.min(n_users) {
            let user = ((b * 677 + i * 397 + 11) % n_users) as u32;
            let loc = if i % 3 == 0 {
                let (u, v, w) = edges[(b * 131 + i * 29) % m];
                Location::on_edge(u, v, 0.5 * w, w)
            } else {
                Location::Vertex(((b * 283 + i * 173) as u32 * 7 + 1) % n_road)
            };
            locations[user as usize] = loc;
            delta = delta.move_user(user, loc);
        }
        schedule.push(delta);
        post_states.push((edges.to_vec(), locations.to_vec()));
    }
    (schedule, post_states)
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

/// The multiway-vs-binary identity gate: engines indexed with fanout-4 and
/// fanout-8 multiway trees must answer every workload query identically to
/// the binary-bisection reference — on the fresh build and again after an
/// update batch hits all three engines. Runs at reduced scale (the property
/// is structural, not scale-dependent) and is a hard gate: the recorder
/// panics before a single timing row is produced if any answer diverges.
fn run_identity_gate(road_vertices: usize, users: usize) -> (usize, usize) {
    let rsn = grid_network(road_vertices, users, 13);
    let workload = build_workload(&rsn, WORKLOAD_QUERIES);
    let binary = MacEngine::build_uncalibrated(rsn.clone().with_gtree_index_params(16, 2));
    let multiway: Vec<(usize, MacEngine)> = [4usize, 8]
        .into_iter()
        .map(|fanout| {
            (
                fanout,
                MacEngine::build_uncalibrated(rsn.clone().with_gtree_index_params(16, fanout)),
            )
        })
        .collect();

    let mut checked = 0usize;
    let mut compare_all = |stage: &str| {
        let mut reference_session = binary.session();
        for (fanout, engine) in &multiway {
            let mut session = engine.session();
            for (qi, query) in workload.iter().enumerate() {
                let expected = reference_session
                    .execute_non_contained(query)
                    .expect("binary reference serves");
                let got = session
                    .execute_non_contained(query)
                    .expect("multiway engine serves");
                assert_results_identical(
                    &format!("identity gate ({stage}), fanout {fanout}, query {qi}"),
                    &expected,
                    &got,
                );
                checked += 1;
            }
        }
    };
    compare_all("fresh build");

    // One mixed batch through every engine: the incremental path must keep
    // the trees equivalent, not just the builders.
    let mut edges: Vec<(u32, u32, f64)> = rsn.road().edges().collect();
    let mut locations: Vec<Location> = rsn.locations().to_vec();
    let (schedule, _) = build_update_schedule(
        &rsn,
        &mut edges,
        &mut locations,
        1,
        Scenario {
            name: "identity",
            edges_per_batch: 12,
            users_per_batch: 8,
            edge_window: None,
            min_speedup: 1.0,
        },
    );
    for delta in &schedule {
        binary.apply_updates(delta).expect("binary absorbs delta");
        for (_, engine) in &multiway {
            engine.apply_updates(delta).expect("multiway absorbs delta");
        }
    }
    compare_all("after update batch");
    (multiway.len(), checked)
}

/// One PR-5 scenario on the prepared continental engine: correctness gate
/// (untimed) against per-batch scratch rebuilds, then the schedule replayed
/// under the clock both ways.
fn measure_scenario(
    indexed: &RoadSocialNetwork,
    workload: &[MacQuery],
    scenario: Scenario,
    reps: usize,
) -> ScenarioRow {
    // Shadow state the reference engines rebuild from.
    let mut edges: Vec<(u32, u32, f64)> = indexed.road().edges().collect();
    let mut locations: Vec<Location> = indexed.locations().to_vec();
    let (schedule, post_states) = build_update_schedule(
        indexed,
        &mut edges,
        &mut locations,
        UPDATE_BATCHES,
        scenario,
    );
    let rebuild_rsn = |state: &(Vec<(u32, u32, f64)>, Vec<Location>)| -> RoadSocialNetwork {
        RoadSocialNetwork::new(
            indexed.social().clone(),
            RoadNetwork::from_edges(indexed.road().num_vertices(), &state.0),
            state.1.clone(),
            indexed.all_attributes().to_vec(),
        )
        .expect("shadow state stays consistent")
    };

    // ---- Correctness gate (untimed): after every batch, the incrementally
    // updated engine must answer the whole workload identically to an engine
    // rebuilt from scratch on the shadow post-batch state.
    let engine = MacEngine::build(indexed.clone());
    let mut session = engine.session();
    let mut dirty_fraction_sum = 0.0;
    for (bi, delta) in schedule.iter().enumerate() {
        let stats = engine
            .apply_updates(delta)
            .expect("schedule deltas are valid");
        assert_eq!(stats.epoch, bi as u64 + 1);
        if let Some(g) = stats.gtree {
            dirty_fraction_sum += g.dirty_fraction();
        }
        let reference = MacEngine::build_uncalibrated(
            rebuild_rsn(&post_states[bi]).with_gtree_index_capacity(GRID_LEAF_CAPACITY),
        );
        let mut reference_session = reference.session();
        for (qi, query) in workload.iter().enumerate() {
            let updated = session
                .execute_non_contained(query)
                .expect("updated engine serves");
            let rebuilt = reference_session
                .execute_non_contained(query)
                .expect("rebuilt engine serves");
            assert_results_identical(
                &format!("{} batch {bi}, query {qi}", scenario.name),
                &updated,
                &rebuilt,
            );
        }
    }
    let final_epoch = engine.epoch().id();

    // ---- Incremental timing: replay the same schedule on fresh engines
    // (rebuilt untimed per rep so every rep starts from the base epoch),
    // clocking only the apply_updates calls.
    let mut incremental_total_s = f64::INFINITY;
    for _ in 0..reps {
        let replay = MacEngine::build(indexed.clone());
        let mut total = 0.0;
        for delta in &schedule {
            let start = Instant::now();
            replay
                .apply_updates(delta)
                .expect("replay deltas are valid");
            total += start.elapsed().as_secs_f64();
        }
        incremental_total_s = incremental_total_s.min(total);
    }

    // ---- Full-rebuild timing: what absorbing each batch costs without the
    // update subsystem — rebuild the index and re-prepare the engine on the
    // post-batch network (network assembly excluded from the clock; the
    // serving system would have it either way).
    let mut rebuild_total_s = f64::INFINITY;
    for _ in 0..reps {
        let mut total = 0.0;
        for state in &post_states {
            let plain = rebuild_rsn(state);
            let start = Instant::now();
            let rebuilt = MacEngine::build(plain.with_gtree_index_capacity(GRID_LEAF_CAPACITY));
            total += start.elapsed().as_secs_f64();
            std::hint::black_box(rebuilt);
        }
        rebuild_total_s = rebuild_total_s.min(total);
    }

    // ---- Serving throughput after the final epoch (context row).
    let (serving_s, _) = best_of(reps, || {
        for _ in 0..SERVING_PASSES {
            for query in workload {
                session
                    .execute_non_contained(query)
                    .expect("post-churn serving works");
            }
        }
    });
    let serving_qps_after_churn = (SERVING_PASSES * workload.len()) as f64 / serving_s.max(1e-12);

    ScenarioRow {
        scenario: scenario.name,
        batches: schedule.len(),
        edge_updates_total: schedule.iter().map(|d| d.edge_updates.len()).sum(),
        user_moves_total: schedule.iter().map(|d| d.user_moves.len()).sum(),
        min_speedup: scenario.min_speedup,
        incremental_total_s,
        rebuild_total_s,
        dirty_fraction_mean: dirty_fraction_sum / schedule.len().max(1) as f64,
        serving_qps_after_churn,
        final_epoch,
    }
}

fn json_row(r: &ScenarioRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"scenario\": \"{}\",\n",
            "      \"update_batches\": {},\n",
            "      \"edge_reweights_total\": {},\n",
            "      \"user_moves_total\": {},\n",
            "      \"incremental_total_seconds\": {:.6},\n",
            "      \"incremental_mean_batch_seconds\": {:.6},\n",
            "      \"full_rebuild_total_seconds\": {:.6},\n",
            "      \"full_rebuild_mean_batch_seconds\": {:.6},\n",
            "      \"incremental_speedup\": {:.2},\n",
            "      \"min_speedup_gate\": {:.1},\n",
            "      \"gate_passed\": {},\n",
            "      \"gtree_dirty_fraction_mean\": {:.4},\n",
            "      \"serving_qps_after_churn\": {:.1},\n",
            "      \"final_epoch\": {}\n",
            "    }}"
        ),
        r.scenario,
        r.batches,
        r.edge_updates_total,
        r.user_moves_total,
        r.incremental_total_s,
        r.incremental_mean_batch_s(),
        r.rebuild_total_s,
        r.rebuild_mean_batch_s(),
        r.speedup(),
        r.min_speedup,
        r.speedup() >= r.min_speedup,
        r.dirty_fraction_mean,
        r.serving_qps_after_churn,
        r.final_epoch,
    )
}

fn print_row(row: &ScenarioRow) {
    eprintln!(
        "  [{}] {} batches ({} reweights + {} moves) | incremental {:.4}s total ({:.1} ms/batch, {:.0}% of tree dirty) vs full rebuild {:.3}s total ({:.1} ms/batch) -> {:.1}x (gate >= {:.1}x) | serving after churn {:.1} q/s (epoch {})",
        row.scenario,
        row.batches,
        row.edge_updates_total,
        row.user_moves_total,
        row.incremental_total_s,
        row.incremental_mean_batch_s() * 1e3,
        row.dirty_fraction_mean * 100.0,
        row.rebuild_total_s,
        row.rebuild_mean_batch_s() * 1e3,
        row.speedup(),
        row.min_speedup,
        row.serving_qps_after_churn,
        row.final_epoch,
    );
}

#[allow(clippy::too_many_arguments)]
fn write_record(
    path: &str,
    description: &str,
    reps: usize,
    gtree_build_s: f64,
    engine_build_s: f64,
    identity_checks: usize,
    grid_vertices: usize,
    grid_users: usize,
    rows: &[ScenarioRow],
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body: Vec<String> = rows.iter().map(json_row).collect();
    let scenarios = if body.is_empty() {
        String::new()
    } else {
        format!("\n{}\n  ", body.join(",\n"))
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 8,\n",
            "  \"description\": \"{}\",\n",
            "  \"reps\": {},\n",
            "  \"available_cores\": {},\n",
            "  \"grid_road_vertices\": {},\n",
            "  \"grid_users\": {},\n",
            "  \"gtree_leaf_capacity\": {},\n",
            "  \"gtree_build_seconds\": {:.6},\n",
            "  \"gtree_build_budget_seconds\": {:.1},\n",
            "  \"build_within_budget\": {},\n",
            "  \"engine_build_seconds\": {:.6},\n",
            "  \"multiway_vs_binary_identity_checks\": {},\n",
            "  \"scenarios\": [{}]\n",
            "}}\n"
        ),
        description,
        reps,
        cores,
        grid_vertices,
        grid_users,
        GRID_LEAF_CAPACITY,
        gtree_build_s,
        BUILD_BUDGET_SECONDS,
        gtree_build_s <= BUILD_BUDGET_SECONDS,
        engine_build_s,
        identity_checks,
        scenarios,
    );
    std::fs::write(path, &json).expect("write bench record");
    println!("{json}");
    eprintln!("wrote {path}");
}

/// Parallel-vs-serial identity gate (PR 10): every parallel configuration —
/// one-shot global searches at several worker counts with stealing on and
/// off, parallel sessions, and the multi-worker batch — must answer the
/// whole workload cell-identically to the serial path. Hard gate: panics
/// before any PR-10 timing row is produced if one answer diverges. Returns
/// the number of result comparisons performed.
fn run_parallel_identity_gate(engine: &MacEngine, workload: &[MacQuery]) -> usize {
    let mut serial = engine
        .session()
        .with_policy(engine.policy().clone().with_parallelism(1));
    let mut checked = 0usize;
    for stealing in [false, true] {
        for workers in [2usize, 0] {
            let policy = engine
                .policy()
                .clone()
                .with_parallelism(workers)
                .with_work_stealing(stealing);
            let mut parallel = engine.session().with_policy(policy);
            for (qi, query) in workload.iter().enumerate() {
                let expected = serial
                    .execute_non_contained(query)
                    .expect("serial session serves");
                let got = parallel
                    .execute_non_contained(query)
                    .expect("parallel session serves");
                assert_results_identical(
                    &format!("parallel gate, workers {workers}, stealing {stealing}, query {qi}"),
                    &expected,
                    &got,
                );
                checked += 1;
            }
        }
    }
    // The batch path: distinct queries fan out across worker sessions, and
    // the reassembled slots must match the serial batch exactly.
    let serial_batch = serial.execute_batch(workload).expect("serial batch");
    let mut batch_session = engine.session().with_policy(
        engine
            .policy()
            .clone()
            .with_parallelism(0)
            .with_work_stealing(true),
    );
    let parallel_batch = batch_session
        .execute_batch(workload)
        .expect("parallel batch");
    assert_eq!(serial_batch.results.len(), parallel_batch.results.len());
    for (slot, (a, b)) in serial_batch
        .results
        .iter()
        .zip(&parallel_batch.results)
        .enumerate()
    {
        assert_results_identical(&format!("parallel gate, batch slot {slot}"), a, b);
        checked += 1;
    }
    checked
}

/// The PR-10 scaling measurement: serial vs all-cores serving throughput
/// through policy-configured sessions, plus the honest hardware-aware gate.
struct ParallelScaling {
    cores: usize,
    serial_qps: f64,
    parallel_qps: f64,
    stealing_qps: f64,
    /// Best parallel configuration over serial (>= 1 means parallel wins).
    speedup: f64,
    /// `serial/best - 1`, clamped at 0 — what the parallel machinery costs
    /// when it cannot win (the single-core floor).
    overhead_frac: f64,
    gate: &'static str,
    gate_passed: bool,
}

fn measure_parallel_scaling(
    engine: &MacEngine,
    workload: &[MacQuery],
    reps: usize,
) -> ParallelScaling {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let serve = |policy: ExecutionPolicy| -> f64 {
        let mut session = engine.session().with_policy(policy);
        for query in workload {
            session
                .execute_non_contained(query)
                .expect("warmup query serves");
        }
        let (seconds, _) = best_of(reps, || {
            for _ in 0..SERVING_PASSES {
                for query in workload {
                    session
                        .execute_non_contained(query)
                        .expect("measured query serves");
                }
            }
        });
        (SERVING_PASSES * workload.len()) as f64 / seconds.max(1e-12)
    };
    let base = engine.policy().clone();
    let serial_qps = serve(base.clone().with_parallelism(1));
    let parallel_qps = serve(base.clone().with_parallelism(0).with_work_stealing(false));
    let stealing_qps = serve(base.with_parallelism(0).with_work_stealing(true));
    let best = parallel_qps.max(stealing_qps);
    let speedup = best / serial_qps.max(1e-12);
    let overhead_frac = (serial_qps / best.max(1e-12) - 1.0).max(0.0);
    let (gate, gate_passed) = if cores >= 4 {
        ("parallel_speedup >= 1.5", speedup >= MIN_PARALLEL_SPEEDUP)
    } else {
        (
            "single-core floor: overhead <= 5%",
            overhead_frac <= MAX_SINGLE_CORE_OVERHEAD,
        )
    };
    ParallelScaling {
        cores,
        serial_qps,
        parallel_qps,
        stealing_qps,
        speedup,
        overhead_frac,
        gate,
        gate_passed,
    }
}

/// Writes the PR-10 parallel-execution record. `timing_gated` distinguishes
/// the full local run (gate enforced, record meaningful) from the CI smoke
/// (identity gate only is load-bearing; timings are noise-scale).
fn write_pr10_record(
    path: &str,
    scaling: &ParallelScaling,
    identity_checks: usize,
    workload_queries: usize,
    grid_vertices: usize,
    grid_users: usize,
    timing_gated: bool,
) {
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 10,\n",
            "  \"description\": \"Work-stealing parallel execution behind the ExecutionPolicy \
             API: serial vs all-cores serving throughput through policy-configured sessions, \
             with every parallel answer (one-shot GS at several worker counts with stealing \
             on/off, parallel sessions, the multi-worker batch) asserted cell-identical to \
             serial before timing. The scaling gate is hardware-aware: >= 1.5x on >= 4 cores, \
             otherwise a single-core floor gated at <= 5% overhead — a 1-core record is a \
             floor, not a scaling measurement\",\n",
            "  \"available_cores\": {},\n",
            "  \"grid_road_vertices\": {},\n",
            "  \"grid_users\": {},\n",
            "  \"workload_queries\": {},\n",
            "  \"parallel_identity_checks\": {},\n",
            "  \"serial_qps\": {:.2},\n",
            "  \"parallel_qps\": {:.2},\n",
            "  \"parallel_stealing_qps\": {:.2},\n",
            "  \"parallel_speedup\": {:.3},\n",
            "  \"single_core_overhead_fraction\": {:.4},\n",
            "  \"scaling_gate\": \"{}\",\n",
            "  \"gate_passed\": {},\n",
            "  \"timing_gated\": {}\n",
            "}}\n"
        ),
        scaling.cores,
        grid_vertices,
        grid_users,
        workload_queries,
        identity_checks,
        scaling.serial_qps,
        scaling.parallel_qps,
        scaling.stealing_qps,
        scaling.speedup,
        scaling.overhead_frac,
        scaling.gate,
        scaling.gate_passed,
        timing_gated,
    );
    std::fs::write(path, &json).expect("write PR-10 bench record");
    println!("{json}");
    eprintln!("wrote {path}");
}

const DESCRIPTION: &str = "Perf trajectory for the continental-scale G-tree rebuild: multiway \
(fanout-4/8) GGGP+FM partitioning with contracted reduced border graphs builds a 40k-vertex \
grid index in seconds (pre-PR binary builder: minutes); multiway engines are asserted \
query-identical to the binary-bisection reference before any timing; PR-5 dynamic-traffic \
scenarios replayed on the grid preset with per-batch scratch-rebuild equivalence gates. \
Speedup gates are honest: user churn leaves the index untouched and must win >= 10x; a \
24-edge traffic batch reroutes shortest paths through ~98% of root border-matrix rows, so \
exact row-complete maintenance wins by ~2-3x and is gated at >= 1.5x";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: the structural identity gate at reduced scale, then the
        // full-size grid build under its wall-clock budget. No update
        // scenarios (tier-1 tests and the full recorder cover those); the
        // small record is uploaded as a CI artifact on every run.
        eprintln!("smoke: multiway-vs-binary identity gate (reduced scale)...");
        let (fanouts, checked) = run_identity_gate(2_500, 400);
        eprintln!("  {checked} query comparisons across {fanouts} fanouts: identical");
        eprintln!(
            "smoke: {GRID_ROAD_VERTICES}-vertex grid build (budget {BUILD_BUDGET_SECONDS:.0}s)..."
        );
        let rsn = grid_network(GRID_ROAD_VERTICES, GRID_USERS, 7);
        let (gtree_build_s, indexed) = best_of(1, || {
            rsn.clone().with_gtree_index_capacity(GRID_LEAF_CAPACITY)
        });
        assert!(
            gtree_build_s <= BUILD_BUDGET_SECONDS,
            "grid G-tree build took {gtree_build_s:.1}s, budget is {BUILD_BUDGET_SECONDS:.0}s"
        );
        let (engine_build_s, engine) = best_of(1, || MacEngine::build(indexed.clone()));
        std::hint::black_box(engine);
        eprintln!("  gtree {gtree_build_s:.2}s, engine {engine_build_s:.3}s: within budget");
        write_record(
            SMOKE_OUTPUT,
            "CI smoke record of the continental G-tree path: multiway-vs-binary \
             identity gate at reduced scale plus the 40k grid build under its \
             wall-clock budget; timings are noise-scale and not comparable across runs",
            1,
            gtree_build_s,
            engine_build_s,
            checked,
            GRID_ROAD_VERTICES,
            GRID_USERS,
            &[],
        );
        // PR-10 parallel gate at reduced scale: the identity assertions are
        // the load-bearing part in CI; the throughput numbers are recorded
        // but not gated (CI boxes are too noisy for latency assertions).
        eprintln!("smoke: parallel-vs-serial identity gate (reduced scale)...");
        let small = grid_network(2_500, 400, 13).with_gtree_index_capacity(16);
        let small_workload = build_workload(&small, WORKLOAD_QUERIES);
        let small_engine = MacEngine::build_uncalibrated(small);
        let parallel_checked = run_parallel_identity_gate(&small_engine, &small_workload);
        eprintln!("  {parallel_checked} parallel-vs-serial comparisons: identical");
        let scaling = measure_parallel_scaling(&small_engine, &small_workload, 1);
        write_pr10_record(
            PR10_OUTPUT,
            &scaling,
            parallel_checked,
            small_workload.len(),
            2_500,
            400,
            false,
        );
        println!("smoke ok");
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);

    eprintln!("identity gate: multiway (fanout 4, 8) vs binary reference...");
    let (fanouts, checked) = run_identity_gate(2_500, 400);
    eprintln!("  {checked} query comparisons across {fanouts} fanouts: identical");

    eprintln!(
        "building the continental preset ({GRID_ROAD_VERTICES} road vertices, {GRID_USERS} users, leaf capacity {GRID_LEAF_CAPACITY})..."
    );
    let rsn = grid_network(GRID_ROAD_VERTICES, GRID_USERS, 7);
    let (gtree_build_s, indexed) = best_of(1, || {
        rsn.clone().with_gtree_index_capacity(GRID_LEAF_CAPACITY)
    });
    assert!(
        gtree_build_s <= BUILD_BUDGET_SECONDS,
        "grid G-tree build took {gtree_build_s:.1}s, budget is {BUILD_BUDGET_SECONDS:.0}s"
    );
    let (engine_build_s, _) = best_of(1, || MacEngine::build(indexed.clone()));
    eprintln!("  gtree {gtree_build_s:.2}s (budget {BUILD_BUDGET_SECONDS:.0}s), engine {engine_build_s:.3}s");

    let workload = build_workload(&indexed, WORKLOAD_QUERIES);
    let mut rows = Vec::new();
    for scenario in SCENARIOS {
        eprintln!(
            "measuring [{}] ({} batches, reps={reps})...",
            scenario.name, UPDATE_BATCHES
        );
        let row = measure_scenario(&indexed, &workload, scenario, reps);
        print_row(&row);
        assert!(
            row.speedup() >= row.min_speedup,
            "[{}]: incremental speedup {:.2}x is below the {:.1}x gate",
            row.scenario,
            row.speedup(),
            row.min_speedup
        );
        rows.push(row);
    }
    write_record(
        OUTPUT,
        DESCRIPTION,
        reps,
        gtree_build_s,
        engine_build_s,
        checked,
        GRID_ROAD_VERTICES,
        GRID_USERS,
        &rows,
    );

    // ---- PR-10 parallel-execution stage on the continental engine:
    // identity-gate every parallel configuration, then measure serial vs
    // all-cores serving and enforce the hardware-aware scaling gate.
    eprintln!("parallel gate: one-shot GS / sessions / batch vs serial...");
    let engine = MacEngine::build(indexed.clone());
    let parallel_checked = run_parallel_identity_gate(&engine, &workload);
    eprintln!("  {parallel_checked} parallel-vs-serial comparisons: identical");
    eprintln!("measuring parallel scaling (reps={reps})...");
    let scaling = measure_parallel_scaling(&engine, &workload, reps);
    eprintln!(
        "  {} cores | serial {:.1} q/s, parallel {:.1} q/s, stealing {:.1} q/s -> {:.2}x \
         (overhead {:.1}%) | gate [{}]",
        scaling.cores,
        scaling.serial_qps,
        scaling.parallel_qps,
        scaling.stealing_qps,
        scaling.speedup,
        scaling.overhead_frac * 100.0,
        scaling.gate,
    );
    assert!(
        scaling.gate_passed,
        "parallel scaling gate failed on {} cores: speedup {:.2}x, overhead {:.1}% ({})",
        scaling.cores,
        scaling.speedup,
        scaling.overhead_frac * 100.0,
        scaling.gate,
    );
    write_pr10_record(
        PR10_OUTPUT,
        &scaling,
        parallel_checked,
        workload.len(),
        GRID_ROAD_VERTICES,
        GRID_USERS,
        true,
    );
}

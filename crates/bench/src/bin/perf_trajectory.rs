//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search on fixed datagen presets and writes `BENCH_PR6.json`
//! (in the current directory), so later PRs can diff their wall-clock against
//! this PR's numbers instead of guessing. The PR-6 record measures what this
//! PR's robustness layer costs: **budget polling overhead** on the PR-4
//! serving presets — the same workload served unbudgeted (the exact path)
//! and under an *armed* budget (finite work limit + far deadline, so the
//! amortized ticker checks actually run on every pipeline stage).
//!
//! * **Identity gate** — before anything is timed, every armed-budget answer
//!   is asserted cell-identical to the unbudgeted answer (budget polling
//!   must never change a result), and a zero deadline is asserted to degrade
//!   every query to `QueryOutcome::Partial` without panicking.
//! * **Overhead gate** — the armed serving rate must stay within 5% of the
//!   unbudgeted rate on every preset (best-of-`reps` on both sides).
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 5; the best of
//! the repetitions is recorded). `--smoke` runs a single tiny preset once —
//! including both gates — and writes `BENCH_SMOKE.json`, which CI uploads as
//! a workflow artifact on every run.

use rsn_core::{AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, QueryBudget, QueryOutcome};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use std::time::{Duration, Instant};

const OUTPUT: &str = "BENCH_PR6.json";
const SMOKE_OUTPUT: &str = "BENCH_SMOKE.json";
/// Queries per serving workload (per preset).
const WORKLOAD_QUERIES: usize = 12;
/// Passes over the workload for each serving-rate measurement.
const SERVING_PASSES: usize = 50;
/// The acceptance ceiling on the armed-budget overhead.
const MAX_OVERHEAD_FRACTION: f64 = 0.05;

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
    t_scale: f64,
}

struct PresetRow {
    label: String,
    users: usize,
    road_vertices: usize,
    workload: usize,
    passes: usize,
    gtree_build_s: f64,
    engine_build_s: f64,
    /// Wall-clock of one full serving sweep, exact (unbudgeted) path.
    unbudgeted_s: f64,
    /// Wall-clock of the same sweep under the armed budget.
    armed_s: f64,
    /// Zero-deadline queries that degraded to `Partial` (must equal the
    /// workload size — every one, no panics).
    zero_deadline_partials: usize,
}

impl PresetRow {
    fn unbudgeted_qps(&self) -> f64 {
        (self.passes * self.workload) as f64 / self.unbudgeted_s.max(1e-12)
    }
    fn armed_qps(&self) -> f64 {
        (self.passes * self.workload) as f64 / self.armed_s.max(1e-12)
    }
    fn overhead_fraction(&self) -> f64 {
        self.armed_s / self.unbudgeted_s.max(1e-12) - 1.0
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// The PR-4 high-QPS serving workload: queries from ordinary *background*
/// users (outside the planted deep groups), varying |Q| and t; all Problem 2
/// through the exact global search so both serving paths take identical
/// algorithmic routes.
fn build_workload(dataset: &Dataset, spec: &Spec, queries: usize) -> Vec<MacQuery> {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, spec.sigma).expect("valid region");
    let grouped: std::collections::HashSet<u32> =
        dataset.deep_groups.iter().flatten().copied().collect();
    let background: Vec<u32> = (0..dataset.rsn.num_users() as u32)
        .filter(|v| !grouped.contains(v))
        .collect();
    (0..queries)
        .map(|i| {
            let q_len = 1 + i % 3;
            let q: Vec<u32> = (0..q_len)
                .map(|j| background[(i * 7 + j * 13 + 3) % background.len()])
                .collect();
            let t = dataset.default_t * spec.t_scale * [0.8, 1.0, 1.25][(i / 3) % 3];
            MacQuery::new(q, spec.k, t, region.clone()).with_algorithm(AlgorithmChoice::Global)
        })
        .collect()
}

/// An *armed* budget: finite limits far beyond any preset's real cost, so
/// the ticker polls on every stage but never trips. (`QueryBudget::unlimited`
/// would skip the polling entirely and measure nothing.)
fn armed_budget() -> QueryBudget {
    QueryBudget::new()
        .with_work_limit(u64::MAX)
        .with_deadline(Duration::from_secs(3600))
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

fn measure_preset(spec: &Spec, reps: usize, queries: usize) -> PresetRow {
    let dataset: Dataset = build_preset_scaled(
        spec.name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let workload = build_workload(&dataset, spec, queries);

    let (gtree_build_s, indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());
    let (engine_build_s, engine) = best_of(1, || MacEngine::build(indexed.clone()));

    // ---- Identity gate (untimed): armed-budget answers must be Complete
    // and cell-identical to the exact path, for every workload query.
    let mut session = engine.session();
    let budget = armed_budget();
    for (qi, query) in workload.iter().enumerate() {
        let exact = session
            .execute_non_contained(query)
            .expect("exact path serves");
        let outcome = session
            .execute_with_budget(query, &budget)
            .expect("armed path serves");
        let QueryOutcome::Complete(armed) = outcome else {
            panic!("query {qi}: the armed budget must never trip");
        };
        assert_results_identical(&format!("query {qi}"), &exact, &armed);
    }

    // ---- Degradation gate (untimed): a zero deadline returns Partial on
    // every query, never panics, never errors.
    let zero = QueryBudget::new().with_deadline(Duration::ZERO);
    let mut zero_deadline_partials = 0usize;
    for (qi, query) in workload.iter().enumerate() {
        match session
            .execute_with_budget(query, &zero)
            .expect("zero deadline is not an error")
        {
            QueryOutcome::Partial(_) => zero_deadline_partials += 1,
            QueryOutcome::Complete(_) => panic!("query {qi}: zero deadline cannot complete"),
        }
    }

    // ---- Serving rates: the same sweep, exact vs armed (best of reps).
    let (unbudgeted_s, _) = best_of(reps, || {
        for _ in 0..SERVING_PASSES {
            for query in &workload {
                session
                    .execute_non_contained(query)
                    .expect("exact serving works");
            }
        }
    });
    let (armed_s, _) = best_of(reps, || {
        for _ in 0..SERVING_PASSES {
            for query in &workload {
                let outcome = session
                    .execute_with_budget(query, &budget)
                    .expect("armed serving works");
                assert!(outcome.is_complete(), "armed budget tripped mid-benchmark");
                std::hint::black_box(outcome);
            }
        }
    });

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        workload: workload.len(),
        passes: SERVING_PASSES,
        gtree_build_s,
        engine_build_s,
        unbudgeted_s,
        armed_s,
        zero_deadline_partials,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"workload_queries\": {},\n",
            "      \"serving_passes\": {},\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"engine_build_seconds\": {:.6},\n",
            "      \"unbudgeted_sweep_seconds\": {:.6},\n",
            "      \"armed_budget_sweep_seconds\": {:.6},\n",
            "      \"unbudgeted_qps\": {:.1},\n",
            "      \"armed_budget_qps\": {:.1},\n",
            "      \"budget_overhead_fraction\": {:.4},\n",
            "      \"overhead_within_5_percent\": {},\n",
            "      \"results_identical_to_unbudgeted\": true,\n",
            "      \"zero_deadline_partials\": {}\n",
            "    }}"
        ),
        r.label,
        r.users,
        r.road_vertices,
        r.workload,
        r.passes,
        r.gtree_build_s,
        r.engine_build_s,
        r.unbudgeted_s,
        r.armed_s,
        r.unbudgeted_qps(),
        r.armed_qps(),
        r.overhead_fraction(),
        r.overhead_fraction() <= MAX_OVERHEAD_FRACTION,
        r.zero_deadline_partials,
    )
}

fn print_row(row: &PresetRow) {
    eprintln!(
        "  {} | exact {:.1} q/s vs armed {:.1} q/s -> overhead {:+.2}% | zero-deadline: {}/{} partial, 0 panics",
        row.label,
        row.unbudgeted_qps(),
        row.armed_qps(),
        row.overhead_fraction() * 100.0,
        row.zero_deadline_partials,
        row.workload,
    );
}

fn write_record(path: &str, description: &str, pr: u32, reps: usize, rows: &[PresetRow]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"description\": \"{description}\",\n  \"reps\": {reps},\n  \"available_cores\": {cores},\n  \"presets\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench record");
    println!("{json}");
    eprintln!("wrote {path}");
}

const DESCRIPTION: &str = "Perf trajectory for deadline-aware serving: the PR-4 serving \
workload executed unbudgeted (exact path) and under an armed QueryBudget (work limit + far \
deadline, amortized ticker polling active on every pipeline stage). Armed answers are asserted \
cell-identical to the exact path and a zero deadline is asserted to degrade every query to a \
Partial outcome without panicking before anything is timed; the armed sweep must stay within \
5% of the unbudgeted sweep on every preset";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: one tiny preset, one repetition. Both untimed gates
        // (identity + zero-deadline degradation) still run, so the budgeted
        // serving path cannot bit-rot silently; the small record is uploaded
        // as a CI artifact on every run.
        let spec = Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (smoke)",
            social_scale: 0.1,
            road_scale: 0.1,
            k: 8,
            sigma: 0.02,
            t_scale: 0.5,
        };
        let row = measure_preset(&spec, 1, 4);
        print_row(&row);
        write_record(
            SMOKE_OUTPUT,
            "CI smoke record of the budgeted serving path (tiny scale, 1 rep): \
             armed-budget identity and zero-deadline degradation gates exercised \
             end-to-end; timings are noise-scale and not comparable across runs",
            6,
            1,
            &[row],
        );
        println!("smoke ok");
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);

    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 12,
            sigma: 0.02,
            t_scale: 0.4,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 10,
            sigma: 0.02,
            t_scale: 0.4,
        },
        // Sparse-users-on-large-road regime: the range filter dominates the
        // query here, so this row stresses the polling inside the sweep/walk.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
            t_scale: 0.5,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, {} queries x {} passes, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            WORKLOAD_QUERIES,
            SERVING_PASSES,
        );
        let row = measure_preset(spec, reps, WORKLOAD_QUERIES);
        print_row(&row);
        assert!(
            row.overhead_fraction() <= MAX_OVERHEAD_FRACTION,
            "{}: armed-budget overhead {:.2}% exceeds the {:.0}% ceiling",
            row.label,
            row.overhead_fraction() * 100.0,
            MAX_OVERHEAD_FRACTION * 100.0
        );
        rows.push(row);
    }
    write_record(OUTPUT, DESCRIPTION, 6, reps, &rows);
}

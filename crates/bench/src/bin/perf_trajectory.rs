//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search algorithms on fixed datagen presets and writes
//! `BENCH_PR3.json` (in the current directory), so later PRs can diff their
//! wall-clock against this PR's numbers instead of guessing. The PR-3 record
//! focuses on the multi-seed range-filter work of this PR:
//!
//! * the Lemma-1 **range filter** under its four strategies — bounded
//!   Dijkstra sweep, per-user G-tree point queries, the PR-2 per-seed
//!   leaf-batched walk, and the new **multi-seed** batched walk (one pruned
//!   top-down pass for all query seeds, zero hash lookups in the leaf inner
//!   loops) — with the strategies asserted set-identical on every preset
//!   before their timings are recorded;
//! * the **measured sweep/batched crossover** on synthetic
//!   large-road/sparse-user configurations, which backs the calibrated
//!   `RangeFilterChoice::Auto` rule (`resolve_auto`); each crossover row
//!   records what `Auto` decided and which strategy actually won;
//! * serial vs parallel GS-NC (identical outputs, asserted), carried over
//!   from PR 2 for continuity.
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 3; the best of
//! the repetitions is recorded). `--smoke` runs a single tiny preset once and
//! writes nothing — a CI guard that keeps this binary from bit-rotting.

use rsn_core::ktcore::maximal_kt_core;
use rsn_core::{GlobalSearch, LocalSearch, MacQuery};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_road::gtree::GTree;
use rsn_road::network::Location;
use rsn_road::rangefilter::{resolve_auto, RangeFilter, RangeFilterChoice};
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR3.json";
/// Worker count for the parallel-GS measurement. Fixed (rather than
/// `available_parallelism`) so records from different machines stay
/// comparable; the achievable speedup is still bounded by the actual cores,
/// which the record lists alongside.
const GS_WORKERS: usize = 4;

struct PresetRow {
    label: String,
    users: usize,
    road_vertices: usize,
    k: u32,
    t: f64,
    sigma: f64,
    kt_core: usize,
    cells: usize,
    auto_choice: &'static str,
    gtree_build_s: f64,
    filter_dijkstra_s: f64,
    filter_gtree_point_s: f64,
    filter_gtree_batched_s: f64,
    filter_gtree_multiseed_s: f64,
    ktcore_multiseed_s: f64,
    gs_nc_serial_s: f64,
    gs_nc_parallel_s: f64,
    ls_nc_s: f64,
}

/// One sweep-vs-multiseed crossover measurement on a synthetic
/// large-road/sparse-user configuration (the regime the calibrated `Auto`
/// rule has to get right).
struct CrossoverRow {
    topology: &'static str,
    road_vertices: usize,
    users: usize,
    q: usize,
    t: f64,
    sweep_s: f64,
    multiseed_s: f64,
    auto_choice: &'static str,
    auto_correct: bool,
}

/// A corridor/highway-like road network: a long unit-weight path with a
/// shortcut every fifth vertex — the small-separator topology whose G-tree
/// border sets stay tiny at any size (mirrors the regression tests in
/// `rsn_road::rangefilter`).
fn corridor_road(n: u32) -> rsn_road::network::RoadNetwork {
    let mut edges: Vec<(u32, u32, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
    edges.extend((0..n.saturating_sub(5)).step_by(5).map(|i| (i, i + 5, 2.5)));
    rsn_road::network::RoadNetwork::from_edges(n as usize, &edges)
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
}

fn measure_preset(spec: &Spec, reps: usize) -> PresetRow {
    let (name, k, sigma) = (spec.name, spec.k, spec.sigma);
    let dataset: Dataset = build_preset_scaled(
        name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, sigma).expect("valid region");
    let query = MacQuery::new(dataset.query_vertices(4), k, dataset.default_t, region);
    let (gtree_build_s, rsn_indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());

    // Range-filter trajectory: the four strategies on the same inputs,
    // proven set-identical before their timings are recorded.
    let q_locations: Vec<Location> = query.q.iter().map(|&v| *rsn_indexed.location(v)).collect();
    let filter_of =
        |choice: RangeFilterChoice| rsn_indexed.range_filter(choice, q_locations.len(), query.t);
    let reference = filter_of(RangeFilterChoice::DijkstraSweep).users_within(
        rsn_indexed.road(),
        &q_locations,
        query.t,
        rsn_indexed.locations(),
    );
    for choice in [
        RangeFilterChoice::GTreePoint,
        RangeFilterChoice::GTreeLeafBatched,
        RangeFilterChoice::GTreeMultiSeedBatched,
    ] {
        let got = filter_of(choice).users_within(
            rsn_indexed.road(),
            &q_locations,
            query.t,
            rsn_indexed.locations(),
        );
        assert_eq!(got, reference, "{choice:?} disagrees with the sweep");
    }
    let auto_choice = resolve_auto(
        rsn_indexed.road(),
        rsn_indexed.gtree(),
        q_locations.len(),
        query.t,
        rsn_indexed.num_users(),
    )
    .name();
    let time_filter = |choice: RangeFilterChoice| {
        best_of(reps, || {
            filter_of(choice).users_within(
                rsn_indexed.road(),
                &q_locations,
                query.t,
                rsn_indexed.locations(),
            )
        })
        .0
    };
    let filter_dijkstra_s = time_filter(RangeFilterChoice::DijkstraSweep);
    let filter_gtree_point_s = time_filter(RangeFilterChoice::GTreePoint);
    let filter_gtree_batched_s = time_filter(RangeFilterChoice::GTreeLeafBatched);
    let filter_gtree_multiseed_s = time_filter(RangeFilterChoice::GTreeMultiSeedBatched);

    // End-to-end (k,t)-core extraction through the multi-seed filter.
    let (ktcore_multiseed_s, core) = best_of(reps, || {
        let q = query
            .clone()
            .with_range_filter(RangeFilterChoice::GTreeMultiSeedBatched);
        maximal_kt_core(&rsn_indexed, &q).expect("query valid")
    });

    // Global search: serial vs parallel over top-level cells, identical
    // output asserted.
    let (gs_nc_serial_s, gs) = best_of(reps, || {
        GlobalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("GS-NC runs")
    });
    let (gs_nc_parallel_s, gs_par) = best_of(reps, || {
        GlobalSearch::new(&dataset.rsn, &query)
            .with_parallelism(GS_WORKERS)
            .run_non_contained()
            .expect("parallel GS-NC runs")
    });
    assert_eq!(
        gs.cells.len(),
        gs_par.cells.len(),
        "parallel GS must report the same cells"
    );
    for (a, b) in gs.cells.iter().zip(&gs_par.cells) {
        assert_eq!(a.sample_weight, b.sample_weight);
        assert_eq!(a.communities.len(), b.communities.len());
    }

    let (ls_nc_s, _) = best_of(reps, || {
        LocalSearch::new(&dataset.rsn, &query)
            .run_non_contained()
            .expect("LS-NC runs")
    });

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        k,
        t: dataset.default_t,
        sigma,
        kt_core: core.map(|c| c.len()).unwrap_or(0),
        cells: gs.cells.len(),
        auto_choice,
        gtree_build_s,
        filter_dijkstra_s,
        filter_gtree_point_s,
        filter_gtree_batched_s,
        filter_gtree_multiseed_s,
        ktcore_multiseed_s,
        gs_nc_serial_s,
        gs_nc_parallel_s,
        ls_nc_s,
    }
}

/// Measures the sweep-vs-multiseed crossover on one synthetic configuration:
/// `users` random user locations on a prebuilt road network and G-tree, `q`
/// query locations, threshold `t`. Both strategies are asserted
/// set-identical before timing.
fn measure_crossover(
    topology: &'static str,
    net: &rsn_road::network::RoadNetwork,
    tree: &GTree,
    users: usize,
    q: usize,
    t: f64,
    reps: usize,
) -> CrossoverRow {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    let mut rng = StdRng::seed_from_u64(net.num_vertices() as u64 ^ 0xC0DE);
    let n = net.num_vertices() as u32;
    let user_locs: Vec<Location> = (0..users)
        .map(|_| Location::vertex(rng.random_range(0..n)))
        .collect();
    // Query locations clustered near one vertex's neighborhood, as MAC query
    // users are.
    let center = rng.random_range(0..n);
    let q_locs: Vec<Location> = (0..q)
        .map(|i| Location::vertex((center + i as u32 * 3) % n))
        .collect();
    let sweep = RangeFilter::DijkstraSweep;
    let multi = RangeFilter::GTreeMultiSeedBatched(tree);
    let reference = sweep.users_within(net, &q_locs, t, &user_locs);
    assert_eq!(
        multi.users_within(net, &q_locs, t, &user_locs),
        reference,
        "multi-seed disagrees with the sweep on the crossover config"
    );
    let (sweep_s, _) = best_of(reps, || sweep.users_within(net, &q_locs, t, &user_locs));
    let (multiseed_s, _) = best_of(reps, || multi.users_within(net, &q_locs, t, &user_locs));
    let auto = resolve_auto(net, Some(tree), q, t, users);
    let auto_correct = match auto {
        RangeFilterChoice::GTreeMultiSeedBatched => multiseed_s <= sweep_s,
        _ => sweep_s <= multiseed_s,
    };
    CrossoverRow {
        topology,
        road_vertices: net.num_vertices(),
        users,
        q,
        t,
        sweep_s,
        multiseed_s,
        auto_choice: auto.name(),
        auto_correct,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"k\": {},\n",
            "      \"t\": {},\n",
            "      \"sigma\": {},\n",
            "      \"kt_core_vertices\": {},\n",
            "      \"gs_cells\": {},\n",
            "      \"auto_choice\": \"{}\",\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"filter_dijkstra_seconds\": {:.6},\n",
            "      \"filter_gtree_point_seconds\": {:.6},\n",
            "      \"filter_gtree_batched_seconds\": {:.6},\n",
            "      \"filter_gtree_multiseed_seconds\": {:.6},\n",
            "      \"multiseed_vs_batched_speedup\": {:.3},\n",
            "      \"multiseed_vs_point_speedup\": {:.3},\n",
            "      \"multiseed_vs_dijkstra_speedup\": {:.3},\n",
            "      \"ktcore_multiseed_seconds\": {:.6},\n",
            "      \"gs_nc_serial_seconds\": {:.6},\n",
            "      \"gs_nc_parallel_seconds\": {:.6},\n",
            "      \"gs_parallel_speedup\": {:.3},\n",
            "      \"ls_nc_seconds\": {:.6}\n",
            "    }}"
        ),
        r.label,
        r.users,
        r.road_vertices,
        r.k,
        r.t,
        r.sigma,
        r.kt_core,
        r.cells,
        r.auto_choice,
        r.gtree_build_s,
        r.filter_dijkstra_s,
        r.filter_gtree_point_s,
        r.filter_gtree_batched_s,
        r.filter_gtree_multiseed_s,
        r.filter_gtree_batched_s / r.filter_gtree_multiseed_s.max(1e-12),
        r.filter_gtree_point_s / r.filter_gtree_multiseed_s.max(1e-12),
        r.filter_dijkstra_s / r.filter_gtree_multiseed_s.max(1e-12),
        r.ktcore_multiseed_s,
        r.gs_nc_serial_s,
        r.gs_nc_parallel_s,
        r.gs_nc_serial_s / r.gs_nc_parallel_s.max(1e-12),
        r.ls_nc_s,
    )
}

fn json_crossover(r: &CrossoverRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"topology\": \"{}\",\n",
            "      \"road_vertices\": {},\n",
            "      \"users\": {},\n",
            "      \"q\": {},\n",
            "      \"t\": {},\n",
            "      \"sweep_seconds\": {:.6},\n",
            "      \"multiseed_seconds\": {:.6},\n",
            "      \"multiseed_vs_sweep_speedup\": {:.3},\n",
            "      \"auto_choice\": \"{}\",\n",
            "      \"auto_correct\": {}\n",
            "    }}"
        ),
        r.topology,
        r.road_vertices,
        r.users,
        r.q,
        r.t,
        r.sweep_s,
        r.multiseed_s,
        r.sweep_s / r.multiseed_s.max(1e-12),
        r.auto_choice,
        r.auto_correct,
    )
}

fn print_row(row: &PresetRow) {
    eprintln!(
        "  kt-core {} | filter: dijkstra {:.5}s, gtree-point {:.5}s, gtree-batched {:.5}s, multi-seed {:.5}s ({:.1}x vs per-seed) | auto -> {} | GS-NC serial {:.4}s, parallel({GS_WORKERS}) {:.4}s ({:.2}x) | LS-NC {:.4}s",
        row.kt_core,
        row.filter_dijkstra_s,
        row.filter_gtree_point_s,
        row.filter_gtree_batched_s,
        row.filter_gtree_multiseed_s,
        row.filter_gtree_batched_s / row.filter_gtree_multiseed_s.max(1e-12),
        row.auto_choice,
        row.gs_nc_serial_s,
        row.gs_nc_parallel_s,
        row.gs_nc_serial_s / row.gs_nc_parallel_s.max(1e-12),
        row.ls_nc_s,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: one tiny preset, one repetition, no file output. Any
        // regression that breaks a measured code path fails this run.
        let spec = Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (smoke)",
            social_scale: 0.1,
            road_scale: 0.1,
            k: 8,
            sigma: 0.02,
        };
        let row = measure_preset(&spec, 1);
        print_row(&row);
        let net = generate_road(&RoadConfig::with_size(2_500, 23));
        let tree = GTree::build(&net);
        let cross = measure_crossover("grid", &net, &tree, 64, 2, 100.0, 1);
        eprintln!(
            "  crossover smoke: sweep {:.5}s vs multi-seed {:.5}s, auto -> {}",
            cross.sweep_s, cross.multiseed_s, cross.auto_choice
        );
        println!("smoke ok: {}", row.label);
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 8,
            sigma: 0.05,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 0.15,
            k: 6,
            sigma: 0.05,
        },
        // Sparse-users-on-large-road regime, closest we get to the paper's
        // continent-scale setting for the G-tree filter comparison.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, sigma={}, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            spec.sigma
        );
        let row = measure_preset(spec, reps);
        print_row(&row);
        rows.push(row);
    }

    // Sweep-vs-multiseed crossover surface: the sweep's cost is the radius-t
    // ball regardless of user count, while the indexed walk scales with
    // occupancy and with the size of the border sets along the hierarchy.
    // Grid-like networks (√n cuts) keep the sweep ahead at every generatable
    // scale; corridor/highway-like networks (tiny separators) cross over as
    // soon as the ball is large. Both topologies are measured and the rows
    // back the `resolve_auto` calibration. One network and G-tree per
    // config group, reused across rows.
    eprintln!("measuring sweep/multi-seed crossover (reps={reps})...");
    let mut crossovers = Vec::new();
    let run_group = |label: &'static str,
                     net: &rsn_road::network::RoadNetwork,
                     configs: &[(usize, usize, f64)],
                     crossovers: &mut Vec<CrossoverRow>| {
        let build_start = Instant::now();
        let tree = GTree::build(net);
        eprintln!(
            "  [{label}] built G-tree over {} vertices in {:.2}s",
            net.num_vertices(),
            build_start.elapsed().as_secs_f64()
        );
        for &(users, q, t) in configs {
            let row = measure_crossover(label, net, &tree, users, q, t, reps);
            eprintln!(
                "  [{label}] n={} users={} q={} t={}: sweep {:.5}s vs multi-seed {:.5}s ({:.2}x), auto -> {} ({})",
                row.road_vertices,
                row.users,
                row.q,
                row.t,
                row.sweep_s,
                row.multiseed_s,
                row.sweep_s / row.multiseed_s.max(1e-12),
                row.auto_choice,
                if row.auto_correct { "correct" } else { "WRONG" },
            );
            crossovers.push(row);
        }
    };
    for (road_n, configs) in [
        (
            2_500usize,
            &[(256usize, 4usize, 30.0f64), (16, 4, 60.0)][..],
        ),
        (10_000, &[(64, 4, 100.0), (8, 4, 130.0)][..]),
    ] {
        let net = generate_road(&RoadConfig::with_size(road_n, 23));
        run_group("grid", &net, configs, &mut crossovers);
    }
    let net = corridor_road(50_000);
    run_group(
        "corridor",
        &net,
        &[
            (64, 4, 50.0),
            (64, 4, 25_000.0),
            (8, 4, 25_000.0),
            (512, 4, 25_000.0),
        ],
        &mut crossovers,
    );

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let cross_body: Vec<String> = crossovers.iter().map(json_crossover).collect();
    let json = format!(
        "{{\n  \"pr\": 3,\n  \"description\": \"Perf trajectory after the multi-seed leaf-batched range filter (per-seed entry columns, precomputed border indices, zero hashing in the hot loops) and the calibrated Auto strategy selection; all four filter strategies asserted set-identical, parallel GS asserted output-identical\",\n  \"reps\": {reps},\n  \"gs_parallel_workers\": {GS_WORKERS},\n  \"available_cores\": {cores},\n  \"presets\": [\n{}\n  ],\n  \"sweep_multiseed_crossover\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
        cross_body.join(",\n")
    );
    std::fs::write(OUTPUT, &json).expect("write BENCH_PR3.json");
    println!("{json}");
    eprintln!("wrote {OUTPUT}");
}

//! Cross-PR performance trajectory recorder.
//!
//! Runs the MAC search on fixed datagen presets and writes `BENCH_PR4.json`
//! (in the current directory), so later PRs can diff their wall-clock against
//! this PR's numbers instead of guessing. The PR-4 record focuses on the
//! prepared-engine serving API of this PR:
//!
//! * **Engine throughput** — a fixed workload of varying queries (different
//!   query groups, |Q|, k, t) executed three ways, with the results asserted
//!   identical first: per-query construction (the legacy
//!   `GlobalSearch::new(..).run()` one-shot path, fresh scratch every
//!   query), one **reused session** (`MacEngine::session()` +
//!   `execute_batch`, scratch reused across the workload), and **N threads
//!   sharing one cloned engine** (one session per thread, each running the
//!   full workload).
//! * **Measured calibration** — what the engine's build-time probe measured
//!   (`sweep_cell_cost`, probe timings) on each preset's network.
//!
//! The PR-3 range-filter strategy and sweep/batched crossover measurements
//! remain on record in `BENCH_PR3.json`; the strategies themselves are still
//! pinned set-identical by the test suite.
//!
//! Usage: `cargo run --release -p rsn-bench --bin perf_trajectory [reps]`
//! (`reps` overrides the per-measurement repetitions, default 3; the best of
//! the repetitions is recorded). `--smoke` runs a single tiny preset once and
//! writes nothing — a CI guard that keeps this binary from bit-rotting.

use rsn_core::{AlgorithmChoice, GlobalSearch, MacEngine, MacQuery, MacSearchResult};
use rsn_datagen::presets::{build_preset_scaled, Dataset, PresetName, PresetScale};
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use std::time::Instant;

const OUTPUT: &str = "BENCH_PR4.json";
/// Threads for the engine-sharing measurement. Fixed (rather than
/// `available_parallelism`) so records from different machines stay
/// comparable; the achievable scaling is still bounded by the actual cores,
/// which the record lists alongside.
const SHARING_THREADS: usize = 4;
/// Queries per workload (per preset).
const WORKLOAD_QUERIES: usize = 12;
/// Passes over the workload per timed repetition: the serving queries are
/// microsecond-scale, so a repetition must aggregate enough passes to rise
/// above scheduler/timer noise (~tens of milliseconds per repetition).
const WORKLOAD_PASSES: usize = 200;

struct PresetRow {
    label: String,
    users: usize,
    road_vertices: usize,
    k: u32,
    t: f64,
    sigma: f64,
    kt_core: usize,
    workload: usize,
    gtree_build_s: f64,
    engine_build_s: f64,
    calibration_measured: bool,
    sweep_cell_cost: f64,
    /// Seconds for ONE pass over the workload (best over reps, each rep
    /// averaging WORKLOAD_PASSES passes).
    oneshot_total_s: f64,
    session_total_s: f64,
    threads_total_s: f64,
    /// The result-bearing analytic query, for context (identical work in
    /// both paths).
    analytic_oneshot_s: f64,
    analytic_session_s: f64,
}

impl PresetRow {
    fn oneshot_qps(&self) -> f64 {
        self.workload as f64 / self.oneshot_total_s.max(1e-12)
    }
    fn session_qps(&self) -> f64 {
        self.workload as f64 / self.session_total_s.max(1e-12)
    }
    fn threads_qps(&self) -> f64 {
        (self.workload * SHARING_THREADS) as f64 / self.threads_total_s.max(1e-12)
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Spec {
    name: PresetName,
    label_suffix: &'static str,
    social_scale: f64,
    road_scale: f64,
    k: u32,
    sigma: f64,
    /// Multiplier on the dataset's default query-distance threshold: below
    /// 1.0 the workload is high-selectivity (small radius-t balls, small
    /// (k,t)-cores), the regime an online service mostly runs in.
    t_scale: f64,
}

/// A deterministic high-QPS serving workload: queries from ordinary
/// *background* users (outside the planted deep groups), varying |Q| and t.
/// Most return small or empty answers quickly — the regime an online service
/// spends most of its time in, and the one where per-query construction
/// overhead (fresh Dijkstra fields, the |Q| x |V| sweep matrix, id maps) is
/// a visible fraction of the query. All Problem 2 through the exact global
/// search so the one-shot baseline is well-defined.
fn build_workload(dataset: &Dataset, spec: &Spec, queries: usize) -> Vec<MacQuery> {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, spec.sigma).expect("valid region");
    let grouped: std::collections::HashSet<u32> =
        dataset.deep_groups.iter().flatten().copied().collect();
    let background: Vec<u32> = (0..dataset.rsn.num_users() as u32)
        .filter(|v| !grouped.contains(v))
        .collect();
    (0..queries)
        .map(|i| {
            // |Q| in {1, 2, 3}: single-user queries always pass the mutual
            // Lemma-1 check and exercise the full filter + core-decomposition
            // path; multi-user queries from scattered background users mostly
            // reject early — together the mix an online service sees.
            let q_len = 1 + i % 3;
            let q: Vec<u32> = (0..q_len)
                .map(|j| background[(i * 7 + j * 13 + 3) % background.len()])
                .collect();
            let t = dataset.default_t * spec.t_scale * [0.8, 1.0, 1.25][(i / 3) % 3];
            MacQuery::new(q, spec.k, t, region.clone()).with_algorithm(AlgorithmChoice::Global)
        })
        .collect()
}

/// The result-bearing analytic query of a preset: the co-located planted
/// group members the PR-1..3 records queried. Its cost is dominated by the
/// context build and the GS exploration — identical work in both execution
/// paths — so it is recorded for context but kept out of the throughput
/// comparison.
fn analytic_query(dataset: &Dataset, spec: &Spec) -> MacQuery {
    let center = WeightVector::uniform(3).expect("d = 3");
    let region = PrefRegion::around(&center, spec.sigma).expect("valid region");
    let q: Vec<u32> = dataset.deep_groups[0].iter().copied().take(4).collect();
    MacQuery::new(q, spec.k, dataset.default_t * spec.t_scale, region)
        .with_algorithm(AlgorithmChoice::Global)
}

fn assert_results_identical(label: &str, a: &MacSearchResult, b: &MacSearchResult) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell count diverged");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.sample_weight, cb.sample_weight, "{label}: sample weight");
        assert_eq!(
            ca.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            cb.communities
                .iter()
                .map(|c| &c.vertices)
                .collect::<Vec<_>>(),
            "{label}: communities"
        );
    }
}

fn measure_preset(spec: &Spec, reps: usize, queries: usize) -> PresetRow {
    let dataset: Dataset = build_preset_scaled(
        spec.name,
        PresetScale {
            social: spec.social_scale,
            road: spec.road_scale,
        },
        11,
    );
    let workload = build_workload(&dataset, spec, queries);
    let analytic = analytic_query(&dataset, spec);

    // Index once (shared by both execution paths), then prepare the engine:
    // target grouping + the measured calibration probe happen in the build.
    let (gtree_build_s, indexed) = best_of(1, || dataset.rsn.clone().with_gtree_index());
    let (engine_build_s, engine) = best_of(1, || MacEngine::build(indexed.clone()));

    // Correctness gate before any timing: the reused session must return
    // results identical to fresh per-query construction on every workload
    // query (and on the analytic query).
    let mut session = engine.session();
    let mut kt_core = 0usize;
    for (i, query) in workload
        .iter()
        .chain(std::iter::once(&analytic))
        .enumerate()
    {
        let fresh = GlobalSearch::new(&indexed, query)
            .run_non_contained()
            .expect("one-shot GS-NC runs");
        let served = session
            .execute_non_contained(query)
            .expect("session execution runs");
        assert_results_identical(&format!("query {i}"), &fresh, &served);
        kt_core = kt_core.max(served.stats.kt_core_vertices);
    }

    // Per-query construction: the legacy one-shot wrappers, fresh scratch
    // per query. Each rep averages WORKLOAD_PASSES passes (single passes
    // are microsecond-scale); reported seconds are for one pass.
    let (oneshot_total_s, _) = best_of(reps, || {
        for _ in 0..WORKLOAD_PASSES {
            for query in &workload {
                let _ = GlobalSearch::new(&indexed, query)
                    .run_non_contained()
                    .expect("one-shot GS-NC runs");
            }
        }
    });
    let oneshot_total_s = oneshot_total_s / WORKLOAD_PASSES as f64;

    // Reused session: batches through session-held scratch.
    let (session_total_s, _) = best_of(reps, || {
        for _ in 0..WORKLOAD_PASSES {
            let outcome = session.execute_batch(&workload).expect("batch runs");
            assert_eq!(outcome.stats.queries, workload.len());
        }
    });
    let session_total_s = session_total_s / WORKLOAD_PASSES as f64;

    // N threads sharing one cloned engine, one session per thread, each
    // running the full workload (total work = N x workload x passes).
    let (threads_total_s, _) = best_of(reps, || {
        std::thread::scope(|scope| {
            for _ in 0..SHARING_THREADS {
                let engine = engine.clone();
                let workload = &workload;
                scope.spawn(move || {
                    let mut session = engine.session();
                    for _ in 0..WORKLOAD_PASSES {
                        for query in workload {
                            let _ = session
                                .execute_non_contained(query)
                                .expect("threaded execution runs");
                        }
                    }
                });
            }
        });
    });
    let threads_total_s = threads_total_s / WORKLOAD_PASSES as f64;

    // The analytic query, once per path, for context.
    let (analytic_oneshot_s, _) = best_of(reps, || {
        GlobalSearch::new(&indexed, &analytic)
            .run_non_contained()
            .expect("one-shot analytic query runs")
    });
    let (analytic_session_s, _) = best_of(reps, || {
        session
            .execute_non_contained(&analytic)
            .expect("session analytic query runs")
    });

    PresetRow {
        label: format!("{}{}", dataset.name.label(), spec.label_suffix),
        users: dataset.rsn.num_users(),
        road_vertices: dataset.rsn.road().num_vertices(),
        k: spec.k,
        t: dataset.default_t,
        sigma: spec.sigma,
        kt_core,
        workload: workload.len(),
        gtree_build_s,
        engine_build_s,
        calibration_measured: engine.calibration().is_measured(),
        sweep_cell_cost: engine.calibration().filter.sweep_cell_cost,
        oneshot_total_s,
        session_total_s,
        threads_total_s,
        analytic_oneshot_s,
        analytic_session_s,
    }
}

fn json_row(r: &PresetRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"preset\": \"{}\",\n",
            "      \"users\": {},\n",
            "      \"road_vertices\": {},\n",
            "      \"k\": {},\n",
            "      \"t\": {},\n",
            "      \"sigma\": {},\n",
            "      \"kt_core_vertices\": {},\n",
            "      \"workload_queries\": {},\n",
            "      \"gtree_build_seconds\": {:.6},\n",
            "      \"engine_build_seconds\": {:.6},\n",
            "      \"calibration_measured\": {},\n",
            "      \"calibrated_sweep_cell_cost\": {:.3},\n",
            "      \"per_query_construction_seconds\": {:.6},\n",
            "      \"reused_session_seconds\": {:.6},\n",
            "      \"per_query_construction_qps\": {:.1},\n",
            "      \"reused_session_qps\": {:.1},\n",
            "      \"reused_session_speedup\": {:.3},\n",
            "      \"shared_engine_threads\": {},\n",
            "      \"shared_engine_total_seconds\": {:.6},\n",
            "      \"shared_engine_qps\": {:.1},\n",
            "      \"thread_scaling\": {:.3},\n",
            "      \"analytic_query_per_query_construction_seconds\": {:.6},\n",
            "      \"analytic_query_reused_session_seconds\": {:.6}\n",
            "    }}"
        ),
        r.label,
        r.users,
        r.road_vertices,
        r.k,
        r.t,
        r.sigma,
        r.kt_core,
        r.workload,
        r.gtree_build_s,
        r.engine_build_s,
        r.calibration_measured,
        r.sweep_cell_cost,
        r.oneshot_total_s,
        r.session_total_s,
        r.oneshot_qps(),
        r.session_qps(),
        r.session_qps() / r.oneshot_qps().max(1e-12),
        SHARING_THREADS,
        r.threads_total_s,
        r.threads_qps(),
        r.threads_qps() / r.session_qps().max(1e-12),
        r.analytic_oneshot_s,
        r.analytic_session_s,
    )
}

fn print_row(row: &PresetRow) {
    eprintln!(
        "  kt-core {} | engine build {:.4}s (calibrated sweep_cell_cost {:.1}{}) | per-query {:.1} q/s vs reused session {:.1} q/s ({:.2}x) | {SHARING_THREADS} threads sharing the engine: {:.1} q/s ({:.2}x of one session)",
        row.kt_core,
        row.engine_build_s,
        row.sweep_cell_cost,
        if row.calibration_measured {
            ", measured"
        } else {
            ", analytic"
        },
        row.oneshot_qps(),
        row.session_qps(),
        row.session_qps() / row.oneshot_qps().max(1e-12),
        row.threads_qps(),
        row.threads_qps() / row.session_qps().max(1e-12),
    );
    eprintln!(
        "    analytic group query: per-query {:.4}s vs session {:.4}s (same algorithmic work, recorded for context)",
        row.analytic_oneshot_s, row.analytic_session_s,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        // CI guard: one tiny preset, a short workload, one repetition, no
        // file output. The equivalence gate inside measure_preset still runs,
        // so any regression that breaks a measured code path fails this run.
        let spec = Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (smoke)",
            social_scale: 0.1,
            road_scale: 0.1,
            k: 8,
            sigma: 0.02,
            t_scale: 0.5,
        };
        let row = measure_preset(&spec, 1, 4);
        print_row(&row);
        println!("smoke ok: {}", row.label);
        return;
    }
    let reps: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Serving workloads: ks chosen so the (k,t)-cores stay moderate and a
    // query costs milliseconds — the regime a query service actually runs
    // in, where the per-query construction overhead (fresh Dijkstra fields,
    // the |Q| x |V| sweep matrix, id maps) is a visible fraction of the
    // query and the reused session's steady-state reuse pays off.
    let specs = [
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 12,
            sigma: 0.02,
            t_scale: 0.4,
        },
        Spec {
            name: PresetName::FlLastfm,
            label_suffix: "",
            social_scale: 0.15,
            road_scale: 2.0,
            k: 10,
            sigma: 0.02,
            t_scale: 0.4,
        },
        // Sparse-users-on-large-road regime: the range filter dominates the
        // per-query cost here, so this row shows the steady-state win of
        // session-held filter scratch most directly.
        Spec {
            name: PresetName::SfSlashdot,
            label_suffix: " (road-heavy)",
            social_scale: 0.1,
            road_scale: 4.0,
            k: 8,
            sigma: 0.03,
            t_scale: 0.5,
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!(
            "measuring {}{} (k={}, sigma={}, workload={WORKLOAD_QUERIES}, reps={reps})...",
            spec.name.label(),
            spec.label_suffix,
            spec.k,
            spec.sigma
        );
        let row = measure_preset(spec, reps, WORKLOAD_QUERIES);
        print_row(&row);
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"description\": \"Perf trajectory after the MacEngine/QuerySession serving API: per-network engine preparation (Arc-shared network, pre-grouped G-tree user targets, measured Auto calibration probe) with per-thread sessions holding all reusable scratch; workload results asserted identical between per-query construction and the reused session before timing\",\n  \"reps\": {reps},\n  \"workload_queries\": {WORKLOAD_QUERIES},\n  \"shared_engine_threads\": {SHARING_THREADS},\n  \"available_cores\": {cores},\n  \"presets\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(OUTPUT, &json).expect("write BENCH_PR4.json");
    println!("{json}");
    eprintln!("wrote {OUTPUT}");
}

//! Reference re-implementation of the global search as it looked **before**
//! the undo-log refactor: a BFS worklist whose branches each clone the whole
//! `SubgraphView` and deletion history.
//!
//! Kept for two jobs:
//!
//! 1. `tests/global_rollback_equivalence.rs` pins the refactored
//!    `GlobalSearch` against this replica — identical cells, sample weights,
//!    and communities on datagen presets.
//! 2. `bin/perf_trajectory.rs` measures it as the pre-refactor baseline, so
//!    the recorded speedup is a real measurement rather than a guess.
//!
//! The replica is faithful to the old code path including its memory layout:
//! scores read nested `Vec<Vec<f64>>` attribute rows, not the flat matrix.

use rsn_core::SearchContext;
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::arrange;
use rsn_geom::weights::score_reduced;
use rsn_graph::subgraph::SubgraphView;
use std::collections::{HashMap, HashSet, VecDeque};

/// One reported cell: the sub-partition, its sample weight, and the
/// non-contained MAC's local vertex ids (sorted).
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyCell {
    /// Sub-partition of `R`.
    pub cell: Cell,
    /// Representative reduced weight vector.
    pub sample_weight: Vec<f64>,
    /// Local ids of the non-contained MAC.
    pub community: Vec<u32>,
}

struct State<'g> {
    view: SubgraphView<'g>,
    cell: Cell,
    deletion_groups: Vec<Vec<u32>>,
    settled_leaves: Vec<u32>,
}

/// Runs the clone-per-branch GS-NC on a prepared context.
///
/// With `lp_cells = true` the cell geometry also runs on the dense-LP path
/// (the full pre-refactor configuration); with `false` only the branch
/// management differs from the current `GlobalSearch`, which is what the
/// output-equivalence test isolates.
pub fn legacy_gs_nc(ctx: &SearchContext<'_>, lp_cells: bool) -> Vec<LegacyCell> {
    let k = ctx.query.k;
    let q = ctx.local_q.clone();
    let attrs: Vec<Vec<f64>> = ctx.attrs.to_rows();
    let score = |v: u32, w: &[f64]| score_reduced(&attrs[v as usize], w);

    let mut hs_cache: HashMap<(u32, u32), HalfSpace> = HashMap::new();
    let mut out: Vec<LegacyCell> = Vec::new();
    let mut worklist: VecDeque<State<'_>> = VecDeque::new();
    let base_cell = if lp_cells {
        Cell::from_region(&ctx.query.region).disable_vertex_cache()
    } else {
        Cell::from_region(&ctx.query.region)
    };
    worklist.push_back(State {
        view: SubgraphView::full(&ctx.local_graph),
        cell: base_cell,
        deletion_groups: Vec::new(),
        settled_leaves: Vec::new(),
    });

    let mut peak_bytes = 0usize;
    while let Some(state) = worklist.pop_front() {
        // The pre-refactor loop swept the entire worklist on every pop to
        // track peak live memory; replicated here for timing fidelity.
        let live_bytes: usize = worklist
            .iter()
            .chain(std::iter::once(&state))
            .map(|s| s.view.alive_mask().len() * 5 + s.cell.memory_bytes())
            .sum();
        peak_bytes = peak_bytes.max(live_bytes);

        let leaves: Vec<u32> = ctx
            .gd
            .leaves_within(state.view.alive_mask())
            .into_iter()
            .map(|v| v as u32)
            .collect();

        let settled: HashSet<u32> = state.settled_leaves.iter().copied().collect();
        let mut hps: Vec<HalfSpace> = Vec::new();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i + 1) {
                if settled.contains(&a) && settled.contains(&b) {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                let hs = hs_cache.entry(key).or_insert_with(|| {
                    HalfSpace::score_at_least(&attrs[key.0 as usize], &attrs[key.1 as usize])
                });
                hps.push(hs.clone());
            }
        }

        for sub_cell in arrange(&state.cell, &hps) {
            let Some(w) = sub_cell.sample_point() else {
                continue;
            };
            let u = leaves
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    score(a, &w)
                        .total_cmp(&score(b, &w))
                        .then_with(|| a.cmp(&b))
                })
                .expect("non-empty leaf set");

            if q.contains(&u) {
                out.push(report(&state, sub_cell, w));
                continue;
            }
            // Tentative deletion on a branch-local copy — the allocation
            // pattern this replica exists to preserve.
            let mut view = state.view.clone();
            let mut record = view.delete_cascade(u, k);
            let mut ok = q.iter().all(|&qv| view.is_alive(qv));
            if ok {
                record.merge(view.retain_component_of(q[0]));
                ok = q.iter().all(|&qv| view.is_alive(qv));
            }
            if !ok {
                out.push(report(&state, sub_cell, w));
                continue;
            }
            let mut deletion_groups = state.deletion_groups.clone();
            deletion_groups.push(record.removed.clone());
            worklist.push_back(State {
                view,
                cell: sub_cell,
                deletion_groups,
                settled_leaves: leaves.clone(),
            });
        }
    }
    std::hint::black_box(peak_bytes);
    out
}

fn report(state: &State<'_>, cell: Cell, sample_weight: Vec<f64>) -> LegacyCell {
    let mut community = state.view.alive_vertices();
    community.sort_unstable();
    LegacyCell {
        cell,
        sample_weight,
        community,
    }
}

//! # rsn-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation section (see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! The harness binaries in `src/bin/` print the same rows/series the paper
//! reports; the Criterion benches in `benches/` give statistically robust
//! timings for the core building blocks. Dataset sizes default to a laptop
//! scale (a fraction of the paper's server-scale datasets); the shapes —
//! which algorithm wins, by roughly what factor, and how costs scale in each
//! parameter — are the reproduction target, not absolute seconds.

pub mod legacy;
pub mod params;
pub mod runner;

pub use params::{ParamSpace, SweepValues};
pub use runner::{measure_all, AlgoTimings, QuerySpec};

//! The parameter space of Table III, scaled to the laptop-sized datasets.

/// Values swept for one parameter; the default is marked by `default_index`.
#[derive(Debug, Clone)]
pub struct SweepValues<T> {
    /// The tested values (Table III row).
    pub values: Vec<T>,
    /// Index of the default value (bold in Table III).
    pub default_index: usize,
}

impl<T: Clone> SweepValues<T> {
    /// The default value.
    pub fn default_value(&self) -> T {
        self.values[self.default_index].clone()
    }
}

/// The full parameter space of Table III.
///
/// `k`, `d`, `|Q|`, `j` and `σ` use the paper's values verbatim; the query
/// distance `t` is expressed as a fraction of the road-network scale because
/// our synthetic road networks have different absolute edge costs than SF/FL.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// Structural cohesiveness k.
    pub k: SweepValues<u32>,
    /// Query-distance thresholds (absolute, per dataset).
    pub t: SweepValues<f64>,
    /// Attribute dimensionality d.
    pub d: SweepValues<usize>,
    /// Number of query users |Q|.
    pub q_size: SweepValues<usize>,
    /// Top-j parameter.
    pub j: SweepValues<usize>,
    /// Region side length σ as a fraction of the axis.
    pub sigma: SweepValues<f64>,
}

impl ParamSpace {
    /// The Table III parameter space, with `t` derived from a dataset's
    /// default query-distance threshold.
    pub fn paper(default_t: f64) -> Self {
        ParamSpace {
            k: SweepValues {
                values: vec![4, 8, 16, 32, 64],
                default_index: 2,
            },
            t: SweepValues {
                values: vec![
                    default_t * 0.6,
                    default_t * 0.8,
                    default_t,
                    default_t * 1.2,
                    default_t * 1.4,
                ],
                default_index: 2,
            },
            d: SweepValues {
                values: vec![2, 3, 4, 5, 6],
                default_index: 1,
            },
            q_size: SweepValues {
                values: vec![1, 4, 8, 16, 32],
                default_index: 2,
            },
            j: SweepValues {
                values: vec![5, 10, 20, 40, 60],
                default_index: 1,
            },
            sigma: SweepValues {
                values: vec![0.001, 0.005, 0.01, 0.05, 0.10],
                default_index: 2,
            },
        }
    }

    /// A reduced parameter space for quick smoke runs (3 values per axis).
    pub fn quick(default_t: f64) -> Self {
        let full = Self::paper(default_t);
        fn shrink<T: Clone>(s: &SweepValues<T>) -> SweepValues<T> {
            SweepValues {
                values: vec![
                    s.values[0].clone(),
                    s.values[s.default_index].clone(),
                    s.values[s.values.len() - 1].clone(),
                ],
                default_index: 1,
            }
        }
        ParamSpace {
            k: shrink(&full.k),
            t: shrink(&full.t),
            d: shrink(&full.d),
            q_size: shrink(&full.q_size),
            j: shrink(&full.j),
            sigma: shrink(&full.sigma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_matches_table_3() {
        let p = ParamSpace::paper(1000.0);
        assert_eq!(p.k.values, vec![4, 8, 16, 32, 64]);
        assert_eq!(p.k.default_value(), 16);
        assert_eq!(p.d.values, vec![2, 3, 4, 5, 6]);
        assert_eq!(p.d.default_value(), 3);
        assert_eq!(p.q_size.default_value(), 8);
        assert_eq!(p.j.default_value(), 10);
        assert!((p.sigma.default_value() - 0.01).abs() < 1e-12);
        assert!((p.t.default_value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn quick_space_keeps_defaults() {
        let q = ParamSpace::quick(100.0);
        assert_eq!(q.k.values.len(), 3);
        assert_eq!(q.k.default_value(), 16);
        assert_eq!(q.d.default_value(), 3);
    }
}

//! Shared query-execution helpers for the harness binaries.

use rsn_core::{AlgorithmChoice, MacEngine, MacQuery, MacSearchResult, RoadSocialNetwork};
use rsn_datagen::attrs::{generate_attrs, AttrDistribution};
use rsn_datagen::presets::Dataset;
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_graph::graph::VertexId;

/// One concrete MAC query configuration derived from the sweep parameters.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query users.
    pub q: Vec<VertexId>,
    /// Coreness threshold.
    pub k: u32,
    /// Query-distance threshold.
    pub t: f64,
    /// Top-j parameter.
    pub j: usize,
    /// Region side length (fraction of each axis).
    pub sigma: f64,
    /// Attribute dimensionality (the dataset is re-attributed when this
    /// differs from its native dimensionality).
    pub d: usize,
}

impl QuerySpec {
    /// The default query of a dataset under a parameter space's defaults.
    pub fn defaults(dataset: &Dataset, k: u32, t: f64, j: usize, sigma: f64, d: usize) -> Self {
        QuerySpec {
            q: dataset.query_vertices(8),
            k,
            t,
            j,
            sigma,
            d,
        }
    }

    /// Builds the region `R`: a hypercube of side `sigma` centred on the
    /// uniform weight vector (the paper samples random hypercubes; a centred
    /// one keeps runs deterministic).
    pub fn region(&self) -> PrefRegion {
        let center = WeightVector::uniform(self.d).expect("d >= 1");
        PrefRegion::around(&center, self.sigma).expect("valid region")
    }

    /// Builds the [`MacQuery`].
    pub fn to_query(&self) -> MacQuery {
        MacQuery::new(self.q.clone(), self.k, self.t, self.region()).with_top_j(self.j)
    }
}

/// Wall-clock timings (seconds) of the four MAC algorithms on one query.
#[derive(Debug, Clone, Default)]
pub struct AlgoTimings {
    /// Global search, Problem 2.
    pub gs_nc: f64,
    /// Global search, Problem 1 (top-j).
    pub gs_t: f64,
    /// Local search, Problem 2.
    pub ls_nc: f64,
    /// Local search, Problem 1 (top-j).
    pub ls_t: f64,
    /// Number of distinct non-contained MACs found by GS-NC.
    pub gs_nc_communities: usize,
    /// Number of distinct non-contained MACs found by LS-NC.
    pub ls_nc_communities: usize,
    /// Number of partitions of `R` produced by GS-NC.
    pub gs_partitions: usize,
    /// Size of the maximal (k,t)-core.
    pub kt_core_size: usize,
    /// Approximate memory of GS-NC (bytes).
    pub gs_memory: usize,
    /// Approximate memory of LS-NC (bytes).
    pub ls_memory: usize,
}

/// Re-attributes a dataset's network for a different dimensionality `d`
/// (used by the d sweep; the attribute regime of the preset is preserved).
pub fn with_dimensionality(dataset: &Dataset, d: usize) -> RoadSocialNetwork {
    let rsn = &dataset.rsn;
    if rsn.attribute_dim() == d {
        return rsn.clone();
    }
    let attrs = generate_attrs(
        rsn.num_users(),
        d,
        dataset.attr_distribution,
        10.0,
        0xD1A ^ d as u64,
    );
    RoadSocialNetwork::new(
        rsn.social().clone(),
        rsn.road().clone(),
        rsn.locations().to_vec(),
        attrs,
    )
    .expect("re-attributed network is consistent")
}

/// Re-attributes with an explicit distribution (used by the comparison runs).
pub fn with_attrs(dataset: &Dataset, d: usize, dist: AttrDistribution) -> RoadSocialNetwork {
    let rsn = &dataset.rsn;
    let attrs = generate_attrs(rsn.num_users(), d, dist, 10.0, 0xA77 ^ d as u64);
    RoadSocialNetwork::new(
        rsn.social().clone(),
        rsn.road().clone(),
        rsn.locations().to_vec(),
        attrs,
    )
    .expect("re-attributed network is consistent")
}

/// Runs all four MAC algorithms for one spec through a prepared engine and
/// returns their timings (the engine build itself is not timed — it is the
/// once-per-network preparation the serving model amortizes away).
pub fn measure_all(rsn: &RoadSocialNetwork, spec: &QuerySpec) -> AlgoTimings {
    let engine = MacEngine::build_uncalibrated(rsn.clone());
    let mut session = engine.session();
    let global = spec.to_query().with_algorithm(AlgorithmChoice::Global);
    let local = spec.to_query().with_algorithm(AlgorithmChoice::Local);
    let gs_nc: MacSearchResult = session
        .execute_non_contained(&global)
        .unwrap_or_else(|e| panic!("GS-NC failed: {e}"));
    let gs_t = session
        .execute_top_j(&global)
        .unwrap_or_else(|e| panic!("GS-T failed: {e}"));
    let ls_nc = session
        .execute_non_contained(&local)
        .unwrap_or_else(|e| panic!("LS-NC failed: {e}"));
    let ls_t = session
        .execute_top_j(&local)
        .unwrap_or_else(|e| panic!("LS-T failed: {e}"));
    AlgoTimings {
        gs_nc: gs_nc.stats.elapsed_seconds,
        gs_t: gs_t.stats.elapsed_seconds,
        ls_nc: ls_nc.stats.elapsed_seconds,
        ls_t: ls_t.stats.elapsed_seconds,
        gs_nc_communities: gs_nc.distinct_communities().len(),
        ls_nc_communities: ls_nc.distinct_communities().len(),
        gs_partitions: gs_nc.num_cells(),
        kt_core_size: gs_nc.stats.kt_core_vertices,
        gs_memory: gs_nc.stats.memory_bytes,
        ls_memory: ls_nc.stats.memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_datagen::presets::{build_preset_scaled, PresetName, PresetScale};

    #[test]
    fn measure_all_runs_on_a_tiny_preset() {
        let dataset = build_preset_scaled(
            PresetName::SfSlashdot,
            PresetScale {
                social: 0.12,
                road: 0.12,
            },
            1,
        );
        let spec = QuerySpec {
            q: dataset.query_vertices(4),
            k: 8,
            t: dataset.default_t,
            j: 2,
            sigma: 0.01,
            d: 3,
        };
        let timings = measure_all(&dataset.rsn, &spec);
        assert!(timings.kt_core_size > 0, "expected a non-empty (k,t)-core");
        assert!(timings.gs_nc >= 0.0 && timings.ls_nc >= 0.0);
        assert!(timings.gs_nc_communities >= 1);
        assert!(timings.ls_nc_communities <= timings.gs_nc_communities + 1);
    }

    #[test]
    fn dimensionality_override_changes_attribute_dim() {
        let dataset = build_preset_scaled(
            PresetName::SfSlashdot,
            PresetScale {
                social: 0.12,
                road: 0.12,
            },
            2,
        );
        let rsn4 = with_dimensionality(&dataset, 4);
        assert_eq!(rsn4.attribute_dim(), 4);
        let rsn3 = with_dimensionality(&dataset, 3);
        assert_eq!(rsn3.attribute_dim(), 3);
    }
}

use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_road::{EdgeUpdate, GTree, RoadNetwork};
use std::time::Instant;

const MULTIPLIERS: [f64; 5] = [0.6, 0.85, 1.2, 1.6, 2.3];

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let cap: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let net0 = generate_road(&RoadConfig::with_size(n, 7));
    let t0 = Instant::now();
    let mut tree = GTree::build_with_capacity(&net0, cap);
    std::hint::black_box(&tree);
    let rebuild = t0.elapsed();
    eprintln!("build: {:?}", rebuild);

    for (name, window) in [("regional", Some(0.04f64)), ("global", None)] {
        let mut edges: Vec<(u32, u32, f64)> = net0.edges().collect();
        let m = edges.len();
        let (w_start, w_len) = match window {
            Some(frac) => (m / 3, ((m as f64 * frac).ceil() as usize).clamp(1, m)),
            None => (0, m),
        };
        // Re-sync the tree with the pristine network between scenarios.
        tree = GTree::build_with_capacity(&net0, cap);
        let mut inc_total = 0.0f64;
        let batches = 5usize;
        for b in 0..batches {
            let mut batch = Vec::new();
            for i in 0..24usize {
                let idx = (w_start + (b * 9973 + i * 101 + 7) % w_len) % m;
                let (u, v, w) = edges[idx];
                let w_new = w * MULTIPLIERS[(b + i) % MULTIPLIERS.len()];
                edges[idx].2 = w_new;
                batch.push(EdgeUpdate::new(u, v, w_new));
            }
            let net = RoadNetwork::from_edges(net0.num_vertices(), &edges);
            let t0 = Instant::now();
            let stats = tree.apply_edge_updates(&net, &batch);
            let dt = t0.elapsed().as_secs_f64();
            inc_total += dt;
            eprintln!(
                "  {} batch {}: {:.3}s ({:.1}x), dirty {}+{}, dijkstras {}, patched {}",
                name,
                b,
                dt,
                rebuild.as_secs_f64() / dt,
                stats.dirty_leaves,
                stats.dirty_internal,
                stats.row_dijkstras,
                stats.patched_rows
            );
        }
        eprintln!(
            "{}: mean batch {:.3}s, speedup {:.1}x",
            name,
            inc_total / batches as f64,
            rebuild.as_secs_f64() * batches as f64 / inc_total
        );
    }
}

use rsn_datagen::road::{generate_road, RoadConfig};
use rsn_road::GTree;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let cap: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(128);
    let fanout: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let net = generate_road(&RoadConfig::with_size(n, 7));
    eprintln!(
        "net: {} vertices, {} edges",
        net.num_vertices(),
        net.num_edges()
    );
    let t0 = Instant::now();
    let tree = GTree::build_with_params(&net, cap, fanout);
    eprintln!(
        "n={} cap={} fanout={} build: {:?} ({} nodes)",
        n,
        cap,
        fanout,
        t0.elapsed(),
        tree.num_nodes()
    );
    // leaf stats: border fraction + connected components of induced subgraph
    let mut leaves = 0usize;
    let mut verts = 0usize;
    let mut borders = 0usize;
    let mut comps_total = 0usize;
    let mut max_comps = 0usize;
    for id in 0..tree.num_nodes() {
        if !tree.children_of(id).is_empty() {
            continue;
        }
        leaves += 1;
        let vs = tree.vertices_of(id);
        verts += vs.len();
        borders += tree.borders_of(id).len();
        let set: HashMap<u32, ()> = vs.iter().map(|&v| (v, ())).collect();
        let mut seen: HashMap<u32, ()> = HashMap::new();
        let mut comps = 0;
        for &v in vs {
            if seen.contains_key(&v) {
                continue;
            }
            comps += 1;
            let mut q = VecDeque::new();
            seen.insert(v, ());
            q.push_back(v);
            while let Some(x) = q.pop_front() {
                for &(u, _) in net.neighbors(x) {
                    if set.contains_key(&u) && !seen.contains_key(&u) {
                        seen.insert(u, ());
                        q.push_back(u);
                    }
                }
            }
        }
        comps_total += comps;
        max_comps = max_comps.max(comps);
    }
    eprintln!(
        "leaves: {}, avg size {:.1}, border fraction {:.2}, avg components {:.2}, max components {}",
        leaves, verts as f64 / leaves as f64, borders as f64 / verts as f64,
        comps_total as f64 / leaves as f64, max_comps
    );
}

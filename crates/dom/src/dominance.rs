//! The r-dominance graph `G_d` (Section IV-B).
//!
//! `G_d` is a DAG over the vertices of the maximal (k,t)-core whose arcs are
//! the transitive reduction of the pair-wise r-dominance relation w.r.t. the
//! region `R`. Construction follows the paper's adapted BBS: vertices are
//! visited in decreasing score under the *pivot vector* of `R` (so a vertex
//! can only be r-dominated by vertices visited before it), and transitivity is
//! exploited so that a dominance test against a vertex already implied by the
//! closure is skipped.
//!
//! Besides the arcs, the structure exposes everything the search algorithms
//! need: dominator closures, r-dominance counts, layers (`l(v)` used by the
//! Eq. 3/Eq. 4 priorities), the leaf set, and the `G_e`/`G_c`, `l_b(G_e)`,
//! `l_t(G_c)` selectors of the local-search verification (Section VI-B).

use crate::attrs::AttrMatrix;
use crate::bitset::BitSet;
use crate::rtree::RTree;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::rdominance::{r_dominance_from_halfspace, DominanceRelation};
use rsn_geom::region::PrefRegion;
use std::collections::HashMap;

/// The r-dominance graph over a set of attributed vertices.
#[derive(Debug, Clone)]
pub struct DominanceGraph {
    /// External (social-graph) vertex ids, indexed by local id.
    ids: Vec<u32>,
    /// Map from external id to local id.
    id_to_local: HashMap<u32, usize>,
    /// Attribute vectors, indexed by local id (row-major).
    attrs: AttrMatrix,
    /// The region the graph was built for.
    region: PrefRegion,
    /// Dominator closure: `dominators[v]` holds every local id that
    /// r-dominates `v`.
    dominators: Vec<BitSet>,
    /// Transitive-reduction parents (direct dominators).
    parents: Vec<Vec<u32>>,
    /// Transitive-reduction children (directly dominated vertices).
    children: Vec<Vec<u32>>,
    /// Layer of each vertex: 0 for vertices with no dominator, otherwise
    /// 1 + the maximum layer of its dominators.
    layers: Vec<u32>,
    /// Number of r-dominance tests performed during construction (profiling).
    tests_performed: usize,
    /// Memory used by the temporary R-tree during construction.
    rtree_bytes: usize,
}

impl DominanceGraph {
    /// Builds `G_d` for the given vertices from nested attribute rows.
    ///
    /// Convenience wrapper over [`build_flat`](Self::build_flat); callers on
    /// the query hot path should already hold an [`AttrMatrix`] and call
    /// `build_flat` directly.
    pub fn build(ids: &[u32], attrs: &[Vec<f64>], region: &PrefRegion) -> Self {
        Self::build_flat(ids, &AttrMatrix::from_rows(attrs), region)
    }

    /// Builds `G_d` for the given vertices.
    ///
    /// `ids[i]` is the external id of the vertex whose attribute vector is
    /// `attrs.row(i)`; all rows share the matrix dimensionality `d` with
    /// `region.dim() == d - 1`.
    pub fn build_flat(ids: &[u32], attrs: &AttrMatrix, region: &PrefRegion) -> Self {
        assert_eq!(ids.len(), attrs.num_rows(), "ids and attrs must align");
        let n = ids.len();
        debug_assert!(
            n == 0 || region.dim() + 1 == attrs.dim(),
            "region dimensionality mismatch"
        );

        // BBS-style visit order: decreasing pivot score via the R-tree.
        let rtree = RTree::bulk_load_flat(attrs);
        let rtree_bytes = rtree.memory_bytes();
        let pivot = region.pivot();
        let order = rtree.pivot_order(pivot.reduced());

        let mut dominators: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        let mut tests = 0usize;
        // `visited[k]` = local ids popped so far, in pop order.
        let mut visited: Vec<usize> = Vec::with_capacity(n);
        for &v in &order {
            for &u in &visited {
                // Transitivity pruning: if u already implied as dominator of v
                // (because some earlier vertex dominated by u ... ), skip; more
                // precisely, if u is already recorded we skip the test.
                if dominators[v].contains(u) {
                    continue;
                }
                let hs = HalfSpace::score_at_least(attrs.row(u), attrs.row(v));
                tests += 1;
                match r_dominance_from_halfspace(&hs, region) {
                    DominanceRelation::Dominates => {
                        // u ≻ v: inherit u's dominators through transitivity.
                        let u_doms = dominators[u].clone();
                        dominators[v].set(u);
                        dominators[v].union_with(&u_doms);
                    }
                    DominanceRelation::DominatedBy => {
                        // Can only happen on pivot-score ties; record v ≻ u.
                        let v_doms = dominators[v].clone();
                        dominators[u].set(v);
                        dominators[u].union_with(&v_doms);
                    }
                    DominanceRelation::Incomparable | DominanceRelation::Equivalent => {}
                }
            }
            visited.push(v);
        }

        // Transitive reduction: u is a direct parent of v iff u dominates v
        // and u is not a dominator of any other dominator of v.
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            let doms: Vec<usize> = dominators[v].iter().collect();
            for &u in &doms {
                let implied = doms.iter().any(|&w| w != u && dominators[w].contains(u));
                if !implied {
                    parents[v].push(u as u32);
                    children[u].push(v as u32);
                }
            }
        }

        // Layers: longest dominator chain above each vertex.
        let mut layers = vec![0u32; n];
        let mut order_by_count: Vec<usize> = (0..n).collect();
        order_by_count.sort_by_key(|&v| dominators[v].count());
        for &v in &order_by_count {
            layers[v] = parents[v]
                .iter()
                .map(|&p| layers[p as usize] + 1)
                .max()
                .unwrap_or(0);
        }

        DominanceGraph {
            ids: ids.to_vec(),
            id_to_local: ids.iter().enumerate().map(|(i, &id)| (id, i)).collect(),
            attrs: attrs.clone(),
            region: region.clone(),
            dominators,
            parents,
            children,
            layers,
            tests_performed: tests,
            rtree_bytes,
        }
    }

    /// Number of vertices in `G_d`.
    pub fn num_vertices(&self) -> usize {
        self.ids.len()
    }

    /// External ids, indexed by local id.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Local id of an external id, if present.
    pub fn local_of(&self, id: u32) -> Option<usize> {
        self.id_to_local.get(&id).copied()
    }

    /// External id of a local id.
    pub fn id_of(&self, local: usize) -> u32 {
        self.ids[local]
    }

    /// Attribute vector of a local id.
    pub fn attrs_of(&self, local: usize) -> &[f64] {
        self.attrs.row(local)
    }

    /// The region `G_d` was built for.
    pub fn region(&self) -> &PrefRegion {
        &self.region
    }

    /// Whether local vertex `a` r-dominates local vertex `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.dominators[b].contains(a)
    }

    /// Dominator closure of a local vertex.
    pub fn dominators(&self, local: usize) -> &BitSet {
        &self.dominators[local]
    }

    /// r-dominance count of a local vertex (number of vertices dominating it).
    pub fn dom_count(&self, local: usize) -> usize {
        self.dominators[local].count()
    }

    /// Direct parents (transitive reduction) of a local vertex.
    pub fn parents(&self, local: usize) -> &[u32] {
        &self.parents[local]
    }

    /// Direct children (transitive reduction) of a local vertex.
    pub fn children(&self, local: usize) -> &[u32] {
        &self.children[local]
    }

    /// Layer `l(v)` (0 = top layer, increasing downwards).
    pub fn layer(&self, local: usize) -> u32 {
        self.layers[local]
    }

    /// Maximum layer index (the constant ζ of Eq. 4 can be taken as this + 1).
    pub fn max_layer(&self) -> u32 {
        self.layers.iter().copied().max().unwrap_or(0)
    }

    /// Number of r-dominance tests performed during construction.
    pub fn tests_performed(&self) -> usize {
        self.tests_performed
    }

    /// Vertices of `mask` that r-dominate **no other vertex of `mask`** — the
    /// bottom layer / leaf vertices of the induced sub-DAG (`l_b(G_e)` when
    /// `mask` selects the candidate community `H`, or the leaves of the
    /// current `G'_d` during global search).
    pub fn leaves_within(&self, mask: &[bool]) -> Vec<usize> {
        debug_assert_eq!(mask.len(), self.num_vertices());
        let n = self.num_vertices();
        let mut dominates_someone = vec![false; n];
        for v in 0..n {
            if !mask[v] {
                continue;
            }
            for u in self.dominators[v].iter() {
                if mask[u] {
                    dominates_someone[u] = true;
                }
            }
        }
        (0..n)
            .filter(|&v| mask[v] && !dominates_someone[v])
            .collect()
    }

    /// Pool-backed variant of [`leaves_within`](Self::leaves_within): appends
    /// the leaf vertices (as `u32` locals, same order) to `out` instead of
    /// allocating, using `mark` as the recycled "dominates someone" scratch.
    /// Appending (rather than clearing) lets callers pack many leaf sets into
    /// one flat arena and address them by `(start, len)` ranges.
    pub fn leaves_within_into(&self, mask: &[bool], mark: &mut Vec<bool>, out: &mut Vec<u32>) {
        debug_assert_eq!(mask.len(), self.num_vertices());
        let n = self.num_vertices();
        mark.clear();
        mark.resize(n, false);
        for v in 0..n {
            if !mask[v] {
                continue;
            }
            for u in self.dominators[v].iter() {
                if mask[u] {
                    mark[u] = true;
                }
            }
        }
        out.extend((0..n).filter(|&v| mask[v] && !mark[v]).map(|v| v as u32));
    }

    /// Vertices of `mask` that are r-dominated by **no other vertex of
    /// `mask`** — the top layer of the induced sub-DAG (`l_t(G_c)` when `mask`
    /// selects the complement of the candidate community).
    pub fn top_within(&self, mask: &[bool]) -> Vec<usize> {
        debug_assert_eq!(mask.len(), self.num_vertices());
        (0..self.num_vertices())
            .filter(|&v| mask[v] && self.dominators[v].iter().all(|u| !mask[u]))
            .collect()
    }

    /// Like [`top_within`](Self::top_within) but with some vertices excluded
    /// from the mask (used for the "replace a bound vertex by its next layer"
    /// relaxation of Corollary 3).
    pub fn top_within_excluding(&self, mask: &[bool], excluded: &[usize]) -> Vec<usize> {
        let mut mask2 = mask.to_vec();
        for &v in excluded {
            mask2[v] = false;
        }
        self.top_within(&mask2)
    }

    /// Approximate memory footprint in bytes, including the construction-time
    /// R-tree (the BBS column of Fig. 11(d)).
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>() + self.rtree_bytes;
        total += self.ids.len() * 4;
        total += self.attrs.memory_bytes();
        total += self
            .dominators
            .iter()
            .map(|b| b.memory_bytes())
            .sum::<usize>();
        total += self
            .parents
            .iter()
            .chain(self.children.iter())
            .map(|v| v.len() * 4)
            .sum::<usize>();
        total += self.layers.len() * 4;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2(a) attribute vectors of v1..v7 with the region of Fig. 2(b).
    fn paper_setup() -> (Vec<u32>, Vec<Vec<f64>>, PrefRegion) {
        let ids = vec![1, 2, 3, 4, 5, 6, 7];
        let attrs = vec![
            vec![8.8, 3.6, 2.2], // v1
            vec![5.9, 6.2, 6.0], // v2
            vec![2.8, 5.6, 5.1], // v3
            vec![9.0, 3.3, 3.4], // v4
            vec![5.0, 7.6, 3.1], // v5
            vec![5.2, 8.3, 4.3], // v6
            vec![2.1, 5.0, 5.1], // v7
        ];
        let region = PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap();
        (ids, attrs, region)
    }

    #[test]
    fn paper_dominance_graph_structure() {
        let (ids, attrs, region) = paper_setup();
        let gd = DominanceGraph::build(&ids, &attrs, &region);
        assert_eq!(gd.num_vertices(), 7);
        let local = |id: u32| gd.local_of(id).unwrap();

        // Fig. 4(b): v7 is in the bottom layer, dominated by v2 and v6
        // (transitively) and by v3 directly.
        assert!(gd.dominates(local(2), local(7)));
        assert!(gd.dominates(local(6), local(7)));
        assert!(gd.dominates(local(3), local(7)));
        // v7 dominates nothing
        assert_eq!(gd.children(local(7)).len(), 0);
        // the full-graph leaves include v7, v5 and v1 (initial leaves used in
        // Fig. 5(a))
        let all = vec![true; 7];
        let leaves: Vec<u32> = gd
            .leaves_within(&all)
            .iter()
            .map(|&v| gd.id_of(v))
            .collect();
        assert!(leaves.contains(&7) && leaves.contains(&5) && leaves.contains(&1));
        // top layer contains v2, v6 and v4
        let top: Vec<u32> = gd.top_within(&all).iter().map(|&v| gd.id_of(v)).collect();
        assert!(top.contains(&2) && top.contains(&6) && top.contains(&4));
        // layers: top vertices at layer 0, v7 strictly below its dominators
        assert_eq!(gd.layer(local(2)), 0);
        assert!(gd.layer(local(7)) > gd.layer(local(3)));
    }

    #[test]
    fn ge_gc_selectors_match_paper_example() {
        // Section VI-B walkthrough for H1 = {v2, v3, v6, v7}:
        // lb(Ge) = {v7}, lt(Gc) = {v4, v5}.
        let (ids, attrs, region) = paper_setup();
        let gd = DominanceGraph::build(&ids, &attrs, &region);
        let in_h = |id: u32| [2u32, 3, 6, 7].contains(&id);
        let mask_e: Vec<bool> = (0..7).map(|i| in_h(gd.id_of(i))).collect();
        let mask_c: Vec<bool> = (0..7).map(|i| !in_h(gd.id_of(i))).collect();
        let lb: Vec<u32> = gd
            .leaves_within(&mask_e)
            .iter()
            .map(|&v| gd.id_of(v))
            .collect();
        assert_eq!(lb, vec![7]);
        let mut lt: Vec<u32> = gd
            .top_within(&mask_c)
            .iter()
            .map(|&v| gd.id_of(v))
            .collect();
        lt.sort_unstable();
        assert_eq!(lt, vec![4, 5]);
        // excluding v5 pushes the top layer of Gc down to v1 (and keeps v4)
        let v5_local = gd.local_of(5).unwrap();
        let mut lt2: Vec<u32> = gd
            .top_within_excluding(&mask_c, &[v5_local])
            .iter()
            .map(|&v| gd.id_of(v))
            .collect();
        lt2.sort_unstable();
        assert!(lt2.contains(&4));
    }

    #[test]
    fn closure_is_transitive_and_antisymmetric() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60;
        let ids: Vec<u32> = (0..n as u32).collect();
        let attrs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect();
        let region = PrefRegion::from_ranges(&[(0.1, 0.3), (0.2, 0.4), (0.1, 0.2)]).unwrap();
        let gd = DominanceGraph::build(&ids, &attrs, &region);
        for a in 0..n {
            assert!(!gd.dominates(a, a), "irreflexive");
            for b in 0..n {
                if gd.dominates(a, b) {
                    assert!(!gd.dominates(b, a), "antisymmetric");
                    for c in 0..n {
                        if gd.dominates(b, c) {
                            assert!(gd.dominates(a, c), "transitive closure");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn closure_matches_pairwise_tests() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        use rsn_geom::rdominance::r_dominance;
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40;
        let ids: Vec<u32> = (0..n as u32).collect();
        let attrs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect();
        let region = PrefRegion::from_ranges(&[(0.15, 0.45), (0.2, 0.35)]).unwrap();
        let gd = DominanceGraph::build(&ids, &attrs, &region);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let expect =
                    r_dominance(&attrs[a], &attrs[b], &region) == DominanceRelation::Dominates;
                assert_eq!(
                    gd.dominates(a, b),
                    expect,
                    "closure mismatch for {a} -> {b}"
                );
            }
        }
        // pruning means we performed fewer tests than the naive n*(n-1)
        assert!(gd.tests_performed() <= n * (n - 1));
    }

    #[test]
    fn reduction_has_no_redundant_arcs() {
        let (ids, attrs, region) = paper_setup();
        let gd = DominanceGraph::build(&ids, &attrs, &region);
        for v in 0..gd.num_vertices() {
            for &p in gd.parents(v) {
                // no other dominator of v is dominated by p (otherwise the arc
                // p -> v would be implied by transitivity)
                for u in gd.dominators(v).iter() {
                    if u == p as usize {
                        continue;
                    }
                    assert!(
                        !gd.dominators(u).contains(p as usize),
                        "redundant arc {p} -> {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_and_empty_graph() {
        let region = PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap();
        let gd = DominanceGraph::build(&[], &[], &region);
        assert_eq!(gd.num_vertices(), 0);
        assert_eq!(gd.max_layer(), 0);
        assert!(gd.memory_bytes() > 0);
        assert!(gd.leaves_within(&[]).is_empty());
    }
}

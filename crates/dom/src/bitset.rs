//! A compact fixed-capacity bit set used for dominator closures.

/// Fixed-capacity bit set backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bit set able to hold `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place union with another bit set of the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
    }

    /// Whether the intersection with `other` is non-empty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits that are also set in `mask`.
    pub fn count_intersection(&self, mask: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(mask.blocks.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            (0..64)
                .filter(move |bit| block & (1u64 << bit) != 0)
                .map(move |bit| bi * 64 + bit)
        })
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(!s.contains(500));
        assert_eq!(s.count(), 3);
        s.clear(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        assert!(a.intersects(&b));
        assert_eq!(a.count_intersection(&b), 1);
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        let c = BitSet::new(100);
        assert!(!c.intersects(&a));
    }

    #[test]
    fn iteration_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 77, 3, 199] {
            s.set(i);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, vec![3, 5, 77, 199]);
    }

    #[test]
    fn empty_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
    }
}

//! Flat, row-major storage for the attribute vectors of a vertex set.
//!
//! The search hot loops (`score()` in the peel, the half-space construction
//! of the global search, the priority functions of the local search) read
//! attribute rows millions of times per query. A `Vec<Vec<f64>>` scatters
//! those rows across the heap — one allocation and one pointer chase per
//! vertex. [`AttrMatrix`] packs all rows into a single `Vec<f64>`, so row
//! access is an index computation into one contiguous buffer and construction
//! is a single allocation.

use std::ops::Index;

/// Row-major `n × dim` attribute matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttrMatrix {
    data: Vec<f64>,
    dim: usize,
}

impl AttrMatrix {
    /// An empty matrix with `dim` columns.
    pub fn new(dim: usize) -> Self {
        AttrMatrix {
            data: Vec::new(),
            dim,
        }
    }

    /// An empty matrix with `dim` columns and capacity for `rows` rows.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        AttrMatrix {
            data: Vec::with_capacity(dim * rows),
            dim,
        }
    }

    /// Builds the matrix from per-vertex rows (all of length `dim`; an empty
    /// slice yields an empty matrix with `dim` columns).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut matrix = AttrMatrix::with_capacity(dim, rows.len());
        for row in rows {
            matrix.push_row(row);
        }
        matrix
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length must equal dim");
        self.data.extend_from_slice(row);
    }

    /// Number of rows (vertices).
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Number of columns (attribute dimensionality `d`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// The underlying flat buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Copies the rows back out as nested vectors (interop with APIs that
    /// still take `&[Vec<f64>]`; not for hot paths).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Memory footprint of the buffer in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.len() * std::mem::size_of::<f64>()
    }
}

impl Index<usize> for AttrMatrix {
    type Output = [f64];

    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rows() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = AttrMatrix::from_rows(&rows);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.dim(), 3);
        assert_eq!(&m[0], &[1.0, 2.0, 3.0][..]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0][..]);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.rows().count(), 2);
        assert!(!m.is_empty());
        assert!(m.memory_bytes() >= 6 * 8);
    }

    #[test]
    fn push_grows_and_flat_layout_is_contiguous() {
        let mut m = AttrMatrix::new(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row length must equal dim")]
    fn ragged_rows_rejected() {
        let mut m = AttrMatrix::new(3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = AttrMatrix::from_rows(&[]);
        assert_eq!(m.num_rows(), 0);
        assert_eq!(m.dim(), 0);
        assert!(m.is_empty());
    }
}

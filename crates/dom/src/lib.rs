//! # rsn-dom
//!
//! Attribute index and r-dominance graph (`G_d`) for the reproduction of
//! *"Multi-attributed Community Search in Road-social Networks"* (ICDE 2021).
//!
//! Section IV of the paper organizes the d-dimensional attribute vectors of
//! the maximal (k,t)-core in an R-tree and adapts the BBS skyband algorithm to
//! compute **all pair-wise r-dominance relationships** w.r.t. the region `R`,
//! materialized as a DAG called the r-dominance graph. The adaptation keys the
//! max-heap by the score of an R-tree node's upper-right corner (resp. a
//! vertex) under the *pivot vector* of `R`, so that vertices are popped in an
//! order in which later vertices can never r-dominate earlier ones.
//!
//! * [`attrs::AttrMatrix`] — flat row-major attribute storage shared with
//!   the search hot loops.
//! * [`bitset::BitSet`] — compact dominator sets.
//! * [`rtree::RTree`] — STR bulk-loaded R-tree over attribute vectors.
//! * [`dominance::DominanceGraph`] — the DAG `G_d` with transitive-reduction
//!   arcs, layers, dominator closures, and the `G_e`/`G_c`, `l_b`/`l_t`
//!   selectors used by the local search (Section VI-B).

pub mod attrs;
pub mod bitset;
pub mod dominance;
pub mod rtree;

pub use attrs::AttrMatrix;
pub use bitset::BitSet;
pub use dominance::DominanceGraph;
pub use rtree::RTree;

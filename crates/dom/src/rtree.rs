//! An STR bulk-loaded R-tree over d-dimensional attribute vectors.
//!
//! The paper organizes the attribute vectors `X` in a spatial index
//! (Section II-C cites Guttman's R-tree) and traverses it with a BBS-style
//! best-first search keyed by the score of a node's upper-right MBB corner
//! under the pivot weight vector (Section IV-B). This module provides the
//! index and the best-first traversal; the r-dominance bookkeeping lives in
//! [`crate::dominance`].

use rsn_geom::weights::score_reduced;

/// Minimum bounding box of a set of d-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbb {
    /// Per-dimension lower corner.
    pub lo: Vec<f64>,
    /// Per-dimension upper corner.
    pub hi: Vec<f64>,
}

impl Mbb {
    fn from_points<'a>(points: impl Iterator<Item = &'a [f64]>, dim: usize) -> Self {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in points {
            for i in 0..dim {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        Mbb { lo, hi }
    }

    fn merge(boxes: &[&Mbb], dim: usize) -> Self {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for b in boxes {
            for i in 0..dim {
                lo[i] = lo[i].min(b.lo[i]);
                hi[i] = hi[i].max(b.hi[i]);
            }
        }
        Mbb { lo, hi }
    }
}

#[derive(Debug, Clone)]
enum RNode {
    Leaf {
        mbb: Mbb,
        /// `(item index, attribute vector)` pairs.
        entries: Vec<(usize, Vec<f64>)>,
    },
    Inner {
        mbb: Mbb,
        children: Vec<usize>,
    },
}

/// STR bulk-loaded R-tree.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<RNode>,
    root: Option<usize>,
    dim: usize,
    fanout: usize,
}

/// Default node fanout.
pub const DEFAULT_FANOUT: usize = 8;

impl RTree {
    /// Bulk loads the tree from `items` (indexed by position).
    pub fn bulk_load(items: &[Vec<f64>], dim: usize) -> Self {
        Self::bulk_load_with_fanout(items, dim, DEFAULT_FANOUT)
    }

    /// Bulk loads the tree from a flat row-major attribute matrix.
    pub fn bulk_load_flat(attrs: &crate::attrs::AttrMatrix) -> Self {
        Self::bulk_load_with_fanout(&attrs.to_rows(), attrs.dim(), DEFAULT_FANOUT)
    }

    /// Bulk loads with an explicit fanout (minimum 2).
    pub fn bulk_load_with_fanout(items: &[Vec<f64>], dim: usize, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut tree = RTree {
            nodes: Vec::new(),
            root: None,
            dim,
            fanout,
        };
        if items.is_empty() {
            return tree;
        }
        let mut indexed: Vec<(usize, Vec<f64>)> = items.iter().cloned().enumerate().collect();
        let root = tree.build_str(&mut indexed, 0);
        tree.root = Some(root);
        tree
    }

    /// Number of indexed dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate memory footprint in bytes (Fig. 11(d) accounting: the BBS
    /// process memory includes the R-tree over `X`).
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for node in &self.nodes {
            total += match node {
                RNode::Leaf { entries, .. } => {
                    entries.len() * (std::mem::size_of::<usize>() + self.dim * 8) + 2 * self.dim * 8
                }
                RNode::Inner { children, .. } => {
                    children.len() * std::mem::size_of::<usize>() + 2 * self.dim * 8
                }
            };
        }
        total
    }

    /// Recursive Sort-Tile-Recursive build; returns node index.
    fn build_str(&mut self, items: &mut [(usize, Vec<f64>)], depth: usize) -> usize {
        if items.len() <= self.fanout {
            let mbb = Mbb::from_points(items.iter().map(|(_, p)| p.as_slice()), self.dim);
            let id = self.nodes.len();
            self.nodes.push(RNode::Leaf {
                mbb,
                entries: items.to_vec(),
            });
            return id;
        }
        // sort along a rotating dimension and slice into `fanout` groups
        let axis = depth % self.dim.max(1);
        items.sort_by(|a, b| a.1[axis].total_cmp(&b.1[axis]));
        let chunk = items.len().div_ceil(self.fanout);
        let mut children = Vec::new();
        let mut start = 0;
        while start < items.len() {
            let end = (start + chunk).min(items.len());
            let child = {
                let mut slice: Vec<(usize, Vec<f64>)> = items[start..end].to_vec();
                self.build_str(&mut slice, depth + 1)
            };
            children.push(child);
            start = end;
        }
        let boxes: Vec<&Mbb> = children.iter().map(|&c| self.mbb_of(c)).collect();
        let mbb = Mbb::merge(&boxes, self.dim);
        let id = self.nodes.len();
        self.nodes.push(RNode::Inner { mbb, children });
        id
    }

    fn mbb_of(&self, node: usize) -> &Mbb {
        match &self.nodes[node] {
            RNode::Leaf { mbb, .. } | RNode::Inner { mbb, .. } => mbb,
        }
    }

    /// Best-first traversal in decreasing order of the score of the node's
    /// upper-right corner (resp. the point itself) under the reduced pivot
    /// weights. Returns the item indices in that order.
    ///
    /// This is the traversal order of the adapted BBS of Section IV-B: a
    /// popped vertex can never be r-dominated by a vertex popped later,
    /// because the pivot lies inside `R`.
    pub fn pivot_order(&self, pivot_reduced: &[f64]) -> Vec<usize> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(Debug)]
        enum HeapItem {
            Node(usize),
            Point(usize),
        }
        struct Entry {
            score: f64,
            item: HeapItem,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.score == other.score
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.score.total_cmp(&other.score)
            }
        }

        let mut order = Vec::new();
        let Some(root) = self.root else {
            return order;
        };
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        heap.push(Entry {
            score: score_reduced(&self.mbb_of(root).hi, pivot_reduced),
            item: HeapItem::Node(root),
        });
        while let Some(Entry { item, .. }) = heap.pop() {
            match item {
                HeapItem::Point(idx) => order.push(idx),
                HeapItem::Node(node) => match &self.nodes[node] {
                    RNode::Leaf { entries, .. } => {
                        for (idx, point) in entries {
                            heap.push(Entry {
                                score: score_reduced(point, pivot_reduced),
                                item: HeapItem::Point(*idx),
                            });
                        }
                    }
                    RNode::Inner { children, .. } => {
                        for &c in children {
                            heap.push(Entry {
                                score: score_reduced(&self.mbb_of(c).hi, pivot_reduced),
                                item: HeapItem::Node(c),
                            });
                        }
                    }
                },
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let tree = RTree::bulk_load(&[], 3);
        assert_eq!(tree.num_nodes(), 0);
        assert!(tree.pivot_order(&[0.3, 0.3]).is_empty());

        let pts = random_points(5, 3, 1);
        let tree = RTree::bulk_load(&pts, 3);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.pivot_order(&[0.3, 0.3]).len(), 5);
    }

    #[test]
    fn pivot_order_is_decreasing_score() {
        let pts = random_points(200, 3, 2);
        let tree = RTree::bulk_load(&pts, 3);
        let pivot = [0.25, 0.35];
        let order = tree.pivot_order(&pivot);
        assert_eq!(order.len(), 200);
        let mut seen = [false; 200];
        let mut prev = f64::INFINITY;
        for idx in order {
            assert!(!seen[idx]);
            seen[idx] = true;
            let s = score_reduced(&pts[idx], &pivot);
            assert!(s <= prev + 1e-9, "scores not non-increasing");
            prev = s;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn pivot_order_various_dimensions() {
        for d in [1usize, 2, 4, 6] {
            let pts = random_points(64, d, d as u64);
            let tree = RTree::bulk_load(&pts, d);
            let pivot: Vec<f64> = vec![1.0 / d as f64; d - 1];
            let order = tree.pivot_order(&pivot);
            assert_eq!(order.len(), 64);
            let mut prev = f64::INFINITY;
            for idx in order {
                let s = score_reduced(&pts[idx], &pivot);
                assert!(s <= prev + 1e-9);
                prev = s;
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let pts = random_points(50, 3, 3);
        let tree = RTree::bulk_load(&pts, 3);
        assert!(tree.memory_bytes() > 0);
        assert!(tree.num_nodes() > 1);
    }
}

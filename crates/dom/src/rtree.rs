//! An STR bulk-loaded R-tree over d-dimensional attribute vectors.
//!
//! The paper organizes the attribute vectors `X` in a spatial index
//! (Section II-C cites Guttman's R-tree) and traverses it with a BBS-style
//! best-first search keyed by the score of a node's upper-right MBB corner
//! under the pivot weight vector (Section IV-B). This module provides the
//! index and the best-first traversal; the r-dominance bookkeeping lives in
//! [`crate::dominance`].

use rsn_geom::weights::score_reduced;

/// Minimum bounding box of a set of d-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbb {
    /// Per-dimension lower corner.
    pub lo: Vec<f64>,
    /// Per-dimension upper corner.
    pub hi: Vec<f64>,
}

impl Mbb {
    fn from_points<'a>(points: impl Iterator<Item = &'a [f64]>, dim: usize) -> Self {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in points {
            for i in 0..dim {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        Mbb { lo, hi }
    }

    fn merge(boxes: &[&Mbb], dim: usize) -> Self {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for b in boxes {
            for i in 0..dim {
                lo[i] = lo[i].min(b.lo[i]);
                hi[i] = hi[i].max(b.hi[i]);
            }
        }
        Mbb { lo, hi }
    }
}

#[derive(Debug, Clone)]
enum RNode {
    Leaf {
        mbb: Mbb,
        /// Item indices (rows of the tree's point matrix).
        entries: Vec<usize>,
    },
    Inner {
        mbb: Mbb,
        children: Vec<usize>,
    },
}

/// STR bulk-loaded R-tree.
///
/// The indexed points live in one flat row-major [`AttrMatrix`]; tree nodes
/// reference them by row index, so the build sorts a single index permutation
/// and never materializes per-point `Vec<f64>` rows.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<RNode>,
    root: Option<usize>,
    points: AttrMatrix,
    dim: usize,
    fanout: usize,
}

use crate::attrs::AttrMatrix;

/// Default node fanout.
pub const DEFAULT_FANOUT: usize = 8;

impl RTree {
    /// Bulk loads the tree from `items` (indexed by position).
    pub fn bulk_load(items: &[Vec<f64>], dim: usize) -> Self {
        Self::bulk_load_with_fanout(items, dim, DEFAULT_FANOUT)
    }

    /// Bulk loads the tree from a flat row-major attribute matrix, indexing
    /// into it directly (one buffer copy, no nested rows).
    pub fn bulk_load_flat(attrs: &AttrMatrix) -> Self {
        Self::bulk_load_flat_with_fanout(attrs, DEFAULT_FANOUT)
    }

    /// [`bulk_load_flat`](Self::bulk_load_flat) with an explicit fanout
    /// (minimum 2).
    pub fn bulk_load_flat_with_fanout(attrs: &AttrMatrix, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut tree = RTree {
            nodes: Vec::new(),
            root: None,
            points: attrs.clone(),
            dim: attrs.dim(),
            fanout,
        };
        if attrs.num_rows() == 0 {
            return tree;
        }
        let mut order: Vec<usize> = (0..attrs.num_rows()).collect();
        let root = build_str(&mut tree.nodes, &tree.points, tree.fanout, &mut order, 0);
        tree.root = Some(root);
        tree
    }

    /// Bulk loads with an explicit fanout (minimum 2).
    pub fn bulk_load_with_fanout(items: &[Vec<f64>], dim: usize, fanout: usize) -> Self {
        let mut points = AttrMatrix::new(dim);
        for row in items {
            points.push_row(row);
        }
        Self::bulk_load_flat_with_fanout(&points, fanout)
    }

    /// Number of indexed dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate memory footprint in bytes (Fig. 11(d) accounting: the BBS
    /// process memory includes the R-tree over `X`).
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>() + self.points.memory_bytes();
        for node in &self.nodes {
            total += match node {
                RNode::Leaf { entries, .. } => {
                    entries.len() * std::mem::size_of::<usize>() + 2 * self.dim * 8
                }
                RNode::Inner { children, .. } => {
                    children.len() * std::mem::size_of::<usize>() + 2 * self.dim * 8
                }
            };
        }
        total
    }

    fn mbb_of(&self, node: usize) -> &Mbb {
        match &self.nodes[node] {
            RNode::Leaf { mbb, .. } | RNode::Inner { mbb, .. } => mbb,
        }
    }

    /// Best-first traversal in decreasing order of the score of the node's
    /// upper-right corner (resp. the point itself) under the reduced pivot
    /// weights. Returns the item indices in that order.
    ///
    /// This is the traversal order of the adapted BBS of Section IV-B: a
    /// popped vertex can never be r-dominated by a vertex popped later,
    /// because the pivot lies inside `R`.
    pub fn pivot_order(&self, pivot_reduced: &[f64]) -> Vec<usize> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(Debug)]
        enum HeapItem {
            Node(usize),
            Point(usize),
        }
        struct Entry {
            score: f64,
            item: HeapItem,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.score == other.score
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.score.total_cmp(&other.score)
            }
        }

        let mut order = Vec::new();
        let Some(root) = self.root else {
            return order;
        };
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        heap.push(Entry {
            score: score_reduced(&self.mbb_of(root).hi, pivot_reduced),
            item: HeapItem::Node(root),
        });
        while let Some(Entry { item, .. }) = heap.pop() {
            match item {
                HeapItem::Point(idx) => order.push(idx),
                HeapItem::Node(node) => match &self.nodes[node] {
                    RNode::Leaf { entries, .. } => {
                        for &idx in entries {
                            heap.push(Entry {
                                score: score_reduced(self.points.row(idx), pivot_reduced),
                                item: HeapItem::Point(idx),
                            });
                        }
                    }
                    RNode::Inner { children, .. } => {
                        for &c in children {
                            heap.push(Entry {
                                score: score_reduced(&self.mbb_of(c).hi, pivot_reduced),
                                item: HeapItem::Node(c),
                            });
                        }
                    }
                },
            }
        }
        order
    }
}

/// Recursive Sort-Tile-Recursive build over an index permutation; sorts
/// `order` in place along a rotating axis, reading coordinates straight from
/// the flat point matrix. Returns the created node's index.
fn build_str(
    nodes: &mut Vec<RNode>,
    points: &AttrMatrix,
    fanout: usize,
    order: &mut [usize],
    depth: usize,
) -> usize {
    let dim = points.dim();
    if order.len() <= fanout {
        let mbb = Mbb::from_points(order.iter().map(|&i| points.row(i)), dim);
        let id = nodes.len();
        nodes.push(RNode::Leaf {
            mbb,
            entries: order.to_vec(),
        });
        return id;
    }
    // sort along a rotating dimension and slice into `fanout` groups
    let axis = depth % dim.max(1);
    order.sort_by(|&a, &b| points.row(a)[axis].total_cmp(&points.row(b)[axis]));
    let chunk = order.len().div_ceil(fanout);
    let mut children = Vec::new();
    let mut rest = order;
    while !rest.is_empty() {
        let (head, tail) = rest.split_at_mut(chunk.min(rest.len()));
        children.push(build_str(nodes, points, fanout, head, depth + 1));
        rest = tail;
    }
    let boxes: Vec<&Mbb> = children
        .iter()
        .map(|&c| match &nodes[c] {
            RNode::Leaf { mbb, .. } | RNode::Inner { mbb, .. } => mbb,
        })
        .collect();
    let mbb = Mbb::merge(&boxes, dim);
    let id = nodes.len();
    nodes.push(RNode::Inner { mbb, children });
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let tree = RTree::bulk_load(&[], 3);
        assert_eq!(tree.num_nodes(), 0);
        assert!(tree.pivot_order(&[0.3, 0.3]).is_empty());

        let pts = random_points(5, 3, 1);
        let tree = RTree::bulk_load(&pts, 3);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.pivot_order(&[0.3, 0.3]).len(), 5);
    }

    #[test]
    fn pivot_order_is_decreasing_score() {
        let pts = random_points(200, 3, 2);
        let tree = RTree::bulk_load(&pts, 3);
        let pivot = [0.25, 0.35];
        let order = tree.pivot_order(&pivot);
        assert_eq!(order.len(), 200);
        let mut seen = [false; 200];
        let mut prev = f64::INFINITY;
        for idx in order {
            assert!(!seen[idx]);
            seen[idx] = true;
            let s = score_reduced(&pts[idx], &pivot);
            assert!(s <= prev + 1e-9, "scores not non-increasing");
            prev = s;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn pivot_order_various_dimensions() {
        for d in [1usize, 2, 4, 6] {
            let pts = random_points(64, d, d as u64);
            let tree = RTree::bulk_load(&pts, d);
            let pivot: Vec<f64> = vec![1.0 / d as f64; d - 1];
            let order = tree.pivot_order(&pivot);
            assert_eq!(order.len(), 64);
            let mut prev = f64::INFINITY;
            for idx in order {
                let s = score_reduced(&pts[idx], &pivot);
                assert!(s <= prev + 1e-9);
                prev = s;
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let pts = random_points(50, 3, 3);
        let tree = RTree::bulk_load(&pts, 3);
        assert!(tree.memory_bytes() > 0);
        assert!(tree.num_nodes() > 1);
    }

    #[test]
    fn flat_build_matches_nested_build() {
        use crate::attrs::AttrMatrix;
        for (n, d, fanout) in [
            (1usize, 2usize, 4usize),
            (17, 3, 4),
            (128, 4, 8),
            (200, 2, 3),
        ] {
            let pts = random_points(n, d, (n * d) as u64);
            let matrix = AttrMatrix::from_rows(&pts);
            let nested = RTree::bulk_load_with_fanout(&pts, d, fanout);
            let flat = RTree::bulk_load_flat_with_fanout(&matrix, fanout);
            assert_eq!(nested.num_nodes(), flat.num_nodes());
            let pivot: Vec<f64> = vec![1.0 / d as f64; d - 1];
            assert_eq!(
                nested.pivot_order(&pivot),
                flat.pivot_order(&pivot),
                "flat/nested builds diverge for n={n}, d={d}, fanout={fanout}"
            );
        }
    }
}

//! ATC-style attributed truss community (Huang & Lakshmanan, PVLDB 2017),
//! used in the Fig. 15(h) case-study comparison.
//!
//! ATC looks for a (k+1)-truss containing the query vertices that maximizes
//! keyword/attribute coverage. For the comparison we only need its structural
//! part — a connected (k+1)-truss containing `Q`, optionally restricted to
//! vertices carrying a required keyword — because the point the case study
//! makes is that ATC ignores the numerical attributes entirely and therefore
//! returns much larger communities than the MAC model.

use rsn_graph::graph::{Graph, VertexId};
use rsn_graph::truss::connected_k_truss_containing;

/// Finds the connected (k+1)-truss containing the query vertices, restricted
/// to vertices whose `has_keyword` flag is set (pass all-true for the
/// unrestricted variant). Returns `None` when no such community exists.
pub fn atc_community(
    graph: &Graph,
    q: &[VertexId],
    k: u32,
    has_keyword: &[bool],
) -> Option<Vec<VertexId>> {
    // Restrict the graph to keyword-carrying vertices (query vertices are
    // always kept, as in the ATC candidate generation).
    let keep: Vec<VertexId> = (0..graph.num_vertices() as u32)
        .filter(|&v| has_keyword[v as usize] || q.contains(&v))
        .collect();
    let (sub, new_to_old) = graph.induced_subgraph(&keep);
    let mut old_to_new = vec![u32::MAX; graph.num_vertices()];
    for (new, &old) in new_to_old.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let local_q: Vec<u32> = q.iter().map(|&v| old_to_new[v as usize]).collect();
    if local_q.contains(&u32::MAX) {
        return None;
    }
    let community = connected_k_truss_containing(&sub, k + 1, &local_q)?;
    Some(
        community
            .into_iter()
            .map(|v| new_to_old[v as usize])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_truss_community_containing_query() {
        // K5 on {0..4} plus a tail
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        edges.push((4, 5));
        edges.push((5, 6));
        let graph = Graph::from_edges(7, &edges);
        let keywords = vec![true; 7];
        let comm = atc_community(&graph, &[0], 3, &keywords).unwrap();
        assert_eq!(comm, vec![0, 1, 2, 3, 4]);
        assert!(atc_community(&graph, &[6], 3, &keywords).is_none());
    }

    #[test]
    fn keyword_filter_restricts_members() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let graph = Graph::from_edges(6, &edges);
        let mut keywords = vec![true; 6];
        keywords[5] = false;
        let comm = atc_community(&graph, &[0], 3, &keywords).unwrap();
        assert!(!comm.contains(&5));
        assert!(comm.len() == 5);
    }
}

//! Influential community search (Li et al., PVLDB 2015) over a 1-dimensional
//! influence score.
//!
//! The influence of a community is the minimum member influence; the top-r
//! k-influential communities are obtained by repeatedly deleting the
//! lowest-influence vertex and recording every maximal connected k-core that
//! appears. For the Fig. 13/14 comparison the influence of a vertex is the
//! weighted sum of its d attributes under one concrete weight vector (sampled
//! from `R`), which is exactly how the paper adapts this baseline.

use rsn_dom::attrs::AttrMatrix;
use rsn_geom::weights::score_reduced;
use rsn_graph::graph::{Graph, VertexId};
use rsn_graph::subgraph::SubgraphView;

/// A community found by the influential-community baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluentialCommunity {
    /// Member vertices (sorted).
    pub vertices: Vec<VertexId>,
    /// Influence of the community (minimum member influence).
    pub influence: f64,
}

/// The DFS/peeling-based influential community search (the paper's `Influ`).
#[derive(Debug, Clone)]
pub struct Influ<'a> {
    graph: &'a Graph,
    attrs: &'a AttrMatrix,
}

impl<'a> Influ<'a> {
    /// Creates the baseline over a graph and the per-vertex attribute matrix.
    pub fn new(graph: &'a Graph, attrs: &'a AttrMatrix) -> Self {
        Influ { graph, attrs }
    }

    /// Top-r k-influential communities for the influence defined by the
    /// reduced weight vector `reduced_w`.
    pub fn top_r(&self, k: u32, r: usize, reduced_w: &[f64]) -> Vec<InfluentialCommunity> {
        let scores: Vec<f64> = self
            .attrs
            .rows()
            .map(|a| score_reduced(a, reduced_w))
            .collect();
        top_r_by_scores(self.graph, &scores, k, r)
    }
}

/// The ICP-index flavour (`Influ+`): the peeling order for a given weight
/// vector is materialized once and reused for any `r`.
#[derive(Debug, Clone)]
pub struct InfluPlus {
    /// Snapshots of maximal connected k-cores in increasing influence order.
    snapshots: Vec<InfluentialCommunity>,
}

impl InfluPlus {
    /// Builds the index for a fixed `k` and weight vector.
    pub fn build(graph: &Graph, attrs: &AttrMatrix, k: u32, reduced_w: &[f64]) -> Self {
        let scores: Vec<f64> = attrs.rows().map(|a| score_reduced(a, reduced_w)).collect();
        // Record every community produced along the full peeling.
        let snapshots = top_r_by_scores(graph, &scores, k, usize::MAX);
        InfluPlus { snapshots }
    }

    /// Top-r communities straight from the index.
    pub fn top_r(&self, r: usize) -> Vec<InfluentialCommunity> {
        self.snapshots.iter().rev().take(r).rev().cloned().collect()
    }

    /// Number of indexed snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the index holds no community.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

/// Shared peeling routine: repeatedly delete the lowest-score vertex and
/// record the surviving maximal connected k-core containing it each time one
/// exists. Communities are returned in increasing influence order; the last
/// `r` are the top-r influential communities.
fn top_r_by_scores(graph: &Graph, scores: &[f64], k: u32, r: usize) -> Vec<InfluentialCommunity> {
    let n = graph.num_vertices();
    let mut view = SubgraphView::full(graph);
    view.peel_to_k_core(k);
    let mut communities: Vec<InfluentialCommunity> = Vec::new();
    // order vertices by score ascending
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));

    // record the initial k-core components
    record_components(&view, scores, &mut communities);
    for &v in &order {
        if !view.is_alive(v) {
            continue;
        }
        view.delete_cascade(v, k);
        record_components(&view, scores, &mut communities);
    }
    // deduplicate consecutive identical snapshots and keep the last r
    communities.dedup_by(|a, b| a.vertices == b.vertices);
    let start = communities.len().saturating_sub(r);
    communities.split_off(start)
}

fn record_components(view: &SubgraphView<'_>, scores: &[f64], out: &mut Vec<InfluentialCommunity>) {
    if view.num_alive() == 0 {
        return;
    }
    let alive = view.alive_mask();
    let (comp, count) = rsn_graph::connectivity::connected_components(view.graph(), alive);
    for c in 0..count as u32 {
        let vertices: Vec<u32> = (0..alive.len() as u32)
            .filter(|&v| comp[v as usize] == c)
            .collect();
        if vertices.is_empty() {
            continue;
        }
        let influence = vertices
            .iter()
            .map(|&v| scores[v as usize])
            .fold(f64::INFINITY, f64::min);
        out.push(InfluentialCommunity {
            vertices,
            influence,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two K4s joined by a bridge vertex; attributes favour the second K4.
    fn setup() -> (Graph, AttrMatrix) {
        let mut edges = vec![(3, 4), (4, 5)];
        for base in [0u32, 5u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let graph = Graph::from_edges(9, &edges);
        let rows: Vec<Vec<f64>> = (0..9).map(|v| vec![v as f64, 2.0 * v as f64]).collect();
        (graph, AttrMatrix::from_rows(&rows))
    }

    #[test]
    fn influ_finds_highest_influence_core() {
        let (graph, attrs) = setup();
        let influ = Influ::new(&graph, &attrs);
        let top = influ.top_r(3, 1, &[0.5]);
        assert_eq!(top.len(), 1);
        // the K4 {5,6,7,8} has the highest minimum score
        assert_eq!(top[0].vertices, vec![5, 6, 7, 8]);
        assert!(top[0].influence > 5.0);
    }

    #[test]
    fn influ_top_r_is_ordered_by_influence() {
        let (graph, attrs) = setup();
        let influ = Influ::new(&graph, &attrs);
        let top = influ.top_r(3, 5, &[0.5]);
        assert!(top.len() >= 2);
        for pair in top.windows(2) {
            assert!(pair[0].influence <= pair[1].influence);
        }
    }

    #[test]
    fn influ_plus_matches_influ() {
        let (graph, attrs) = setup();
        let influ = Influ::new(&graph, &attrs);
        let plus = InfluPlus::build(&graph, &attrs, 3, &[0.5]);
        assert!(!plus.is_empty());
        for r in 1..=3 {
            let a = influ.top_r(3, r, &[0.5]);
            let b = plus.top_r(r);
            assert_eq!(a, b, "Influ and Influ+ disagree for r = {r}");
        }
    }

    #[test]
    fn no_k_core_yields_nothing() {
        let (graph, attrs) = setup();
        let influ = Influ::new(&graph, &attrs);
        assert!(influ.top_r(5, 3, &[0.5]).is_empty());
    }
}

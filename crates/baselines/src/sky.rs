//! Skyline community search (Li et al., SIGMOD 2018).
//!
//! A skyline community is a maximal connected k-core whose d-dimensional
//! score vector `f(H) = (min_v x_1(v), …, min_v x_d(v))` is not dominated by
//! the score vector of any other connected k-core. The basic algorithm
//! recursively reduces the dimensionality: for every candidate threshold on
//! dimension d it constrains the graph to vertices with `x_d` above the
//! threshold and solves the (d−1)-dimensional problem on the surviving k-core;
//! `SkyPlus` (the space-partition variant) prunes thresholds that cannot
//! change the constrained vertex set. Both share the d = 1 base case — peel
//! minimum-`x_1` vertices while a k-core survives — and both blow up with d,
//! which is the behaviour the comparison figures report.

use rsn_dom::attrs::AttrMatrix;
use rsn_geom::rdominance::traditional_dominates;
use rsn_graph::graph::{Graph, VertexId};
use rsn_graph::subgraph::SubgraphView;

/// A skyline community and its score vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineCommunity {
    /// Member vertices (sorted).
    pub vertices: Vec<VertexId>,
    /// `f(H)`: per-dimension minimum over the members.
    pub score: Vec<f64>,
}

/// The basic skyline community algorithm (`Sky`).
pub fn skyline_communities(graph: &Graph, attrs: &AttrMatrix, k: u32) -> Vec<SkylineCommunity> {
    let d = attrs.dim();
    let alive = vec![true; graph.num_vertices()];
    let mut out = Vec::new();
    recurse(graph, attrs, k, d, &alive, false, &mut out);
    dedup_and_filter(out)
}

/// The space-partition variant (`Sky+`): identical output, fewer recursive
/// calls thanks to threshold pruning.
pub fn skyline_communities_pruned(
    graph: &Graph,
    attrs: &AttrMatrix,
    k: u32,
) -> Vec<SkylineCommunity> {
    let d = attrs.dim();
    let alive = vec![true; graph.num_vertices()];
    let mut out = Vec::new();
    recurse(graph, attrs, k, d, &alive, true, &mut out);
    dedup_and_filter(out)
}

fn recurse(
    graph: &Graph,
    attrs: &AttrMatrix,
    k: u32,
    dim: usize,
    alive: &[bool],
    prune: bool,
    out: &mut Vec<SkylineCommunity>,
) {
    if dim == 0 {
        return;
    }
    if dim == 1 {
        out.extend(one_dimensional(graph, attrs, k, 0, alive));
        return;
    }
    // Candidate thresholds: the distinct values of dimension `dim - 1` among
    // the alive vertices (ascending). Constraining to >= threshold and
    // recursing on the remaining dimensions enumerates every skyline value of
    // this dimension.
    let mut thresholds: Vec<f64> = (0..alive.len())
        .filter(|&v| alive[v])
        .map(|v| attrs.row(v)[dim - 1])
        .collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();
    let mut previous_count = usize::MAX;
    for &threshold in &thresholds {
        let constrained: Vec<bool> = (0..alive.len())
            .map(|v| alive[v] && attrs.row(v)[dim - 1] >= threshold)
            .collect();
        let count = constrained.iter().filter(|&&b| b).count();
        if prune && count == previous_count {
            // Space-partition pruning: the constrained vertex set did not
            // change, so the recursion would repeat the previous results.
            continue;
        }
        previous_count = count;
        if count == 0 {
            break;
        }
        // Restrict to the k-core of the constrained subgraph.
        let mut view = SubgraphView::from_mask(graph, &constrained);
        view.peel_to_k_core(k);
        if view.num_alive() == 0 {
            break;
        }
        recurse(graph, attrs, k, dim - 1, view.alive_mask(), prune, out);
    }
}

/// d = 1 base case: all maximal connected k-cores that appear while peeling
/// minimum-value vertices of dimension `dim_index`, scored by the full vector.
fn one_dimensional(
    graph: &Graph,
    attrs: &AttrMatrix,
    k: u32,
    dim_index: usize,
    alive: &[bool],
) -> Vec<SkylineCommunity> {
    let mut view = SubgraphView::from_mask(graph, alive);
    view.peel_to_k_core(k);
    let mut out = Vec::new();
    loop {
        if view.num_alive() == 0 {
            break;
        }
        record(graph, attrs, &view, &mut out);
        // delete the minimum-value alive vertex in the peeling dimension
        let min_v = view.alive_vertices().into_iter().min_by(|&a, &b| {
            attrs.row(a as usize)[dim_index].total_cmp(&attrs.row(b as usize)[dim_index])
        });
        let Some(v) = min_v else { break };
        view.delete_cascade(v, k);
    }
    out
}

fn record(
    graph: &Graph,
    attrs: &AttrMatrix,
    view: &SubgraphView<'_>,
    out: &mut Vec<SkylineCommunity>,
) {
    let alive = view.alive_mask();
    let (comp, count) = rsn_graph::connectivity::connected_components(graph, alive);
    for c in 0..count as u32 {
        let vertices: Vec<u32> = (0..alive.len() as u32)
            .filter(|&v| comp[v as usize] == c)
            .collect();
        if vertices.is_empty() {
            continue;
        }
        let d = attrs.dim();
        let score: Vec<f64> = (0..d)
            .map(|i| {
                vertices
                    .iter()
                    .map(|&v| attrs.row(v as usize)[i])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        out.push(SkylineCommunity { vertices, score });
    }
}

/// Removes duplicates and dominated entries (the final skyline filter).
fn dedup_and_filter(mut all: Vec<SkylineCommunity>) -> Vec<SkylineCommunity> {
    all.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    all.dedup_by(|a, b| a.vertices == b.vertices);
    let mut keep = vec![true; all.len()];
    for i in 0..all.len() {
        for j in 0..all.len() {
            if i != j && keep[i] && traditional_dominates(&all[j].score, &all[i].score) {
                keep[i] = false;
            }
        }
    }
    all.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two K4s with opposite attribute strengths plus a weak bridge.
    fn setup() -> (Graph, AttrMatrix) {
        let mut edges = vec![(3, 4), (4, 5)];
        for base in [0u32, 5u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let graph = Graph::from_edges(9, &edges);
        let mut attrs = Vec::new();
        for v in 0..9u32 {
            if v <= 3 {
                attrs.push(vec![8.0 + v as f64 * 0.1, 2.0]);
            } else if v == 4 {
                attrs.push(vec![1.0, 1.0]);
            } else {
                attrs.push(vec![2.0, 8.0 + v as f64 * 0.1]);
            }
        }
        (graph, AttrMatrix::from_rows(&attrs))
    }

    #[test]
    fn finds_both_skyline_sides() {
        let (graph, attrs) = setup();
        let sky = skyline_communities(&graph, &attrs, 3);
        assert!(sky.len() >= 2, "expected at least the two K4s, got {sky:?}");
        let has_left = sky.iter().any(|c| c.vertices == vec![0, 1, 2, 3]);
        let has_right = sky.iter().any(|c| c.vertices == vec![5, 6, 7, 8]);
        assert!(has_left && has_right);
        // none of the reported communities dominates another
        for a in &sky {
            for b in &sky {
                if a.vertices != b.vertices {
                    assert!(!traditional_dominates(&a.score, &b.score) || a.score == b.score);
                }
            }
        }
    }

    #[test]
    fn pruned_variant_matches_basic() {
        let (graph, attrs) = setup();
        let basic = skyline_communities(&graph, &attrs, 3);
        let pruned = skyline_communities_pruned(&graph, &attrs, 3);
        let set = |v: &[SkylineCommunity]| {
            let mut s: Vec<Vec<u32>> = v.iter().map(|c| c.vertices.clone()).collect();
            s.sort();
            s
        };
        assert_eq!(set(&basic), set(&pruned));
    }

    #[test]
    fn empty_when_no_core() {
        let (graph, attrs) = setup();
        assert!(skyline_communities(&graph, &attrs, 5).is_empty());
    }
}

//! # rsn-baselines
//!
//! Comparison algorithms used in the paper's evaluation (Fig. 13, Fig. 14 and
//! the case studies of Fig. 15/16):
//!
//! * [`influ`] — influential community search (Li et al., PVLDB'15): the
//!   community model with a single numerical attribute (here: the weighted sum
//!   of the d attributes under one concrete weight vector). `Influ` recomputes
//!   the peeling per query; `InfluPlus` precomputes an ICP-style peeling index
//!   and answers queries from it.
//! * [`sky`] — skyline community search (Li et al., SIGMOD'18): communities
//!   whose d-dimensional score vectors are not dominated. `Sky` is the basic
//!   recursive dimension-reduction algorithm; `SkyPlus` adds space-partition
//!   pruning. Both become intractable as d grows, which is exactly the
//!   behaviour Fig. 13(c)/14(c) report.
//! * [`atc`] — an ATC-style attributed k-truss community (Huang & Lakshmanan,
//!   PVLDB'17) used in the Fig. 15(h) case-study comparison.
//!
//! All baselines operate on the same maximal (k,t)-core extraction as the MAC
//! algorithms so that comparisons isolate the community-model cost.

pub mod atc;
pub mod influ;
pub mod sky;

pub use atc::atc_community;
pub use influ::{Influ, InfluPlus};
pub use sky::{skyline_communities, skyline_communities_pruned, SkylineCommunity};

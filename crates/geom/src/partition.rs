//! The binary arrangement index of Algorithm 2.
//!
//! The global search partitions (sub-regions of) `R` by inserting the
//! supporting hyperplanes of competitor half-spaces. Algorithm 2 maintains a
//! binary tree: a hyperplane either fully covers a leaf cell (no structural
//! change) or splits it into a negative-side child and a positive-side child.
//! The leaves of the tree are exactly the sub-partitions of the arrangement.

use crate::cell::{Cell, CellSide};
use crate::halfspace::HalfSpace;

#[derive(Debug, Clone)]
struct PartitionNode {
    cell: Cell,
    children: Option<(usize, usize)>,
}

/// Binary arrangement index over a base cell.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    nodes: Vec<PartitionNode>,
    root: usize,
    inserted: usize,
}

impl PartitionTree {
    /// Creates the index for a base cell (usually the whole region `R` or one
    /// sub-partition `ρ` of it).
    pub fn new(base: Cell) -> Self {
        PartitionTree {
            nodes: vec![PartitionNode {
                cell: base,
                children: None,
            }],
            root: 0,
            inserted: 0,
        }
    }

    /// Number of hyperplanes inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.inserted
    }

    /// Inserts a hyperplane, splitting every straddled leaf (Algorithm 2).
    /// Degenerate half-spaces (identical score functions) are ignored.
    pub fn insert(&mut self, hp: &HalfSpace) {
        if hp.is_degenerate() {
            return;
        }
        self.inserted += 1;
        self.insert_at(self.root, hp);
    }

    fn insert_at(&mut self, node: usize, hp: &HalfSpace) {
        match self.nodes[node].children {
            Some((left, right)) => {
                self.insert_at(left, hp);
                self.insert_at(right, hp);
            }
            None => {
                match self.nodes[node].cell.classify(hp) {
                    // Lines 1-2 of Algorithm 2: the leaf is fully covered by
                    // one side; nothing to split.
                    CellSide::Positive | CellSide::Negative | CellSide::Empty => {}
                    CellSide::Straddles => {
                        let neg = self.nodes[node].cell.with_halfspace(hp.negated());
                        let pos = self.nodes[node].cell.with_halfspace(hp.clone());
                        let li = self.nodes.len();
                        self.nodes.push(PartitionNode {
                            cell: neg,
                            children: None,
                        });
                        let ri = self.nodes.len();
                        self.nodes.push(PartitionNode {
                            cell: pos,
                            children: None,
                        });
                        self.nodes[node].children = Some((li, ri));
                    }
                }
            }
        }
    }

    /// The leaf cells (sub-partitions) of the arrangement.
    pub fn leaves(&self) -> Vec<&Cell> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    /// Number of leaf cells.
    pub fn num_leaves(&self) -> usize {
        self.leaves().len()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.cell.memory_bytes() + std::mem::size_of::<Option<(usize, usize)>>())
            .sum()
    }

    fn collect_leaves<'a>(&'a self, node: usize, out: &mut Vec<&'a Cell>) {
        match self.nodes[node].children {
            Some((l, r)) => {
                self.collect_leaves(l, out);
                self.collect_leaves(r, out);
            }
            None => out.push(&self.nodes[node].cell),
        }
    }
}

/// Convenience wrapper: builds the arrangement of `halfspaces` inside `base`
/// and returns the resulting sub-partitions.
pub fn arrange(base: &Cell, halfspaces: &[HalfSpace]) -> Vec<Cell> {
    let mut tree = PartitionTree::new(base.clone());
    for hp in halfspaces {
        tree.insert(hp);
    }
    tree.leaves().into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::PrefRegion;

    fn base() -> Cell {
        Cell::from_region(&PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap())
    }

    #[test]
    fn single_split_produces_two_leaves() {
        let mut tree = PartitionTree::new(base());
        assert_eq!(tree.num_leaves(), 1);
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.3)); // w1 >= 0.3
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.num_inserted(), 1);
    }

    #[test]
    fn covering_hyperplane_does_not_split() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], 0.5)); // w1 >= -0.5 always true
        assert_eq!(tree.num_leaves(), 1);
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.9)); // w1 >= 0.9 never true
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn degenerate_hyperplane_ignored() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![0.0, 0.0], 0.0));
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.num_inserted(), 0);
    }

    #[test]
    fn paper_arrangement_of_three_halfspaces() {
        // Fig. 5(a): inserting HS1, HS2, HS3 for the leaves {v7, v5, v1} of
        // G_d produces 4 sub-partitions of R.
        let v1 = [8.8, 3.6, 2.2];
        let v5 = [5.0, 7.6, 3.1];
        let v7 = [2.1, 5.0, 5.1];
        let hs1 = HalfSpace::score_at_least(&v7, &v5);
        let hs2 = HalfSpace::score_at_least(&v7, &v1);
        let hs3 = HalfSpace::score_at_least(&v1, &v5);
        let cells = arrange(&base(), &[hs1, hs2, hs3]);
        assert_eq!(cells.len(), 4, "expected the 4 partitions of Fig. 5(a)");
    }

    #[test]
    fn leaves_tile_the_base_cell() {
        let halfspaces = vec![
            HalfSpace::new(vec![1.0, 0.0], -0.3),
            HalfSpace::new(vec![0.0, 1.0], -0.3),
            HalfSpace::new(vec![1.0, -1.0], 0.0),
        ];
        let cells = arrange(&base(), &halfspaces);
        assert!(cells.len() >= 4);
        // every sampled point of the base lies in at least one leaf, and the
        // interiors of distinct leaves do not overlap (checked via samples)
        let b = base();
        for i in 0..=10 {
            for j in 0..=10 {
                let w = [0.1 + 0.04 * i as f64, 0.2 + 0.02 * j as f64];
                if !b.contains(&w) {
                    continue;
                }
                let covering = cells.iter().filter(|c| c.contains(&w)).count();
                assert!(covering >= 1, "point {w:?} not covered");
            }
        }
        // interior samples of each leaf belong only to that leaf
        for (i, c) in cells.iter().enumerate() {
            if let Some(p) = c.sample_point() {
                let owners: Vec<usize> = cells
                    .iter()
                    .enumerate()
                    .filter(|(_, other)| other.contains(&p))
                    .map(|(j, _)| j)
                    .collect();
                assert!(owners.contains(&i));
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.3));
        assert!(tree.memory_bytes() > 0);
    }
}

//! The binary arrangement index of Algorithm 2.
//!
//! The global search partitions (sub-regions of) `R` by inserting the
//! supporting hyperplanes of competitor half-spaces. Algorithm 2 maintains a
//! binary tree: a hyperplane either fully covers a leaf cell (no structural
//! change) or splits it into a negative-side child and a positive-side child.
//! The leaves of the tree are exactly the sub-partitions of the arrangement.

use crate::cell::{Cell, CellSide};
use crate::halfspace::HalfSpace;

#[derive(Debug, Clone)]
struct PartitionNode {
    cell: Cell,
    children: Option<(usize, usize)>,
}

/// Binary arrangement index over a base cell.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    nodes: Vec<PartitionNode>,
    root: usize,
    inserted: usize,
}

impl PartitionTree {
    /// Creates the index for a base cell (usually the whole region `R` or one
    /// sub-partition `ρ` of it).
    pub fn new(base: Cell) -> Self {
        PartitionTree {
            nodes: vec![PartitionNode {
                cell: base,
                children: None,
            }],
            root: 0,
            inserted: 0,
        }
    }

    /// Number of hyperplanes inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.inserted
    }

    /// Inserts a hyperplane, splitting every straddled leaf (Algorithm 2).
    /// Degenerate half-spaces (identical score functions) are ignored.
    pub fn insert(&mut self, hp: &HalfSpace) {
        if hp.is_degenerate() {
            return;
        }
        self.inserted += 1;
        self.insert_at(self.root, hp);
    }

    fn insert_at(&mut self, node: usize, hp: &HalfSpace) {
        match self.nodes[node].children {
            Some((left, right)) => {
                self.insert_at(left, hp);
                self.insert_at(right, hp);
            }
            None => {
                match self.nodes[node].cell.classify(hp) {
                    // Lines 1-2 of Algorithm 2: the leaf is fully covered by
                    // one side; nothing to split.
                    CellSide::Positive | CellSide::Negative | CellSide::Empty => {}
                    CellSide::Straddles => {
                        let neg = self.nodes[node].cell.with_halfspace(hp.negated());
                        let pos = self.nodes[node].cell.with_halfspace(hp.clone());
                        let li = self.nodes.len();
                        self.nodes.push(PartitionNode {
                            cell: neg,
                            children: None,
                        });
                        let ri = self.nodes.len();
                        self.nodes.push(PartitionNode {
                            cell: pos,
                            children: None,
                        });
                        self.nodes[node].children = Some((li, ri));
                    }
                }
            }
        }
    }

    /// The leaf cells (sub-partitions) of the arrangement.
    pub fn leaves(&self) -> Vec<&Cell> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    /// Number of leaf cells.
    pub fn num_leaves(&self) -> usize {
        self.leaves().len()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.cell.memory_bytes() + std::mem::size_of::<Option<(usize, usize)>>())
            .sum()
    }

    fn collect_leaves<'a>(&'a self, node: usize, out: &mut Vec<&'a Cell>) {
        match self.nodes[node].children {
            Some((l, r)) => {
                self.collect_leaves(l, out);
                self.collect_leaves(r, out);
            }
            None => out.push(&self.nodes[node].cell),
        }
    }
}

/// Convenience wrapper: builds the arrangement of `halfspaces` inside `base`
/// and returns the resulting sub-partitions.
pub fn arrange(base: &Cell, halfspaces: &[HalfSpace]) -> Vec<Cell> {
    let mut tree = PartitionTree::new(base.clone());
    for hp in halfspaces {
        tree.insert(hp);
    }
    tree.leaves().into_iter().cloned().collect()
}

#[derive(Debug)]
struct PoolNode {
    cell: Cell,
    children: Option<(u32, u32)>,
}

/// Recyclable state for [`arrange_into`]: tree nodes, cell husks, and
/// half-space husks all survive across arrangements, so a steady-state query
/// rebuilds its arrangements with zero heap allocation once the pools have
/// warmed up. Cells handed out in the leaf output flow back in through
/// [`ArrangeScratch::recycle_cell`] when their consumer is done with them.
#[derive(Debug, Default)]
pub struct ArrangeScratch {
    nodes: Vec<PoolNode>,
    /// Active prefix of `nodes` for the arrangement being built.
    len: usize,
    free_cells: Vec<Cell>,
    spare_hs: Vec<HalfSpace>,
}

impl ArrangeScratch {
    /// Creates an empty scratch; pools grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a no-longer-needed cell to the pool so a later arrangement can
    /// reuse its buffers.
    pub fn recycle_cell(&mut self, cell: Cell) {
        self.free_cells.push(cell);
    }

    /// A pooled half-space husk store, shared with callers that clip cells
    /// outside the arrangement (e.g. a root cell refresh).
    pub fn spare_halfspaces(&mut self) -> &mut Vec<HalfSpace> {
        &mut self.spare_hs
    }

    /// Index of a fresh leaf node; reuses a retired slot when one exists.
    fn alloc_node(&mut self) -> u32 {
        let idx = self.len;
        if idx == self.nodes.len() {
            let cell = self.free_cells.pop().unwrap_or_else(empty_cell_husk);
            self.nodes.push(PoolNode {
                cell,
                children: None,
            });
        } else {
            self.nodes[idx].children = None;
        }
        self.len += 1;
        idx as u32
    }

    fn insert_at(&mut self, node: usize, hp: &HalfSpace) {
        if let Some((l, r)) = self.nodes[node].children {
            self.insert_at(l as usize, hp);
            self.insert_at(r as usize, hp);
            return;
        }
        if self.nodes[node].cell.classify(hp) != CellSide::Straddles {
            // Lines 1-2 of Algorithm 2: fully covered by one side (or empty).
            return;
        }
        let li = self.alloc_node() as usize;
        let ri = self.alloc_node() as usize;
        debug_assert!(node < li && li + 1 == ri);
        let (head, tail) = self.nodes.split_at_mut(li);
        let parent = &head[node].cell;
        let (left, right) = tail.split_at_mut(1);
        left[0]
            .cell
            .assign_clip(parent, hp, true, &mut self.spare_hs);
        right[0]
            .cell
            .assign_clip(parent, hp, false, &mut self.spare_hs);
        self.nodes[node].children = Some((li as u32, ri as u32));
    }

    fn collect_leaves(&mut self, node: usize, out: &mut Vec<Cell>) {
        match self.nodes[node].children {
            Some((l, r)) => {
                self.collect_leaves(l as usize, out);
                self.collect_leaves(r as usize, out);
            }
            None => {
                let husk = self.free_cells.pop().unwrap_or_else(empty_cell_husk);
                out.push(std::mem::replace(&mut self.nodes[node].cell, husk));
            }
        }
    }
}

fn empty_cell_husk() -> Cell {
    Cell::from_region(&crate::region::PrefRegion::from_ranges(&[]).expect("empty region is valid"))
}

/// Pool-backed equivalent of [`arrange`]: builds the arrangement of the
/// half-spaces yielded by `hps` inside `base` and appends the leaf cells to
/// `out` in the same order `arrange` returns them. Returns the number of
/// leaves appended. The cells are bitwise identical to the allocating path;
/// only their backing buffers are recycled.
pub fn arrange_into<'a>(
    scratch: &mut ArrangeScratch,
    base: &Cell,
    hps: impl IntoIterator<Item = &'a HalfSpace>,
    out: &mut Vec<Cell>,
) -> usize {
    scratch.len = 0;
    let root = scratch.alloc_node() as usize;
    scratch.nodes[root]
        .cell
        .assign_from(base, &mut scratch.spare_hs);
    for hp in hps {
        if hp.is_degenerate() {
            continue;
        }
        scratch.insert_at(root, hp);
    }
    let before = out.len();
    scratch.collect_leaves(root, out);
    out.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::PrefRegion;

    fn base() -> Cell {
        Cell::from_region(&PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap())
    }

    #[test]
    fn single_split_produces_two_leaves() {
        let mut tree = PartitionTree::new(base());
        assert_eq!(tree.num_leaves(), 1);
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.3)); // w1 >= 0.3
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.num_inserted(), 1);
    }

    #[test]
    fn covering_hyperplane_does_not_split() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], 0.5)); // w1 >= -0.5 always true
        assert_eq!(tree.num_leaves(), 1);
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.9)); // w1 >= 0.9 never true
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn degenerate_hyperplane_ignored() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![0.0, 0.0], 0.0));
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.num_inserted(), 0);
    }

    #[test]
    fn paper_arrangement_of_three_halfspaces() {
        // Fig. 5(a): inserting HS1, HS2, HS3 for the leaves {v7, v5, v1} of
        // G_d produces 4 sub-partitions of R.
        let v1 = [8.8, 3.6, 2.2];
        let v5 = [5.0, 7.6, 3.1];
        let v7 = [2.1, 5.0, 5.1];
        let hs1 = HalfSpace::score_at_least(&v7, &v5);
        let hs2 = HalfSpace::score_at_least(&v7, &v1);
        let hs3 = HalfSpace::score_at_least(&v1, &v5);
        let cells = arrange(&base(), &[hs1, hs2, hs3]);
        assert_eq!(cells.len(), 4, "expected the 4 partitions of Fig. 5(a)");
    }

    #[test]
    fn leaves_tile_the_base_cell() {
        let halfspaces = vec![
            HalfSpace::new(vec![1.0, 0.0], -0.3),
            HalfSpace::new(vec![0.0, 1.0], -0.3),
            HalfSpace::new(vec![1.0, -1.0], 0.0),
        ];
        let cells = arrange(&base(), &halfspaces);
        assert!(cells.len() >= 4);
        // every sampled point of the base lies in at least one leaf, and the
        // interiors of distinct leaves do not overlap (checked via samples)
        let b = base();
        for i in 0..=10 {
            for j in 0..=10 {
                let w = [0.1 + 0.04 * i as f64, 0.2 + 0.02 * j as f64];
                if !b.contains(&w) {
                    continue;
                }
                let covering = cells.iter().filter(|c| c.contains(&w)).count();
                assert!(covering >= 1, "point {w:?} not covered");
            }
        }
        // interior samples of each leaf belong only to that leaf
        for (i, c) in cells.iter().enumerate() {
            if let Some(p) = c.sample_point() {
                let owners: Vec<usize> = cells
                    .iter()
                    .enumerate()
                    .filter(|(_, other)| other.contains(&p))
                    .map(|(j, _)| j)
                    .collect();
                assert!(owners.contains(&i));
            }
        }
    }

    /// `arrange_into` must reproduce `arrange` exactly — same leaves, same
    /// order — including when the scratch (and the recycled cells flowing
    /// back into it) is reused across many arrangements of different shapes.
    #[test]
    fn pooled_arrangement_matches_allocating_arrangement() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0xA22A);
        let mut scratch = ArrangeScratch::new();
        let mut out = Vec::new();
        for round in 0..60 {
            let n_hs = rng.random_range(0..6usize);
            let hps: Vec<HalfSpace> = (0..n_hs)
                .map(|_| {
                    HalfSpace::new(
                        vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
                        rng.random_range(-0.6..0.6),
                    )
                })
                .collect();
            let reference = arrange(&base(), &hps);
            out.clear();
            let appended = arrange_into(&mut scratch, &base(), hps.iter(), &mut out);
            assert_eq!(appended, out.len());
            assert_eq!(out, reference, "round {round}: pooled leaves diverged");
            // hand a few leaves back to the pool, as the search loop does
            for cell in out.drain(..) {
                if rng.random_bool(0.7) {
                    scratch.recycle_cell(cell);
                }
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let mut tree = PartitionTree::new(base());
        tree.insert(&HalfSpace::new(vec![1.0, 0.0], -0.3));
        assert!(tree.memory_bytes() > 0);
    }
}

//! # rsn-geom
//!
//! Preference-domain geometry for the reproduction of *"Multi-attributed
//! Community Search in Road-social Networks"* (ICDE 2021).
//!
//! With `d` numerical attributes and the weight vector constrained to the
//! simplex (`w_i ∈ (0,1)`, `Σ w_i = 1`), the paper drops the last weight and
//! works in the (d−1)-dimensional *preference domain* (Section II-C). The
//! score of a vertex becomes an affine function of the reduced weight vector,
//! so every pairwise comparison `S(u) ≥ S(v)` is a half-space, the region of
//! interest `R` is a convex polytope (an axis-parallel box by default), and
//! r-dominance (Definition 4) is "the half-space covers R".
//!
//! This crate provides those geometric building blocks:
//!
//! * [`weights`] — reduced weight vectors, score evaluation, pivot vectors.
//! * [`region::PrefRegion`] — the axis-parallel region `R`, its corners and
//!   pivot (used as the BBS sorting key in `rsn-dom`).
//! * [`halfspace::HalfSpace`] — the affine form `S(u) − S(v)` as a half-space.
//! * [`rdominance`] — the three-way r-dominance test of Fig. 3.
//! * [`lp`] — a small dense two-phase simplex solver used to classify general
//!   convex cells against half-spaces.
//! * [`cell::Cell`] — a convex sub-partition of `R` in H-representation.
//! * [`partition`] — the binary arrangement index of Algorithm 2.

pub mod cell;
pub mod halfspace;
pub mod lp;
pub mod partition;
pub mod rdominance;
pub mod region;
pub mod weights;

pub use cell::{Cell, CellSide};
pub use halfspace::HalfSpace;
pub use partition::{arrange, arrange_into, ArrangeScratch, PartitionTree};
pub use rdominance::{r_dominance, DominanceRelation};
pub use region::PrefRegion;
pub use weights::WeightVector;

/// Numerical tolerance used throughout the geometric predicates.
pub const EPS: f64 = 1e-9;

/// Errors produced by the preference-domain geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A weight vector or region had the wrong dimensionality.
    DimensionMismatch {
        /// Expected number of reduced dimensions (d − 1).
        expected: usize,
        /// Provided number of dimensions.
        got: usize,
    },
    /// The region or weight vector violates the simplex constraints.
    InvalidPreference(String),
    /// The requested dimensionality is unsupported (d must be ≥ 1).
    InvalidDimension(usize),
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            GeomError::InvalidPreference(msg) => write!(f, "invalid preference input: {msg}"),
            GeomError::InvalidDimension(d) => write!(f, "invalid dimensionality {d}"),
        }
    }
}

impl std::error::Error for GeomError {}

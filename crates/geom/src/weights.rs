//! Reduced weight vectors and score evaluation.
//!
//! The paper's Eq. 1 scores a vertex as `S(v) = Σ_{i=1..d} w_i x_i` with
//! `Σ w_i = 1`. Dropping `w_d = 1 − Σ_{i<d} w_i` maps the weight space to the
//! (d−1)-dimensional preference domain, and the score becomes the affine form
//! `S(v) = x_d + Σ_{i<d} w_i (x_i − x_d)`.

use crate::{GeomError, EPS};
use serde::{Deserialize, Serialize};

/// A reduced weight vector `(w_1, …, w_{d−1})` in the preference domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightVector {
    reduced: Vec<f64>,
}

impl WeightVector {
    /// Creates a reduced weight vector, validating the simplex constraints
    /// `w_i ≥ 0` and `Σ_{i<d} w_i ≤ 1` (the paper uses open intervals; the
    /// closed boundary is accepted here with a tolerance so that region
    /// corners remain representable).
    pub fn new(reduced: Vec<f64>) -> Result<Self, GeomError> {
        for &w in &reduced {
            if !(w.is_finite() && (-EPS..=1.0 + EPS).contains(&w)) {
                return Err(GeomError::InvalidPreference(format!(
                    "weight {w} outside [0, 1]"
                )));
            }
        }
        let sum: f64 = reduced.iter().sum();
        if sum > 1.0 + EPS {
            return Err(GeomError::InvalidPreference(format!(
                "reduced weights sum to {sum} > 1"
            )));
        }
        Ok(WeightVector { reduced })
    }

    /// Creates a reduced weight vector without validation (internal use by
    /// geometric routines that already guarantee validity).
    pub(crate) fn new_unchecked(reduced: Vec<f64>) -> Self {
        WeightVector { reduced }
    }

    /// Uniform preference: every attribute weighted `1/d`.
    pub fn uniform(d: usize) -> Result<Self, GeomError> {
        if d == 0 {
            return Err(GeomError::InvalidDimension(0));
        }
        Ok(WeightVector {
            reduced: vec![1.0 / d as f64; d - 1],
        })
    }

    /// Builds the reduced form from a full `d`-dimensional weight vector.
    pub fn from_full(full: &[f64]) -> Result<Self, GeomError> {
        if full.is_empty() {
            return Err(GeomError::InvalidDimension(0));
        }
        let sum: f64 = full.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GeomError::InvalidPreference(format!(
                "full weights must sum to 1, got {sum}"
            )));
        }
        Self::new(full[..full.len() - 1].to_vec())
    }

    /// The reduced coordinates `(w_1, …, w_{d−1})`.
    pub fn reduced(&self) -> &[f64] {
        &self.reduced
    }

    /// Number of reduced dimensions (d − 1).
    pub fn reduced_dim(&self) -> usize {
        self.reduced.len()
    }

    /// Number of attributes d.
    pub fn full_dim(&self) -> usize {
        self.reduced.len() + 1
    }

    /// The implied last weight `w_d = 1 − Σ_{i<d} w_i`.
    pub fn last_weight(&self) -> f64 {
        1.0 - self.reduced.iter().sum::<f64>()
    }

    /// The full `d`-dimensional weight vector.
    pub fn full(&self) -> Vec<f64> {
        let mut full = self.reduced.clone();
        full.push(self.last_weight());
        full
    }

    /// Score of an attribute vector under this weight vector (Eq. 1).
    pub fn score(&self, attrs: &[f64]) -> f64 {
        debug_assert_eq!(attrs.len(), self.full_dim());
        let xd = attrs[attrs.len() - 1];
        let mut s = xd;
        for (i, &w) in self.reduced.iter().enumerate() {
            s += w * (attrs[i] - xd);
        }
        s
    }
}

/// Score of `attrs` under an explicit reduced weight slice (avoids building a
/// [`WeightVector`] in hot loops).
#[inline]
pub fn score_reduced(attrs: &[f64], reduced_w: &[f64]) -> f64 {
    let xd = attrs[attrs.len() - 1];
    let mut s = xd;
    for (i, &w) in reduced_w.iter().enumerate() {
        s += w * (attrs[i] - xd);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_and_full_roundtrip() {
        let w = WeightVector::new(vec![0.2, 0.3]).unwrap();
        assert_eq!(w.reduced_dim(), 2);
        assert_eq!(w.full_dim(), 3);
        assert!((w.last_weight() - 0.5).abs() < 1e-12);
        assert_eq!(w.full(), vec![0.2, 0.3, 0.5]);
        let w2 = WeightVector::from_full(&[0.2, 0.3, 0.5]).unwrap();
        assert_eq!(w, w2);
    }

    #[test]
    fn paper_example_score() {
        // Fig. 2(a): v7 = (2.1, 5.0, 5.1), weights (0.2, 0.3, 0.5) -> 4.47
        let w = WeightVector::new(vec![0.2, 0.3]).unwrap();
        let s = w.score(&[2.1, 5.0, 5.1]);
        assert!((s - 4.47).abs() < 1e-9, "score was {s}");
    }

    #[test]
    fn score_matches_weighted_sum() {
        let w = WeightVector::new(vec![0.1, 0.25, 0.3]).unwrap();
        let attrs = [4.0, 2.0, 8.0, 1.0];
        let full = w.full();
        let expect: f64 = attrs.iter().zip(full.iter()).map(|(x, w)| x * w).sum();
        assert!((w.score(&attrs) - expect).abs() < 1e-12);
        assert!((score_reduced(&attrs, w.reduced()) - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights() {
        let w = WeightVector::uniform(4).unwrap();
        assert_eq!(w.reduced_dim(), 3);
        assert!((w.last_weight() - 0.25).abs() < 1e-12);
        assert!(WeightVector::uniform(0).is_err());
        // d = 1: a single attribute, empty reduced vector, w_1 = 1
        let w1 = WeightVector::uniform(1).unwrap();
        assert_eq!(w1.reduced_dim(), 0);
        assert!((w1.score(&[7.5]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(WeightVector::new(vec![0.7, 0.6]).is_err());
        assert!(WeightVector::new(vec![-0.2]).is_err());
        assert!(WeightVector::new(vec![f64::NAN]).is_err());
        assert!(WeightVector::from_full(&[0.3, 0.3]).is_err());
        assert!(WeightVector::from_full(&[]).is_err());
    }
}

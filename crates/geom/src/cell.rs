//! Convex sub-partitions (cells) of the region `R` in H-representation.
//!
//! A cell is the intersection of the axis-parallel box of `R` with a set of
//! half-space constraints accumulated by the arrangement of Algorithm 2.
//! Classification of a cell against a new hyperplane (does the cell lie on the
//! positive side, the negative side, or does the hyperplane split it?) is done
//! with two small linear programs.

use crate::halfspace::HalfSpace;
use crate::lp::{self, LpOutcome};
use crate::region::PrefRegion;
use crate::EPS;
use serde::{Deserialize, Serialize};

/// Relation of a cell to a half-space `f(w) ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSide {
    /// The cell is entirely contained in the half-space (`f ≥ 0` everywhere).
    Positive,
    /// The cell is entirely contained in the complement (`f ≤ 0` everywhere).
    Negative,
    /// The hyperplane genuinely splits the cell.
    Straddles,
    /// The cell has no feasible point at all.
    Empty,
}

/// A convex cell: box bounds plus accumulated half-space constraints.
///
/// Two-dimensional cells (the `d = 3` attribute regime of every preset and
/// the paper's running example) additionally carry their vertex
/// representation — a convex polygon maintained by Sutherland–Hodgman
/// clipping. Classification, extreme values, and sample points then cost
/// O(#vertices) affine evaluations instead of dense-simplex LP solves, which
/// is where the global search spent almost all of its time. Other
/// dimensionalities fall back to the LP path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    lows: Vec<f64>,
    highs: Vec<f64>,
    constraints: Vec<HalfSpace>,
    /// Convex-polygon vertices (counter-clockwise) when `dim() == 2`.
    poly: Option<Vec<(f64, f64)>>,
}

impl Cell {
    /// The cell covering the whole region `R`.
    pub fn from_region(region: &PrefRegion) -> Self {
        let lows = region.lows().to_vec();
        let highs = region.highs().to_vec();
        let poly = if lows.len() == 2 {
            Some(vec![
                (lows[0], lows[1]),
                (highs[0], lows[1]),
                (highs[0], highs[1]),
                (lows[0], highs[1]),
            ])
        } else {
            None
        };
        Cell {
            lows,
            highs,
            constraints: Vec::new(),
            poly,
        }
    }

    /// In-place variant of [`Cell::from_region`]: refills this cell reusing
    /// its buffers, so a session-held root cell can be rebuilt per query
    /// without reallocating. Any leftover constraints are dropped (a recycled
    /// root carries none in steady state).
    pub fn assign_region(&mut self, region: &PrefRegion) {
        self.lows.clear();
        self.lows.extend_from_slice(region.lows());
        self.highs.clear();
        self.highs.extend_from_slice(region.highs());
        self.constraints.clear();
        if self.lows.len() == 2 {
            let mut poly = self.poly.take().unwrap_or_default();
            poly.clear();
            poly.push((self.lows[0], self.lows[1]));
            poly.push((self.highs[0], self.lows[1]));
            poly.push((self.highs[0], self.highs[1]));
            poly.push((self.lows[0], self.highs[1]));
            self.poly = Some(poly);
        } else {
            self.poly = None;
        }
    }

    /// In-place copy from another cell, reusing `self`'s buffers. Excess
    /// constraint half-spaces are parked in `spare`; missing ones are
    /// recovered from it.
    pub fn assign_from(&mut self, src: &Cell, spare: &mut Vec<HalfSpace>) {
        self.lows.clear();
        self.lows.extend_from_slice(&src.lows);
        self.highs.clear();
        self.highs.extend_from_slice(&src.highs);
        while self.constraints.len() > src.constraints.len() {
            spare.push(self.constraints.pop().expect("len checked"));
        }
        while self.constraints.len() < src.constraints.len() {
            let husk = spare
                .pop()
                .unwrap_or_else(|| HalfSpace::new(Vec::new(), 0.0));
            self.constraints.push(husk);
        }
        for (dst, s) in self.constraints.iter_mut().zip(&src.constraints) {
            dst.assign_from(s);
        }
        match &src.poly {
            Some(src_poly) => {
                let mut poly = self.poly.take().unwrap_or_default();
                poly.clear();
                poly.extend_from_slice(src_poly);
                self.poly = Some(poly);
            }
            None => self.poly = None,
        }
    }

    /// In-place variant of [`Cell::with_halfspace`]: makes `self` the clip of
    /// `src` by `hs` (or by `¬hs` when `negate` is set, bitwise identical to
    /// clipping by [`HalfSpace::negated`]), reusing `self`'s buffers. Excess
    /// constraint half-spaces are parked in `spare` and missing ones are
    /// recovered from it, so pooled cells cycle without heap traffic.
    pub fn assign_clip(
        &mut self,
        src: &Cell,
        hs: &HalfSpace,
        negate: bool,
        spare: &mut Vec<HalfSpace>,
    ) {
        self.lows.clear();
        self.lows.extend_from_slice(&src.lows);
        self.highs.clear();
        self.highs.extend_from_slice(&src.highs);
        let want = src.constraints.len() + 1;
        while self.constraints.len() > want {
            spare.push(self.constraints.pop().expect("len checked"));
        }
        while self.constraints.len() < want {
            let husk = spare
                .pop()
                .unwrap_or_else(|| HalfSpace::new(Vec::new(), 0.0));
            self.constraints.push(husk);
        }
        for (dst, s) in self.constraints.iter_mut().zip(&src.constraints) {
            dst.assign_from(s);
        }
        let last = self.constraints.last_mut().expect("want >= 1");
        last.coeffs.clear();
        if negate {
            last.coeffs.extend(hs.coeffs.iter().map(|c| -c));
            last.offset = -hs.offset;
        } else {
            last.coeffs.extend_from_slice(&hs.coeffs);
            last.offset = hs.offset;
        }
        match &src.poly {
            Some(src_poly) => {
                let mut poly = self.poly.take().unwrap_or_default();
                clip_polygon_into(src_poly, hs, negate, &mut poly);
                self.poly = Some(poly);
            }
            None => self.poly = None,
        }
    }

    /// Number of reduced dimensions.
    pub fn dim(&self) -> usize {
        self.lows.len()
    }

    /// Half-space constraints added on top of the box (not including the box
    /// bounds themselves).
    pub fn constraints(&self) -> &[HalfSpace] {
        &self.constraints
    }

    /// Drops the cached vertex representation, forcing this cell (and every
    /// cell derived from it) onto the dense-LP path. A benchmarking knob —
    /// the perf-trajectory harness uses it to measure the pre-optimization
    /// configuration; results are identical either way.
    pub fn disable_vertex_cache(mut self) -> Self {
        self.poly = None;
        self
    }

    /// A new cell with the half-space `f(w) ≥ 0` added as a constraint.
    pub fn with_halfspace(&self, hs: HalfSpace) -> Cell {
        let mut cell = self.clone();
        if let Some(poly) = &cell.poly {
            cell.poly = Some(clip_polygon(poly, &hs));
        }
        cell.constraints.push(hs);
        cell
    }

    /// Approximate memory footprint in bytes (Fig. 11(d) accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.lows.len() + self.highs.len()) * std::mem::size_of::<f64>()
            + self
                .constraints
                .iter()
                .map(|c| (c.coeffs.len() + 1) * std::mem::size_of::<f64>())
                .sum::<usize>()
    }

    /// Whether the point satisfies every constraint of the cell.
    pub fn contains(&self, reduced_w: &[f64]) -> bool {
        if reduced_w.len() != self.dim() {
            return false;
        }
        for ((&w, &lo), &hi) in reduced_w.iter().zip(&self.lows).zip(&self.highs) {
            if w < lo - EPS || w > hi + EPS {
                return false;
            }
        }
        self.constraints.iter().all(|hs| hs.contains(reduced_w))
    }

    /// Builds the LP constraint system `A w ≤ b` of this cell.
    fn lp_constraints(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let dim = self.dim();
        let mut a = Vec::with_capacity(2 * dim + self.constraints.len());
        let mut b = Vec::with_capacity(2 * dim + self.constraints.len());
        for i in 0..dim {
            let mut row = vec![0.0; dim];
            row[i] = 1.0;
            a.push(row.clone());
            b.push(self.highs[i]);
            row[i] = -1.0;
            a.push(row);
            b.push(-self.lows[i]);
        }
        for hs in &self.constraints {
            // offset + c·w >= 0  <=>  -c·w <= offset
            a.push(hs.coeffs.iter().map(|c| -c).collect());
            b.push(hs.offset);
        }
        (a, b)
    }

    /// `(min, max)` of the affine form over the polygon vertices; `None` when
    /// no vertex representation exists (LP fallback) or the polygon is empty.
    fn poly_extremes(&self, hs: &HalfSpace) -> Option<(f64, f64)> {
        let poly = self.poly.as_ref()?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(x, y) in poly {
            let v = hs.eval(&[x, y]);
            min = min.min(v);
            max = max.max(v);
        }
        if min.is_finite() {
            Some((min, max))
        } else {
            None
        }
    }

    /// Minimum of the affine form of `hs` over the cell; `None` when the cell
    /// is empty.
    pub fn min_of(&self, hs: &HalfSpace) -> Option<f64> {
        if let Some(poly) = &self.poly {
            return if poly.is_empty() {
                None
            } else {
                self.poly_extremes(hs).map(|(min, _)| min)
            };
        }
        let (a, b) = self.lp_constraints();
        match lp::minimize(&hs.coeffs, &a, &b) {
            LpOutcome::Optimal { value, .. } => Some(value + hs.offset),
            LpOutcome::Infeasible => None,
            // Cells are subsets of a bounded box; unbounded cannot happen.
            LpOutcome::Unbounded => None,
        }
    }

    /// Maximum of the affine form of `hs` over the cell; `None` when empty.
    pub fn max_of(&self, hs: &HalfSpace) -> Option<f64> {
        if let Some(poly) = &self.poly {
            return if poly.is_empty() {
                None
            } else {
                self.poly_extremes(hs).map(|(_, max)| max)
            };
        }
        let (a, b) = self.lp_constraints();
        match lp::maximize(&hs.coeffs, &a, &b) {
            LpOutcome::Optimal { value, .. } => Some(value + hs.offset),
            LpOutcome::Infeasible => None,
            LpOutcome::Unbounded => None,
        }
    }

    /// Whether the cell has no feasible point (or only a degenerate sliver
    /// thinner than the numerical tolerance).
    pub fn is_empty(&self) -> bool {
        let dim = self.dim();
        if dim == 0 {
            // Zero-dimensional preference domain: the single point is feasible
            // iff every constraint's constant term is non-negative.
            return self.constraints.iter().any(|hs| hs.offset < -EPS);
        }
        if let Some(poly) = &self.poly {
            return poly.is_empty();
        }
        let (a, b) = self.lp_constraints();
        let zero = vec![0.0; dim];
        matches!(lp::maximize(&zero, &a, &b), LpOutcome::Infeasible)
    }

    /// Classification of the cell against the half-space `f(w) ≥ 0`.
    pub fn classify(&self, hs: &HalfSpace) -> CellSide {
        if let Some(poly) = &self.poly {
            if poly.is_empty() {
                return CellSide::Empty;
            }
            let (min, max) = self
                .poly_extremes(hs)
                .expect("non-empty polygon has extremes");
            if min >= -EPS {
                return CellSide::Positive;
            }
            if max <= EPS {
                return CellSide::Negative;
            }
            return CellSide::Straddles;
        }
        let Some(min) = self.min_of(hs) else {
            return CellSide::Empty;
        };
        if min >= -EPS {
            return CellSide::Positive;
        }
        let Some(max) = self.max_of(hs) else {
            return CellSide::Empty;
        };
        if max <= EPS {
            return CellSide::Negative;
        }
        CellSide::Straddles
    }

    /// A representative point of the cell, roughly in its interior: the
    /// average of the per-axis extreme points returned by the LP (or the
    /// polygon centroid on the 2-D fast path).
    ///
    /// Returns `None` only for genuinely empty cells. Degenerate slivers —
    /// cells pinched flat (or near-flat) by opposing half-spaces — are
    /// recovered by symbolic perturbation: the representative is nudged an
    /// infinitesimal step towards the feasible side of every near-tight
    /// constraint, and the candidate with the largest minimum slack wins.
    /// For a measure-zero cell no strictly interior point exists; the sample
    /// then lies *on* the pinching boundary, where the scores the cell was
    /// split on are exactly equal — downstream consumers break those ties
    /// deterministically (smallest id), so the cell's community is still
    /// enumerated instead of being silently dropped from the arrangement.
    pub fn sample_point(&self) -> Option<Vec<f64>> {
        let dim = self.dim();
        if dim == 0 {
            return if self.is_empty() {
                None
            } else {
                Some(Vec::new())
            };
        }
        if let Some(poly) = &self.poly {
            if poly.is_empty() {
                return None;
            }
            // Average of the clip vertices: a point of the cell by convexity,
            // numerically stable even when the polygon is a segment or point.
            let inv = 1.0 / poly.len() as f64;
            let avg = poly
                .iter()
                .fold((0.0, 0.0), |(x, y), &(px, py)| (x + px * inv, y + py * inv));
            // Prefer the area centroid (better centred), but only when it is
            // numerically trustworthy — the centroid formula divides by the
            // signed area and goes haywire on near-degenerate slivers.
            let base = match polygon_centroid(poly) {
                Some(c) if self.min_slack(&[c.0, c.1]) >= self.min_slack(&[avg.0, avg.1]) => c,
                _ => avg,
            };
            return Some(self.perturb_to_interior(vec![base.0, base.1]));
        }
        let (a, b) = self.lp_constraints();
        let mut acc = vec![0.0; dim];
        let mut count = 0usize;
        for i in 0..dim {
            for sign in [1.0, -1.0] {
                let mut c = vec![0.0; dim];
                c[i] = sign;
                match lp::maximize(&c, &a, &b) {
                    LpOutcome::Optimal { point, .. } => {
                        for (j, &x) in point.iter().enumerate() {
                            acc[j] += x;
                        }
                        count += 1;
                    }
                    _ => return None,
                }
            }
        }
        if count == 0 {
            return None;
        }
        let point: Vec<f64> = acc.into_iter().map(|x| x / count as f64).collect();
        Some(self.perturb_to_interior(point))
    }

    /// Allocation-free variant of [`Cell::sample_point`] on the 2-D polygon
    /// fast path: writes the representative into `out` and returns whether one
    /// exists. Other dimensionalities (and polygon-less cells) fall back to
    /// the allocating LP path and copy the result into `out`.
    pub fn sample_point_into(&self, out: &mut Vec<f64>) -> bool {
        let dim = self.dim();
        if dim == 0 {
            out.clear();
            return !self.is_empty();
        }
        if let Some(poly) = &self.poly {
            if poly.is_empty() {
                return false;
            }
            let inv = 1.0 / poly.len() as f64;
            let avg = poly
                .iter()
                .fold((0.0, 0.0), |(x, y), &(px, py)| (x + px * inv, y + py * inv));
            let base = match polygon_centroid(poly) {
                Some(c) if self.min_slack(&[c.0, c.1]) >= self.min_slack(&[avg.0, avg.1]) => c,
                _ => avg,
            };
            let p = self.perturb_to_interior2([base.0, base.1]);
            out.clear();
            out.push(p[0]);
            out.push(p[1]);
            return true;
        }
        match self.sample_point() {
            Some(p) => {
                out.clear();
                out.extend_from_slice(&p);
                true
            }
            None => false,
        }
    }

    /// Minimum gradient-normalized slack of the point over every half-space
    /// constraint and box bound (positive = strictly inside).
    fn min_slack(&self, point: &[f64]) -> f64 {
        let mut slack = f64::INFINITY;
        for ((&w, &lo), &hi) in point.iter().zip(&self.lows).zip(&self.highs) {
            slack = slack.min(w - lo).min(hi - w);
        }
        for hs in &self.constraints {
            let norm = hs.coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();
            if norm > 0.0 {
                slack = slack.min(hs.eval(point) / norm);
            } else {
                slack = slack.min(hs.eval(point));
            }
        }
        slack
    }

    /// Symbolic-perturbation step: starting from a point *of* the cell, nudge
    /// it towards the feasible side of every near-tight constraint and keep
    /// the candidate with the largest minimum slack. A flat sliver (opposing
    /// tight constraints whose gradients cancel) stays where it is — its
    /// relative interior *is* the boundary, and that point is the correct
    /// symbolic limit.
    fn perturb_to_interior(&self, point: Vec<f64>) -> Vec<f64> {
        let base_slack = self.min_slack(&point);
        if base_slack > EPS {
            return point;
        }
        // Sum of unit gradients of the near-tight half-spaces: the direction
        // that increases every pinching constraint at once (when one exists).
        let tight = 16.0 * EPS;
        let dim = self.dim();
        let mut dir = vec![0.0f64; dim];
        for hs in &self.constraints {
            let norm = hs.coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();
            if norm > 0.0 && hs.eval(&point) / norm <= tight {
                for (d, &c) in dir.iter_mut().zip(&hs.coeffs) {
                    *d += c / norm;
                }
            }
        }
        for (i, d) in dir.iter_mut().enumerate() {
            if point[i] - self.lows[i] <= tight {
                *d += 1.0;
            }
            if self.highs[i] - point[i] <= tight {
                *d -= 1.0;
            }
        }
        let len = dir.iter().map(|d| d * d).sum::<f64>().sqrt();
        if len <= EPS {
            // Gradients cancel: a genuinely flat sliver with no interior.
            return point;
        }
        let scale: f64 = self
            .highs
            .iter()
            .zip(&self.lows)
            .map(|(h, l)| h - l)
            .fold(0.0, f64::max)
            .max(1.0);
        let mut best = point.clone();
        let mut best_slack = base_slack;
        for k in 0..8 {
            let eps = scale * EPS * 4.0f64.powi(k);
            let cand: Vec<f64> = point
                .iter()
                .zip(&dir)
                .map(|(&p, &d)| p + eps * d / len)
                .collect();
            let slack = self.min_slack(&cand);
            if slack > best_slack {
                best_slack = slack;
                best = cand;
            }
        }
        best
    }

    /// Stack-array transcription of [`Cell::perturb_to_interior`] for the 2-D
    /// fast path: identical arithmetic in identical order, zero heap traffic.
    fn perturb_to_interior2(&self, point: [f64; 2]) -> [f64; 2] {
        let base_slack = self.min_slack(&point);
        if base_slack > EPS {
            return point;
        }
        let tight = 16.0 * EPS;
        let mut dir = [0.0f64; 2];
        for hs in &self.constraints {
            let norm = hs.coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();
            if norm > 0.0 && hs.eval(&point) / norm <= tight {
                for (d, &c) in dir.iter_mut().zip(&hs.coeffs) {
                    *d += c / norm;
                }
            }
        }
        for (i, d) in dir.iter_mut().enumerate() {
            if point[i] - self.lows[i] <= tight {
                *d += 1.0;
            }
            if self.highs[i] - point[i] <= tight {
                *d -= 1.0;
            }
        }
        let len = dir.iter().map(|d| d * d).sum::<f64>().sqrt();
        if len <= EPS {
            return point;
        }
        let scale: f64 = self
            .highs
            .iter()
            .zip(&self.lows)
            .map(|(h, l)| h - l)
            .fold(0.0, f64::max)
            .max(1.0);
        let mut best = point;
        let mut best_slack = base_slack;
        for k in 0..8 {
            let eps = scale * EPS * 4.0f64.powi(k);
            let cand = [point[0] + eps * dir[0] / len, point[1] + eps * dir[1] / len];
            let slack = self.min_slack(&cand);
            if slack > best_slack {
                best_slack = slack;
                best = cand;
            }
        }
        best
    }
}

/// Sutherland–Hodgman clip of a convex polygon against `f(w) ≥ 0`.
fn clip_polygon(poly: &[(f64, f64)], hs: &HalfSpace) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(poly.len() + 1);
    clip_polygon_into(poly, hs, false, &mut out);
    out
}

/// Buffer-reusing Sutherland–Hodgman clip against `f(w) ≥ 0` — or against the
/// complement `−f(w) ≥ 0` when `negate` is set. Sign flipping is exact in
/// IEEE arithmetic (negation distributes over rounding), so the negated form
/// is bitwise identical to clipping against [`HalfSpace::negated`].
fn clip_polygon_into(poly: &[(f64, f64)], hs: &HalfSpace, negate: bool, out: &mut Vec<(f64, f64)>) {
    let sign = if negate { -1.0 } else { 1.0 };
    let eval = |p: (f64, f64)| sign * hs.eval(&[p.0, p.1]);
    let n = poly.len();
    out.clear();
    for i in 0..n {
        let p = poly[i];
        let q = poly[(i + 1) % n];
        let (fp, fq) = (eval(p), eval(q));
        if fp >= 0.0 {
            out.push(p);
        }
        if (fp > 0.0 && fq < 0.0) || (fp < 0.0 && fq > 0.0) {
            // Edge crosses the boundary: interpolate the intersection.
            let t = fp / (fp - fq);
            out.push((p.0 + t * (q.0 - p.0), p.1 + t * (q.1 - p.1)));
        }
    }
}

/// Area centroid of a convex polygon; `None` when the polygon is degenerate
/// (fewer than three vertices or numerically zero area), in which case the
/// cell has no strictly interior representative.
fn polygon_centroid(poly: &[(f64, f64)]) -> Option<(f64, f64)> {
    if poly.len() < 3 {
        return None;
    }
    let mut area2 = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for i in 0..poly.len() {
        let (x0, y0) = poly[i];
        let (x1, y1) = poly[(i + 1) % poly.len()];
        let cross = x0 * y1 - x1 * y0;
        area2 += cross;
        cx += (x0 + x1) * cross;
        cy += (y0 + y1) * cross;
    }
    if area2.abs() < 1e-300 {
        return None;
    }
    Some((cx / (3.0 * area2), cy / (3.0 * area2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::PrefRegion;

    fn paper_cell() -> Cell {
        Cell::from_region(&PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap())
    }

    #[test]
    fn region_cell_contains_and_samples() {
        let cell = paper_cell();
        assert_eq!(cell.dim(), 2);
        assert!(cell.contains(&[0.3, 0.3]));
        assert!(!cell.contains(&[0.6, 0.3]));
        assert!(!cell.is_empty());
        let p = cell.sample_point().unwrap();
        assert!(cell.contains(&p));
        // roughly centred
        assert!((p[0] - 0.3).abs() < 0.21 && (p[1] - 0.3).abs() < 0.11);
    }

    #[test]
    fn classify_against_halfspaces() {
        let cell = paper_cell();
        // w1 - 0.05 >= 0 holds everywhere in [0.1, 0.5]
        let pos = HalfSpace::new(vec![1.0, 0.0], -0.05);
        assert_eq!(cell.classify(&pos), CellSide::Positive);
        // w1 - 0.9 >= 0 holds nowhere
        let neg = HalfSpace::new(vec![1.0, 0.0], -0.9);
        assert_eq!(cell.classify(&neg), CellSide::Negative);
        // w1 - 0.3 >= 0 splits the region
        let split = HalfSpace::new(vec![1.0, 0.0], -0.3);
        assert_eq!(cell.classify(&split), CellSide::Straddles);
    }

    #[test]
    fn with_halfspace_restricts_cell() {
        let cell = paper_cell();
        let hs = HalfSpace::new(vec![1.0, 0.0], -0.3); // w1 >= 0.3
        let sub = cell.with_halfspace(hs.clone());
        assert!(sub.contains(&[0.4, 0.3]));
        assert!(!sub.contains(&[0.2, 0.3]));
        assert!(!sub.is_empty());
        assert_eq!(sub.constraints().len(), 1);
        // the sub-cell is now entirely on the positive side
        assert_eq!(sub.classify(&hs), CellSide::Positive);
        // further restricting by the negation empties it
        let empty = sub.with_halfspace(hs.negated());
        // only the measure-zero boundary w1 = 0.3 remains; min/max of any
        // genuine direction collapses
        let w1 = HalfSpace::new(vec![1.0, 0.0], 0.0);
        let min = empty.min_of(&w1).unwrap();
        let max = empty.max_of(&w1).unwrap();
        assert!((max - min).abs() < 1e-6);
    }

    #[test]
    fn empty_cell_detection() {
        let cell = paper_cell();
        // w1 >= 0.8 is outside the box entirely
        let impossible = cell.with_halfspace(HalfSpace::new(vec![1.0, 0.0], -0.8));
        assert!(impossible.is_empty());
        assert_eq!(
            impossible.classify(&HalfSpace::new(vec![0.0, 1.0], 0.0)),
            CellSide::Empty
        );
        assert!(impossible.sample_point().is_none());
    }

    #[test]
    fn min_max_values() {
        let cell = paper_cell();
        let hs = HalfSpace::new(vec![1.0, 1.0], 0.0); // w1 + w2
        assert!((cell.min_of(&hs).unwrap() - 0.3).abs() < 1e-6);
        assert!((cell.max_of(&hs).unwrap() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn zero_dimensional_cells() {
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let cell = Cell::from_region(&region);
        assert!(!cell.is_empty());
        assert_eq!(cell.sample_point(), Some(vec![]));
        let bad = cell.with_halfspace(HalfSpace::new(vec![], -1.0));
        assert!(bad.is_empty());
        let good = cell.with_halfspace(HalfSpace::new(vec![], 2.0));
        assert!(!good.is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let cell = paper_cell().with_halfspace(HalfSpace::new(vec![1.0, 0.0], -0.3));
        assert!(cell.memory_bytes() > 0);
    }

    /// Forced-sliver arrangement: pinching a cell flat between a half-space
    /// and its negation leaves a measure-zero segment. The sample must be
    /// recovered (on the pinching line) instead of the cell being dropped —
    /// on both the polygon fast path and the dense-LP fallback.
    #[test]
    fn sliver_cells_recover_a_sample() {
        let hs = HalfSpace::new(vec![1.0, 0.0], -0.3); // w1 >= 0.3
        let sliver = paper_cell()
            .with_halfspace(hs.clone())
            .with_halfspace(hs.negated());
        for cell in [sliver.clone(), sliver.clone().disable_vertex_cache()] {
            let p = cell
                .sample_point()
                .expect("measure-zero sliver must still yield a witness");
            assert!(cell.contains(&p), "sliver sample escapes the cell: {p:?}");
            assert!(
                (p[0] - 0.3).abs() <= 1e-6,
                "sliver sample must sit on the pinching line, got {p:?}"
            );
            assert!((0.2..=0.4).contains(&p[1]), "sample outside box: {p:?}");
        }

        // A near-flat (but positive-measure) sliver must also yield a strictly
        // feasible sample: the perturbation pushes off the squeezing walls.
        let thin = paper_cell()
            .with_halfspace(HalfSpace::new(vec![1.0, 0.0], -0.3)) // w1 >= 0.3
            .with_halfspace(HalfSpace::new(vec![-1.0, 0.0], 0.3 + 1e-11)); // w1 <= 0.3 + 1e-11
        for cell in [thin.clone(), thin.clone().disable_vertex_cache()] {
            let p = cell
                .sample_point()
                .expect("thin sliver must still yield a witness");
            assert!(cell.contains(&p), "thin sample escapes the cell: {p:?}");
        }
    }

    /// The pooled in-place builders must reproduce their allocating
    /// counterparts bit-for-bit, across repeated reuse of the same husk.
    #[test]
    fn pooled_assign_matches_allocating_builders() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0xCE11);
        let mut husk = paper_cell(); // any starting state; gets overwritten
        let mut spare = Vec::new();
        let mut sample_buf = Vec::new();
        for _ in 0..100 {
            let region = PrefRegion::from_ranges(&[(0.05, 0.55), (0.1, 0.45)]).unwrap();
            let mut cell = Cell::from_region(&region);
            husk.assign_region(&region);
            assert_eq!(husk, cell);
            for _ in 0..rng.random_range(0..5usize) {
                let hs = HalfSpace::new(
                    vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
                    rng.random_range(-0.6..0.6),
                );
                let negate = rng.random_bool(0.5);
                let reference = if negate {
                    cell.with_halfspace(hs.negated())
                } else {
                    cell.with_halfspace(hs.clone())
                };
                husk.assign_clip(&cell, &hs, negate, &mut spare);
                assert_eq!(husk, reference, "assign_clip diverged from with_halfspace");
                cell = reference;
                // keep husk distinct from cell for the next round
                husk.assign_region(&region);
                husk.assign_clip(&cell, &hs, false, &mut spare);
                husk.assign_clip(&cell, &hs, negate, &mut spare);
                assert_eq!(
                    husk,
                    if negate {
                        cell.with_halfspace(hs.negated())
                    } else {
                        cell.with_halfspace(hs)
                    }
                );
            }
            match cell.sample_point() {
                Some(p) => {
                    assert!(cell.sample_point_into(&mut sample_buf));
                    assert_eq!(sample_buf, p, "sample_point_into diverged");
                }
                None => assert!(!cell.sample_point_into(&mut sample_buf)),
            }
        }
    }

    /// The 2-D polygon fast path must agree with the dense-LP fallback on
    /// extremes and classification for random constraint sequences.
    #[test]
    fn polygon_path_matches_lp_path() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0x9E0);
        for round in 0..200 {
            let mut cell = paper_cell();
            assert!(cell.poly.is_some(), "2-D cells carry a polygon");
            for _ in 0..rng.random_range(0..5usize) {
                let hs = HalfSpace::new(
                    vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
                    rng.random_range(-0.6..0.6),
                );
                if cell.classify(&hs) == CellSide::Straddles {
                    cell = cell.with_halfspace(hs);
                }
            }
            let probe = HalfSpace::new(
                vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
                rng.random_range(-0.6..0.6),
            );
            // LP reference on a polygon-less twin of the same H-representation.
            let mut lp_cell = cell.clone();
            lp_cell.poly = None;
            match (cell.min_of(&probe), lp_cell.min_of(&probe)) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-6, "round {round}: min {a} vs lp {b}")
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "round {round}"),
            }
            match (cell.max_of(&probe), lp_cell.max_of(&probe)) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-6, "round {round}: max {a} vs lp {b}")
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "round {round}"),
            }
            // Classification may legitimately differ only within EPS of a
            // boundary; for the random probes used here it must match.
            let (pc, lc) = (cell.classify(&probe), lp_cell.classify(&probe));
            if pc != lc {
                // tolerate only near-degenerate disagreement
                let min = lp_cell.min_of(&probe).unwrap_or(0.0);
                let max = lp_cell.max_of(&probe).unwrap_or(0.0);
                assert!(
                    min.abs() < 1e-6 || max.abs() < 1e-6,
                    "round {round}: poly {pc:?} vs lp {lc:?} (min {min}, max {max})"
                );
            }
            // The sample point, when it exists, lies strictly inside.
            if let Some(p) = cell.sample_point() {
                assert!(cell.contains(&p), "round {round}: sample escapes the cell");
            }
        }
    }
}

//! Convex sub-partitions (cells) of the region `R` in H-representation.
//!
//! A cell is the intersection of the axis-parallel box of `R` with a set of
//! half-space constraints accumulated by the arrangement of Algorithm 2.
//! Classification of a cell against a new hyperplane (does the cell lie on the
//! positive side, the negative side, or does the hyperplane split it?) is done
//! with two small linear programs.

use crate::halfspace::HalfSpace;
use crate::lp::{self, LpOutcome};
use crate::region::PrefRegion;
use crate::EPS;
use serde::{Deserialize, Serialize};

/// Relation of a cell to a half-space `f(w) ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSide {
    /// The cell is entirely contained in the half-space (`f ≥ 0` everywhere).
    Positive,
    /// The cell is entirely contained in the complement (`f ≤ 0` everywhere).
    Negative,
    /// The hyperplane genuinely splits the cell.
    Straddles,
    /// The cell has no feasible point at all.
    Empty,
}

/// A convex cell: box bounds plus accumulated half-space constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    lows: Vec<f64>,
    highs: Vec<f64>,
    constraints: Vec<HalfSpace>,
}

impl Cell {
    /// The cell covering the whole region `R`.
    pub fn from_region(region: &PrefRegion) -> Self {
        Cell {
            lows: region.lows().to_vec(),
            highs: region.highs().to_vec(),
            constraints: Vec::new(),
        }
    }

    /// Number of reduced dimensions.
    pub fn dim(&self) -> usize {
        self.lows.len()
    }

    /// Half-space constraints added on top of the box (not including the box
    /// bounds themselves).
    pub fn constraints(&self) -> &[HalfSpace] {
        &self.constraints
    }

    /// A new cell with the half-space `f(w) ≥ 0` added as a constraint.
    pub fn with_halfspace(&self, hs: HalfSpace) -> Cell {
        let mut cell = self.clone();
        cell.constraints.push(hs);
        cell
    }

    /// Approximate memory footprint in bytes (Fig. 11(d) accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.lows.len() + self.highs.len()) * std::mem::size_of::<f64>()
            + self
                .constraints
                .iter()
                .map(|c| (c.coeffs.len() + 1) * std::mem::size_of::<f64>())
                .sum::<usize>()
    }

    /// Whether the point satisfies every constraint of the cell.
    pub fn contains(&self, reduced_w: &[f64]) -> bool {
        if reduced_w.len() != self.dim() {
            return false;
        }
        for i in 0..self.dim() {
            if reduced_w[i] < self.lows[i] - EPS || reduced_w[i] > self.highs[i] + EPS {
                return false;
            }
        }
        self.constraints.iter().all(|hs| hs.contains(reduced_w))
    }

    /// Builds the LP constraint system `A w ≤ b` of this cell.
    fn lp_constraints(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let dim = self.dim();
        let mut a = Vec::with_capacity(2 * dim + self.constraints.len());
        let mut b = Vec::with_capacity(2 * dim + self.constraints.len());
        for i in 0..dim {
            let mut row = vec![0.0; dim];
            row[i] = 1.0;
            a.push(row.clone());
            b.push(self.highs[i]);
            row[i] = -1.0;
            a.push(row);
            b.push(-self.lows[i]);
        }
        for hs in &self.constraints {
            // offset + c·w >= 0  <=>  -c·w <= offset
            a.push(hs.coeffs.iter().map(|c| -c).collect());
            b.push(hs.offset);
        }
        (a, b)
    }

    /// Minimum of the affine form of `hs` over the cell; `None` when the cell
    /// is empty.
    pub fn min_of(&self, hs: &HalfSpace) -> Option<f64> {
        let (a, b) = self.lp_constraints();
        match lp::minimize(&hs.coeffs, &a, &b) {
            LpOutcome::Optimal { value, .. } => Some(value + hs.offset),
            LpOutcome::Infeasible => None,
            // Cells are subsets of a bounded box; unbounded cannot happen.
            LpOutcome::Unbounded => None,
        }
    }

    /// Maximum of the affine form of `hs` over the cell; `None` when empty.
    pub fn max_of(&self, hs: &HalfSpace) -> Option<f64> {
        let (a, b) = self.lp_constraints();
        match lp::maximize(&hs.coeffs, &a, &b) {
            LpOutcome::Optimal { value, .. } => Some(value + hs.offset),
            LpOutcome::Infeasible => None,
            LpOutcome::Unbounded => None,
        }
    }

    /// Whether the cell has no feasible point (or only a degenerate sliver
    /// thinner than the numerical tolerance).
    pub fn is_empty(&self) -> bool {
        let dim = self.dim();
        if dim == 0 {
            // Zero-dimensional preference domain: the single point is feasible
            // iff every constraint's constant term is non-negative.
            return self.constraints.iter().any(|hs| hs.offset < -EPS);
        }
        let (a, b) = self.lp_constraints();
        let zero = vec![0.0; dim];
        matches!(lp::maximize(&zero, &a, &b), LpOutcome::Infeasible)
    }

    /// Classification of the cell against the half-space `f(w) ≥ 0`.
    pub fn classify(&self, hs: &HalfSpace) -> CellSide {
        let Some(min) = self.min_of(hs) else {
            return CellSide::Empty;
        };
        if min >= -EPS {
            return CellSide::Positive;
        }
        let Some(max) = self.max_of(hs) else {
            return CellSide::Empty;
        };
        if max <= EPS {
            return CellSide::Negative;
        }
        CellSide::Straddles
    }

    /// A representative point of the cell, roughly in its interior: the
    /// average of the per-axis extreme points returned by the LP. Returns
    /// `None` for empty cells.
    pub fn sample_point(&self) -> Option<Vec<f64>> {
        let dim = self.dim();
        if dim == 0 {
            return if self.is_empty() { None } else { Some(Vec::new()) };
        }
        let (a, b) = self.lp_constraints();
        let mut acc = vec![0.0; dim];
        let mut count = 0usize;
        for i in 0..dim {
            for sign in [1.0, -1.0] {
                let mut c = vec![0.0; dim];
                c[i] = sign;
                match lp::maximize(&c, &a, &b) {
                    LpOutcome::Optimal { point, .. } => {
                        for (j, &x) in point.iter().enumerate() {
                            acc[j] += x;
                        }
                        count += 1;
                    }
                    _ => return None,
                }
            }
        }
        if count == 0 {
            return None;
        }
        Some(acc.into_iter().map(|x| x / count as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::PrefRegion;

    fn paper_cell() -> Cell {
        Cell::from_region(&PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap())
    }

    #[test]
    fn region_cell_contains_and_samples() {
        let cell = paper_cell();
        assert_eq!(cell.dim(), 2);
        assert!(cell.contains(&[0.3, 0.3]));
        assert!(!cell.contains(&[0.6, 0.3]));
        assert!(!cell.is_empty());
        let p = cell.sample_point().unwrap();
        assert!(cell.contains(&p));
        // roughly centred
        assert!((p[0] - 0.3).abs() < 0.21 && (p[1] - 0.3).abs() < 0.11);
    }

    #[test]
    fn classify_against_halfspaces() {
        let cell = paper_cell();
        // w1 - 0.05 >= 0 holds everywhere in [0.1, 0.5]
        let pos = HalfSpace::new(vec![1.0, 0.0], -0.05);
        assert_eq!(cell.classify(&pos), CellSide::Positive);
        // w1 - 0.9 >= 0 holds nowhere
        let neg = HalfSpace::new(vec![1.0, 0.0], -0.9);
        assert_eq!(cell.classify(&neg), CellSide::Negative);
        // w1 - 0.3 >= 0 splits the region
        let split = HalfSpace::new(vec![1.0, 0.0], -0.3);
        assert_eq!(cell.classify(&split), CellSide::Straddles);
    }

    #[test]
    fn with_halfspace_restricts_cell() {
        let cell = paper_cell();
        let hs = HalfSpace::new(vec![1.0, 0.0], -0.3); // w1 >= 0.3
        let sub = cell.with_halfspace(hs.clone());
        assert!(sub.contains(&[0.4, 0.3]));
        assert!(!sub.contains(&[0.2, 0.3]));
        assert!(!sub.is_empty());
        assert_eq!(sub.constraints().len(), 1);
        // the sub-cell is now entirely on the positive side
        assert_eq!(sub.classify(&hs), CellSide::Positive);
        // further restricting by the negation empties it
        let empty = sub.with_halfspace(hs.negated());
        // only the measure-zero boundary w1 = 0.3 remains; min/max of any
        // genuine direction collapses
        let w1 = HalfSpace::new(vec![1.0, 0.0], 0.0);
        let min = empty.min_of(&w1).unwrap();
        let max = empty.max_of(&w1).unwrap();
        assert!((max - min).abs() < 1e-6);
    }

    #[test]
    fn empty_cell_detection() {
        let cell = paper_cell();
        // w1 >= 0.8 is outside the box entirely
        let impossible = cell.with_halfspace(HalfSpace::new(vec![1.0, 0.0], -0.8));
        assert!(impossible.is_empty());
        assert_eq!(
            impossible.classify(&HalfSpace::new(vec![0.0, 1.0], 0.0)),
            CellSide::Empty
        );
        assert!(impossible.sample_point().is_none());
    }

    #[test]
    fn min_max_values() {
        let cell = paper_cell();
        let hs = HalfSpace::new(vec![1.0, 1.0], 0.0); // w1 + w2
        assert!((cell.min_of(&hs).unwrap() - 0.3).abs() < 1e-6);
        assert!((cell.max_of(&hs).unwrap() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn zero_dimensional_cells() {
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let cell = Cell::from_region(&region);
        assert!(!cell.is_empty());
        assert_eq!(cell.sample_point(), Some(vec![]));
        let bad = cell.with_halfspace(HalfSpace::new(vec![], -1.0));
        assert!(bad.is_empty());
        let good = cell.with_halfspace(HalfSpace::new(vec![], 2.0));
        assert!(!good.is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let cell = paper_cell().with_halfspace(HalfSpace::new(vec![1.0, 0.0], -0.3));
        assert!(cell.memory_bytes() > 0);
    }
}

//! A small dense two-phase simplex solver.
//!
//! Arrangement cells produced by Algorithm 2 are convex polytopes given in
//! H-representation (the box of `R` plus accumulated half-space constraints).
//! Deciding whether a cell is empty, or on which side of a new hyperplane it
//! lies, reduces to minimizing/maximizing an affine form over the cell — a
//! linear program with at most `d − 1 ≤ 5` variables and a few dozen
//! constraints. This module implements a classic dense tableau simplex with
//! Bland's rule, which is more than adequate at this scale and keeps the crate
//! free of external solver dependencies.

/// Outcome of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Optimal objective value.
        value: f64,
        /// An optimal point.
        point: Vec<f64>,
    },
    /// The constraint set is infeasible.
    Infeasible,
    /// The objective is unbounded over the feasible set.
    Unbounded,
}

impl LpOutcome {
    /// The optimal value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The optimal point, if any.
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }
}

const TOL: f64 = 1e-9;

/// Maximizes `c · x` subject to `A x ≤ b` with `x` free (unrestricted sign).
///
/// Free variables are handled with the standard `x = x⁺ − x⁻` split; rows with
/// negative right-hand sides receive artificial variables and a phase-1
/// feasibility solve.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let n = c.len();
    let m = a.len();
    debug_assert_eq!(b.len(), m);
    debug_assert!(a.iter().all(|row| row.len() == n));

    // Column layout: [x⁺ (n) | x⁻ (n) | slack (m) | artificial (k)] + rhs.
    // Row i: a_i x⁺ − a_i x⁻ + s_i (= or −) = b_i.
    let mut need_artificial = vec![false; m];
    for i in 0..m {
        if b[i] < -TOL {
            need_artificial[i] = true;
        }
    }
    let num_art: usize = need_artificial.iter().filter(|&&x| x).count();
    let cols = 2 * n + m + num_art;
    let mut tab = vec![vec![0.0f64; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_idx = 0usize;
    for i in 0..m {
        let sign = if need_artificial[i] { -1.0 } else { 1.0 };
        for j in 0..n {
            tab[i][j] = sign * a[i][j];
            tab[i][n + j] = -sign * a[i][j];
        }
        tab[i][2 * n + i] = sign; // slack
        tab[i][cols] = sign * b[i];
        if need_artificial[i] {
            let col = 2 * n + m + art_idx;
            tab[i][col] = 1.0;
            basis[i] = col;
            art_idx += 1;
        } else {
            basis[i] = 2 * n + i;
        }
    }

    // Phase 1: minimize the sum of artificials (maximize their negative sum).
    if num_art > 0 {
        // Objective row for max(-Σ artificials): +1 in every artificial column,
        // then eliminate the basic artificial columns by subtracting their rows.
        let mut obj = vec![0.0f64; cols + 1];
        for entry in obj.iter_mut().take(cols).skip(2 * n + m) {
            *entry = 1.0;
        }
        for i in 0..m {
            if basis[i] >= 2 * n + m {
                for j in 0..=cols {
                    obj[j] -= tab[i][j];
                }
            }
        }
        if !simplex_iterate(&mut tab, &mut obj, &mut basis, cols) {
            // Phase 1 objective is bounded by construction; unbounded cannot
            // happen, treat defensively as infeasible.
            return LpOutcome::Infeasible;
        }
        if -obj[cols] > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial variables that remain basic (at value 0) out of
        // the basis when possible; if a row is all-zero it is redundant.
        for i in 0..m {
            if basis[i] >= 2 * n + m {
                if let Some(j) = (0..2 * n + m).find(|&j| tab[i][j].abs() > TOL) {
                    pivot(&mut tab, &mut vec![0.0; cols + 1], &mut basis, i, j, cols);
                }
            }
        }
    }

    // Phase 2: maximize c·x. Objective row in reduced-cost form.
    let mut obj = vec![0.0f64; cols + 1];
    for j in 0..n {
        obj[j] = -c[j];
        obj[n + j] = c[j];
    }
    // Express objective in terms of the current basis.
    for i in 0..m {
        let coeff = obj[basis[i]];
        if coeff.abs() > TOL {
            for j in 0..=cols {
                obj[j] -= coeff * tab[i][j];
            }
        }
    }
    // Forbid artificial columns from re-entering.
    let art_start = 2 * n + m;
    if !simplex_iterate_restricted(&mut tab, &mut obj, &mut basis, cols, art_start) {
        return LpOutcome::Unbounded;
    }

    // Extract the solution.
    let mut x = vec![0.0f64; 2 * n];
    for i in 0..m {
        if basis[i] < 2 * n {
            x[basis[i]] = tab[i][cols];
        }
    }
    let point: Vec<f64> = (0..n).map(|j| x[j] - x[n + j]).collect();
    let value: f64 = c.iter().zip(point.iter()).map(|(ci, xi)| ci * xi).sum();
    LpOutcome::Optimal { value, point }
}

/// Minimizes `c · x` subject to `A x ≤ b` (x free).
pub fn minimize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let neg: Vec<f64> = c.iter().map(|v| -v).collect();
    match maximize(&neg, a, b) {
        LpOutcome::Optimal { value, point } => LpOutcome::Optimal {
            value: -value,
            point,
        },
        other => other,
    }
}

fn simplex_iterate(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    cols: usize,
) -> bool {
    simplex_iterate_restricted(tab, obj, basis, cols, usize::MAX)
}

/// Runs simplex iterations until optimality (returns true) or unboundedness
/// (returns false). Columns `>= forbidden_from` never enter the basis.
fn simplex_iterate_restricted(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    cols: usize,
    forbidden_from: usize,
) -> bool {
    let m = tab.len();
    let mut iterations = 0usize;
    let max_iterations = 50_000;
    loop {
        iterations += 1;
        if iterations > max_iterations {
            // Numerical cycling safeguard: treat as optimal at current point.
            return true;
        }
        // Bland's rule: entering column = smallest index with negative reduced
        // cost (we maximize, objective row stores negated costs).
        let entering = (0..cols.min(forbidden_from)).find(|&j| obj[j] < -TOL);
        let Some(e) = entering else {
            return true;
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if tab[i][e] > TOL {
                let ratio = tab[i][cols] / tab[i][e];
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL
                        && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return false; // unbounded
        };
        pivot_with_obj(tab, obj, basis, l, e, cols);
    }
}

// Gaussian pivot over parallel rows; indexed loops keep the split borrows of
// `tab[row]` vs `tab[i]` obvious.
#[allow(clippy::needless_range_loop)]
fn pivot_with_obj(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    cols: usize,
) {
    let pivot_val = tab[row][col];
    for j in 0..=cols {
        tab[row][j] /= pivot_val;
    }
    for i in 0..tab.len() {
        if i != row && tab[i][col].abs() > TOL {
            let factor = tab[i][col];
            for j in 0..=cols {
                tab[i][j] -= factor * tab[row][j];
            }
        }
    }
    if obj[col].abs() > TOL {
        let factor = obj[col];
        for j in 0..=cols {
            obj[j] -= factor * tab[row][j];
        }
    }
    basis[row] = col;
}

fn pivot(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    cols: usize,
) {
    pivot_with_obj(tab, obj, basis, row, col, cols);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_box_maximization() {
        // maximize x + y subject to 0 <= x <= 2, 0 <= y <= 3
        let c = vec![1.0, 1.0];
        let a = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let b = vec![2.0, 0.0, 3.0, 0.0];
        let out = maximize(&c, &a, &b);
        assert_close(out.value().unwrap(), 5.0);
        let p = out.point().unwrap();
        assert_close(p[0], 2.0);
        assert_close(p[1], 3.0);
    }

    #[test]
    fn minimization_with_negative_rhs() {
        // minimize x subject to x >= 1.5 (i.e. -x <= -1.5), x <= 4
        let c = vec![1.0];
        let a = vec![vec![-1.0], vec![1.0]];
        let b = vec![-1.5, 4.0];
        let out = minimize(&c, &a, &b);
        assert_close(out.value().unwrap(), 1.5);
    }

    #[test]
    fn infeasible_program() {
        // x <= 1 and x >= 2
        let c = vec![1.0];
        let a = vec![vec![1.0], vec![-1.0]];
        let b = vec![1.0, -2.0];
        assert_eq!(maximize(&c, &a, &b), LpOutcome::Infeasible);
        assert_eq!(minimize(&c, &a, &b), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_program() {
        // maximize x with only x >= 0
        let c = vec![1.0];
        let a = vec![vec![-1.0]];
        let b = vec![0.0];
        assert_eq!(maximize(&c, &a, &b), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // minimize x subject to x >= -3 (i.e. -x <= 3), x <= 10
        let c = vec![1.0];
        let a = vec![vec![-1.0], vec![1.0]];
        let b = vec![3.0, 10.0];
        let out = minimize(&c, &a, &b);
        assert_close(out.value().unwrap(), -3.0);
    }

    #[test]
    fn two_dimensional_polytope() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x, y >= 0
        let c = vec![3.0, 2.0];
        let a = vec![
            vec![1.0, 1.0],
            vec![1.0, 3.0],
            vec![-1.0, 0.0],
            vec![0.0, -1.0],
        ];
        let b = vec![4.0, 6.0, 0.0, 0.0];
        let out = maximize(&c, &a, &b);
        assert_close(out.value().unwrap(), 12.0);
    }

    #[test]
    fn objective_over_paper_region() {
        // over R = [0.1, 0.5] x [0.2, 0.4], maximize w1 - w2 -> 0.5 - 0.2 = 0.3
        let c = vec![1.0, -1.0];
        let a = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let b = vec![0.5, -0.1, 0.4, -0.2];
        let out = maximize(&c, &a, &b);
        assert_close(out.value().unwrap(), 0.3);
        let out2 = minimize(&c, &a, &b);
        assert_close(out2.value().unwrap(), -0.3);
    }

    #[test]
    fn degenerate_equality_like_constraints() {
        // x <= 1 and x >= 1 pin x to exactly 1
        let c = vec![5.0];
        let a = vec![vec![1.0], vec![-1.0]];
        let b = vec![1.0, -1.0];
        let out = maximize(&c, &a, &b);
        assert_close(out.value().unwrap(), 5.0);
        assert_close(out.point().unwrap()[0], 1.0);
    }

    #[test]
    fn randomized_against_corner_enumeration() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(42);
        // Random boxes in 3D with random linear objectives: the optimum of a
        // linear function over a box is attained at a corner.
        for _ in 0..50 {
            let lows: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..0.5)).collect();
            let highs: Vec<f64> = lows
                .iter()
                .map(|&l| l + rng.random_range(0.1..1.0))
                .collect();
            let c: Vec<f64> = (0..3).map(|_| rng.random_range(-2.0..2.0)).collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            for i in 0..3 {
                let mut row = vec![0.0; 3];
                row[i] = 1.0;
                a.push(row.clone());
                b.push(highs[i]);
                row[i] = -1.0;
                a.push(row);
                b.push(-lows[i]);
            }
            let out = maximize(&c, &a, &b);
            let mut best = f64::NEG_INFINITY;
            for mask in 0..8u32 {
                let val: f64 = (0..3)
                    .map(|i| {
                        let x = if mask & (1 << i) != 0 {
                            highs[i]
                        } else {
                            lows[i]
                        };
                        c[i] * x
                    })
                    .sum();
                best = best.max(val);
            }
            assert!(
                (out.value().unwrap() - best).abs() < 1e-6,
                "lp {} vs corners {}",
                out.value().unwrap(),
                best
            );
        }
    }
}

//! The r-dominance test of Section IV-A.
//!
//! Given a region `R` in the preference domain, a vertex `v` r-dominates `v′`
//! when `S(v) ≥ S(v′)` for **every** weight vector in `R` (Definition 4,
//! Fig. 3). Because the score difference is affine in the reduced weights,
//! the test only needs to examine the vertices of the polytope defining `R`.

use crate::halfspace::HalfSpace;
use crate::region::PrefRegion;
use crate::EPS;

/// Outcome of comparing two attribute vectors over a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceRelation {
    /// The first vector scores at least as high everywhere in `R`, and
    /// strictly higher somewhere (Fig. 3(a)).
    Dominates,
    /// The second vector scores at least as high everywhere in `R`, and
    /// strictly higher somewhere (Fig. 3(c)).
    DominatedBy,
    /// Each scores higher in some part of `R` (Fig. 3(b)).
    Incomparable,
    /// The scores coincide everywhere in `R` (identical attribute vectors, or
    /// vectors whose difference is orthogonal to `R`).
    Equivalent,
}

/// r-dominance test between two `d`-dimensional attribute vectors w.r.t. the
/// corners of `R` (Section IV-A: `O(p·d)` where `p` is the number of polytope
/// vertices).
pub fn r_dominance(a: &[f64], b: &[f64], region: &PrefRegion) -> DominanceRelation {
    let hs = HalfSpace::score_at_least(a, b);
    r_dominance_from_halfspace(&hs, region)
}

/// Same as [`r_dominance`] but takes the precomputed half-space
/// `S(a) ≥ S(b)`, avoiding recomputation in hot loops.
pub fn r_dominance_from_halfspace(hs: &HalfSpace, region: &PrefRegion) -> DominanceRelation {
    let mut any_pos = false;
    let mut any_neg = false;
    for corner in region.corners() {
        let val = hs.eval(&corner);
        if val > EPS {
            any_pos = true;
        } else if val < -EPS {
            any_neg = true;
        }
        if any_pos && any_neg {
            return DominanceRelation::Incomparable;
        }
    }
    match (any_pos, any_neg) {
        (true, false) => DominanceRelation::Dominates,
        (false, true) => DominanceRelation::DominatedBy,
        (false, false) => DominanceRelation::Equivalent,
        (true, true) => DominanceRelation::Incomparable,
    }
}

/// Traditional (region-independent) dominance on raw attribute vectors:
/// `a` dominates `b` when it is no smaller in every dimension and strictly
/// larger in at least one. Used by the skyline-community baseline and by tests
/// relating r-dominance to its traditional counterpart.
pub fn traditional_dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x + EPS < *y {
            return false;
        }
        if x - EPS > *y {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> PrefRegion {
        PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap()
    }

    #[test]
    fn traditional_dominance_implies_r_dominance() {
        let a = [5.0, 5.0, 5.0];
        let b = [4.0, 4.9, 3.0];
        assert!(traditional_dominates(&a, &b));
        assert_eq!(r_dominance(&a, &b, &region()), DominanceRelation::Dominates);
        assert_eq!(
            r_dominance(&b, &a, &region()),
            DominanceRelation::DominatedBy
        );
    }

    #[test]
    fn r_dominance_without_traditional_dominance() {
        // b has a higher third attribute, so no traditional dominance, but the
        // weight on dimension 3 is at least 1 - 0.5 - 0.4 = 0.1 and at most
        // 1 - 0.1 - 0.2 = 0.7; pick vectors where a still wins everywhere.
        let a = [10.0, 10.0, 5.0];
        let b = [1.0, 1.0, 5.5];
        assert!(!traditional_dominates(&a, &b));
        assert_eq!(r_dominance(&a, &b, &region()), DominanceRelation::Dominates);
    }

    #[test]
    fn incomparable_pair() {
        // a wins when w1 is large, b wins when w1 is small.
        let a = [10.0, 0.0, 0.0];
        let b = [0.0, 0.0, 4.0];
        // at corner w1=0.5: S(a)=5, S(b)= 4*(1-0.9)=0.4 -> a wins
        // at corner w1=0.1,w2=0.2: S(a)=1, S(b)=4*0.7=2.8 -> b wins
        assert_eq!(
            r_dominance(&a, &b, &region()),
            DominanceRelation::Incomparable
        );
        assert_eq!(
            r_dominance(&b, &a, &region()),
            DominanceRelation::Incomparable
        );
    }

    #[test]
    fn equivalent_vectors() {
        let a = [3.0, 4.0, 5.0];
        assert_eq!(
            r_dominance(&a, &a, &region()),
            DominanceRelation::Equivalent
        );
        assert!(!traditional_dominates(&a, &a));
    }

    #[test]
    fn paper_vertices_relations() {
        // Fig. 2(a) + Fig. 4(b): within R, v6 r-dominates v7 and v2 r-dominates v7;
        // v2 and v6 are leaves' parents in the DAG; v1 and v5 are incomparable
        // to several vertices. Spot-check a few arcs of the published DAG.
        let v2 = [5.9, 6.2, 6.0];
        let v6 = [5.2, 8.3, 4.3];
        let v7 = [2.1, 5.0, 5.1];
        let v5 = [5.0, 7.6, 3.1];
        let v3 = [2.8, 5.6, 5.1];
        let r = region();
        assert_eq!(r_dominance(&v6, &v7, &r), DominanceRelation::Dominates);
        assert_eq!(r_dominance(&v2, &v7, &r), DominanceRelation::Dominates);
        assert_eq!(r_dominance(&v2, &v3, &r), DominanceRelation::Dominates);
        assert_eq!(r_dominance(&v6, &v5, &r), DominanceRelation::Dominates);
        // v7 sits at the bottom layer: it dominates nothing among these
        for other in [v2, v6, v5, v3] {
            assert_ne!(r_dominance(&v7, &other, &r), DominanceRelation::Dominates);
        }
    }

    #[test]
    fn transitivity_on_random_samples() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(11);
        let r = PrefRegion::from_ranges(&[(0.05, 0.45), (0.1, 0.4), (0.05, 0.2)]).unwrap();
        for _ in 0..200 {
            let v: Vec<Vec<f64>> = (0..3)
                .map(|_| (0..4).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect();
            let ab = r_dominance(&v[0], &v[1], &r);
            let bc = r_dominance(&v[1], &v[2], &r);
            let ac = r_dominance(&v[0], &v[2], &r);
            if ab == DominanceRelation::Dominates && bc == DominanceRelation::Dominates {
                assert!(
                    ac == DominanceRelation::Dominates || ac == DominanceRelation::Equivalent,
                    "transitivity violated"
                );
            }
        }
    }
}
